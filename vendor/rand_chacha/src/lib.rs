//! Offline stand-in for the `rand_chacha` crate.
//!
//! Exposes a type named [`ChaCha8Rng`] with the `seed_from_u64` constructor
//! the workspace uses. The stream is *not* ChaCha8 — the build environment is
//! offline, so this wraps the vendored xoshiro256** generator — but every
//! consumer only relies on determinism (same seed → same stream), which holds.
//!
//! ```
//! use rand::{Rng, SeedableRng};
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut a = ChaCha8Rng::seed_from_u64(42);
//! let mut b = ChaCha8Rng::seed_from_u64(42);
//! assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
//! ```

use rand::{RngCore, SeedableRng, Xoshiro256StarStar};

/// Deterministic seedable RNG with the `rand_chacha` 0.3 name and surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    inner: Xoshiro256StarStar,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(17);
        let mut b = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }
}
