//! Offline stand-in for the `rayon` crate.
//!
//! Implements the tiny subset this workspace uses — `par_iter_mut().map(..)
//! .reduce_with(..)` over a slice, plus `ThreadPoolBuilder`/`ThreadPool::
//! install` — with *real* parallelism: each item of a parallel map runs on its
//! own scoped `std::thread`. That is a sensible strategy here because the
//! likelihood executors fan out over at most a few dozen per-worker slices,
//! each carrying substantial work; there is no work-stealing and no global
//! pool, so this is not a general rayon replacement.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
//! let mut items = vec![1u64, 2, 3];
//! let sum = pool.install(|| {
//!     items.par_iter_mut().map(|x| *x * 10).reduce_with(|a, b| a + b)
//! });
//! assert_eq!(sum, Some(60));
//! ```

use std::marker::PhantomData;

/// Mirrors `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for pool construction (construction cannot fail here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requested logical thread count (advisory; threads are scoped per call).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Thread naming hook (accepted for API compatibility, unused).
    pub fn thread_name<F: Fn(usize) -> String>(self, _f: F) -> Self {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// Mirrors `rayon::ThreadPool`: a handle parallel operations run "inside".
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool as the ambient pool. Parallelism happens in
    /// the parallel iterators themselves (scoped threads), so this simply
    /// invokes the closure.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        op()
    }

    /// The configured logical thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A borrowed parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Applies `f` to every item (in parallel at reduction time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Send, F> ParMap<'a, T, F> {
    /// Runs the map on scoped threads (one per item) and folds the results in
    /// item order with `reduce`. Returns `None` for an empty input.
    pub fn reduce_with<R, G>(self, reduce: G) -> Option<R>
    where
        F: Fn(&mut T) -> R + Sync,
        R: Send,
        G: Fn(R, R) -> R,
    {
        let f = &self.f;
        let outputs: Vec<R> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .iter_mut()
                .map(|item| scope.spawn(move || f(item)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map task panicked"))
                .collect()
        });
        outputs.into_iter().reduce(reduce)
    }

    /// Collects the mapped results in item order, running on scoped threads.
    pub fn collect<C: FromParallelIterator<R>, R>(self) -> C
    where
        F: Fn(&mut T) -> R + Sync,
        T: Send,
        R: Send,
    {
        let f = &self.f;
        let outputs: Vec<R> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .iter_mut()
                .map(|item| scope.spawn(move || f(item)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map task panicked"))
                .collect()
        });
        C::from_par_vec(outputs)
    }
}

/// Collection target for [`ParMap::collect`].
pub trait FromParallelIterator<R> {
    /// Builds the collection from the already-joined outputs.
    fn from_par_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_par_vec(items: Vec<R>) -> Self {
        items
    }
}

/// Extension trait providing `par_iter_mut`, mirroring rayon's prelude.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type of the parallel iterator.
    type Item: Send;
    /// Borrowing parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            items: self.as_mut_slice(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Rayon-style prelude.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefMutIterator, ParIterMut, ParMap};
}

/// Marker kept for signature compatibility with rayon adapters.
pub struct PhantomParallel<T>(PhantomData<T>);

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_runs_every_item_once() {
        let mut xs: Vec<u64> = (1..=10).collect();
        let sum = xs.par_iter_mut().map(|x| *x * 2).reduce_with(|a, b| a + b);
        assert_eq!(sum, Some(110));
    }

    #[test]
    fn reduce_with_empty_is_none() {
        let mut xs: Vec<u64> = Vec::new();
        assert_eq!(
            xs.par_iter_mut().map(|x| *x).reduce_with(|a, b| a + b),
            None
        );
    }

    #[test]
    fn map_mutates_in_place_in_parallel() {
        let mut xs: Vec<usize> = vec![0; 8];
        let ids: Vec<usize> = std::thread::scope(|_| {
            xs.par_iter_mut()
                .map(|x| {
                    *x += 1;
                    *x
                })
                .collect::<Vec<usize>, _>()
        });
        assert_eq!(ids, vec![1; 8]);
        assert_eq!(xs, vec![1; 8]);
    }

    #[test]
    fn pool_install_passes_through() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
