//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset the workspace benches use: `Criterion::default()`,
//! `sample_size`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs its closure `sample_size` times after one warm-up call and
//! prints mean/min wall-clock times — no statistics, no HTML reports, but the
//! same source-level API, so the real criterion can be dropped back in when
//! the build environment regains network access.
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default().sample_size(2);
//! c.bench_function("sum", |b| {
//!     b.iter(|| black_box((0u64..100).sum::<u64>()))
//! });
//! ```

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench group] {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name,
            sample_size: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&id.into(), samples, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Input-size hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; batches are always of size one here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to each benchmark closure; `iter` times the measured routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding the setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    if bencher.timings.is_empty() {
        eprintln!("  {id:<40} (no timed iterations)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {id:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.timings.len()
    );
}

/// Mirrors `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_plus_warmup_times() {
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn group_sample_size_overrides_default() {
        let mut calls = 0usize;
        let mut c = Criterion::default().sample_size(50);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("x", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4);
    }
}
