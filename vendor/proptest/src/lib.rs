//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range strategies over integers and floats, `proptest::bool::ANY`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Cases are sampled deterministically
//! (seeded from the test name and case index); there is no shrinking — a
//! failing case panics with its arguments so it can be reproduced directly.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
//!     fn addition_is_commutative(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! // The macro expands each property into an ordinary function (a test
//! // carries `#[test]` on top); here we simply call it.
//! addition_is_commutative();
//! ```

/// Configuration accepted by `#![proptest_config(..)]`.
pub mod config {
    /// Mirror of `proptest::test_runner::Config` for the fields we use.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
        /// Accepted for API compatibility; this stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::{Rng, Xoshiro256StarStar};
    use std::ops::Range;

    /// The deterministic RNG handed to strategies.
    pub type TestRng = Xoshiro256StarStar;

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The generated value type.
        type Value: std::fmt::Debug;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i32, i64, f64);

    /// Strategy yielding both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Boolean strategies, addressed as `proptest::bool::ANY`.
pub mod bool {
    /// Uniformly random boolean.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// The case-loop driver used by the expanded [`proptest!`] macro.
pub mod test_runner {
    use crate::config::ProptestConfig;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    fn fnv1a(text: &str) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }

    /// Runs `property` for `config.cases` deterministic cases; panics on the
    /// first failure, reporting the case index.
    pub fn run<F>(name: &str, config: ProptestConfig, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for case in 0..config.cases {
            let seed = fnv1a(name) ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(message) = property(&mut rng) {
                panic!(
                    "property '{name}' failed at case {case}/{}: {message}",
                    config.cases
                );
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Mirror of `proptest::proptest!` for `arg in strategy` style properties.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), $config, |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::config::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Mirror of `proptest::prop_assert!`: fails the current case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Sampled values respect their range strategy.
        #[test]
        fn ranges_are_respected(x in 3usize..10, y in 0.5f64..1.5, flip in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x), "x out of range: {}", x);
            prop_assert!((0.5..1.5).contains(&y));
            let encoded = if flip { 1u8 } else { 0u8 };
            prop_assert!(encoded <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::test_runner::run(
            "always_fails",
            ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            |_| Err("nope".to_string()),
        );
    }
}
