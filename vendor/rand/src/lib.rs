//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! the [`Rng`] and [`SeedableRng`] traits with `gen_range`/`gen_bool`, backed
//! by a deterministic xoshiro256** generator. Values differ from the real
//! `rand` crate, but every consumer in this workspace only relies on
//! determinism (same seed → same stream) and reasonable uniformity, not on a
//! specific stream.
//!
//! ```
//! use rand::{Rng, SeedableRng, Xoshiro256StarStar};
//!
//! let mut a = Xoshiro256StarStar::seed_from_u64(7);
//! let mut b = Xoshiro256StarStar::seed_from_u64(7);
//! let x: usize = a.gen_range(0..100);
//! assert!(x < 100);
//! // Same seed → same stream.
//! assert_eq!(x, b.gen_range(0..100));
//! ```

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a 64-bit output per step.
pub trait RngCore {
    /// Next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform-sampling extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` from the top 53 bits of one output.
pub(crate) fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64 + 1;
                if width == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + next_f64(rng) * (end - start)
    }
}

/// The deterministic generator backing every stand-in RNG in `vendor/`:
/// xoshiro256** seeded through SplitMix64, exactly as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        let mut c = Xoshiro256StarStar::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0usize..=5);
            assert!(v <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} hits for p=0.3");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.1));
    }
}
