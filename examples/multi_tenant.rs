//! Multi-tenant serving: many independent analyses on ONE fixed worker pool.
//!
//! Spawns a 2-thread pool, submits six sessions with mixed data types and
//! fair-share weights, injects a worker death into one of them, and shows
//! that every session completes with its own result — the faulted tenant
//! recovers through the standard reassignment path while its neighbors
//! never notice.
//!
//! Run with `cargo run --release --example multi_tenant`.

use std::sync::Arc;

use plf_loadbalance::prelude::*;

fn main() -> Result<(), ServeError> {
    let workers = 2;
    let mut pool = SessionManager::new(workers);
    println!(
        "pool: {} workers, strategy {:?}\n",
        pool.worker_count(),
        TenantStrategy::default()
    );

    // Six tenants: alternating pure-DNA and mixed DNA+protein datasets,
    // each with its own alignment, tree and models. The big DNA session
    // gets double weight; session "dna-0" has a worker death injected into
    // its second dispatched op (a chaos drill through the real machinery).
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let (class, dataset) = if i % 2 == 0 {
            ("dna", paper_simulated(6, 120, 24, 7 + i).generate())
        } else {
            ("mixed", mixed_dna_protein(6, 2, 1, 12, 1007 + i).generate())
        };
        let mut spec = SessionSpec::new(Arc::clone(&dataset.patterns), dataset.tree.clone())
            .label(format!("{class}-{i}"))
            .weight(if i == 0 { 2 } else { 1 });
        if i == 0 {
            spec = spec.inject_worker_fault(workers - 1, 1);
        }
        handles.push(pool.submit(spec)?);
    }

    println!(
        "{:<10} {:>18} {:>18} {:>10} {:>10}",
        "session", "initial lnL", "final lnL", "wall ms", "recoveries"
    );
    for handle in handles {
        let label = handle.label().to_string();
        let outcome = handle.join()?;
        println!(
            "{:<10} {:>18.6} {:>18.6} {:>10.1} {:>10}",
            label,
            outcome.initial_log_likelihood,
            outcome.final_log_likelihood,
            outcome.latency.as_secs_f64() * 1e3,
            outcome.recoveries.len()
        );
        assert!(outcome.final_log_likelihood >= outcome.initial_log_likelihood);
        let expected = usize::from(label == "dna-0");
        assert_eq!(
            outcome.recoveries.len(),
            expected,
            "{label}: recovery leaked across tenants"
        );
    }

    let stats = pool.stats()?;
    println!(
        "\npool served {} ops in {} fused batches (max {} tenants under one barrier), \
         {} worker panic(s) — all quarantined to one tenant",
        stats.ops_dispatched, stats.batches, stats.max_batch_fused, stats.worker_panics
    );
    assert_eq!(stats.worker_panics, 1);
    pool.shutdown();
    Ok(())
}
