//! A partitioned phylogenomic analysis end to end: simulate a gappy multi-gene
//! dataset, run an SPR tree search from a random starting tree with real
//! worker threads, and compare the result against the generating topology.
//!
//! Run with `cargo run --release --example partitioned_search`.

use plf_loadbalance::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() -> Result<(), AnalysisError> {
    // A gappy multi-gene DNA dataset in the style of the paper's real-world
    // mammalian alignment, scaled down so the example finishes in seconds.
    let spec = DatasetSpec {
        name: "example_gappy".into(),
        taxa: 16,
        partition_columns: vec![120, 80, 200, 60, 140],
        data_type: DataType::Dna,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.2,
        seed: 7,
    };
    let dataset = spec.generate();
    println!(
        "simulated {}: {} columns, {} patterns, gappyness {:.1}%",
        dataset.spec.name,
        dataset.alignment.columns(),
        dataset.patterns.total_patterns(),
        100.0 * dataset.alignment.gappyness()
    );

    // Start the search from a random topology, not the generating tree.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let start_tree = plf_loadbalance::tree::random::random_tree(&dataset.patterns.taxa, &mut rng);

    // Real worker threads (the Pthreads-style pool); timing on so the
    // session reports the measured per-worker balance afterwards.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), start_tree)
        .threads(threads)
        .strategy(Cyclic)
        .timed(true)
        .build()?;

    let mut config = SearchConfig::new(ParallelScheme::New);
    config.max_rounds = 2;
    config.spr_radius = 4;
    let outcome = analysis.run_search(&config)?;
    println!(
        "search on {threads} threads: lnL {:.3} -> {:.3} ({} moves evaluated, {} accepted)",
        outcome.result.initial_log_likelihood,
        outcome.result.final_log_likelihood,
        outcome.result.evaluated_moves,
        outcome.result.accepted_moves
    );
    println!(
        "measured wall-clock imbalance of the run: {:.3} (max/mean per worker)",
        analysis
            .imbalance_report_in(TraceUnit::Seconds)
            .measured_imbalance
    );

    // How much of the generating topology was recovered?
    let truth = dataset.tree.bipartitions();
    let found = analysis.tree().bipartitions();
    let shared = truth.iter().filter(|s| found.contains(s)).count();
    println!(
        "recovered {shared}/{} bipartitions of the generating tree",
        truth.len()
    );
    println!("final tree: {}", newick::to_newick(analysis.tree()));
    Ok(())
}
