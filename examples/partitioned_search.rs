//! A partitioned phylogenomic analysis end to end: simulate a gappy multi-gene
//! dataset, run an SPR tree search from a random starting tree with real
//! worker threads, and compare the result against the generating topology.
//!
//! Run with `cargo run --release --example partitioned_search`.

use plf_loadbalance::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    // A gappy multi-gene DNA dataset in the style of the paper's real-world
    // mammalian alignment, scaled down so the example finishes in seconds.
    let spec = DatasetSpec {
        name: "example_gappy".into(),
        taxa: 16,
        partition_columns: vec![120, 80, 200, 60, 140],
        data_type: DataType::Dna,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.2,
        seed: 7,
    };
    let dataset = spec.generate();
    println!(
        "simulated {}: {} columns, {} patterns, gappyness {:.1}%",
        dataset.spec.name,
        dataset.alignment.columns(),
        dataset.patterns.total_patterns(),
        100.0 * dataset.alignment.gappyness()
    );

    // Start the search from a random topology, not the generating tree.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let start_tree = plf_loadbalance::tree::random::random_tree(&dataset.patterns.taxa, &mut rng);

    // Real worker threads (the Pthreads-style pool) with the cyclic pattern
    // distribution.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let assignment = schedule(&dataset.patterns, &categories, threads, &Cyclic)
        .expect("available_parallelism is at least one");
    let executor = ThreadedExecutor::from_assignment(
        &dataset.patterns,
        &assignment,
        start_tree.node_capacity(),
        &categories,
    )
    .expect("assignment was built for this dataset");
    let mut kernel =
        LikelihoodKernel::new(Arc::clone(&dataset.patterns), start_tree, models, executor);

    let mut config = SearchConfig::new(ParallelScheme::New);
    config.max_rounds = 2;
    config.spr_radius = 4;
    let result = tree_search(&mut kernel, &config);
    println!(
        "search on {threads} threads: lnL {:.3} -> {:.3} ({} moves evaluated, {} accepted)",
        result.initial_log_likelihood,
        result.final_log_likelihood,
        result.evaluated_moves,
        result.accepted_moves
    );

    // How much of the generating topology was recovered?
    let truth = dataset.tree.bipartitions();
    let found = kernel.tree().bipartitions();
    let shared = truth.iter().filter(|s| found.contains(s)).count();
    println!(
        "recovered {shared}/{} bipartitions of the generating tree",
        truth.len()
    );
    println!("final tree: {}", newick::to_newick(kernel.tree()));
}
