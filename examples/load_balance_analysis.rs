//! Reproduces the paper's core observation on a laptop: the per-region load
//! balance and synchronization counts of the oldPAR and newPAR schemes,
//! measured with a *traced* `Analysis` session (virtual workers) and
//! converted into run-time predictions for the paper's evaluation platforms.
//!
//! Run with `cargo run --release --example load_balance_analysis`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn run(
    dataset: &plf_loadbalance::seqgen::GeneratedDataset,
    workers: usize,
    scheme: ParallelScheme,
) -> Result<WorkTrace, AnalysisError> {
    // A traced session executes every command on `workers` virtual workers
    // under the paper's cyclic placement, recording each region's work.
    let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
        .threads(workers)
        .strategy(Cyclic)
        .build_traced()?;
    let _ = analysis.optimize(&OptimizerConfig::new(scheme))?;
    Ok(analysis.take_trace())
}

fn main() -> Result<(), AnalysisError> {
    // 20 short partitions of 60 columns each — many short genes, the worst
    // case for the old per-partition scheme.
    let dataset = paper_simulated(24, 1200, 60, 4711).generate();
    println!(
        "dataset: {} taxa, {} partitions, {} patterns\n",
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.patterns.total_patterns()
    );

    println!(
        "{:<8} {:<8} {:>14} {:>12} {:>12}",
        "threads", "scheme", "sync events", "balance", "Nehalem [s]"
    );
    let nehalem = Platform::nehalem();
    let barcelona = Platform::barcelona();
    for workers in [8usize, 16] {
        for scheme in [ParallelScheme::Old, ParallelScheme::New] {
            let trace = run(&dataset, workers, scheme)?;
            let platform = if workers <= 8 { &nehalem } else { &barcelona };
            println!(
                "{:<8} {:<8} {:>14} {:>12.3} {:>12.3}",
                workers,
                scheme.to_string(),
                trace.sync_events(),
                trace.overall_balance(),
                platform.predict_runtime(&trace)
            );
        }
    }
    println!();
    println!("newPAR issues far fewer synchronization events and keeps every worker busy,");
    println!("which is exactly the paper's explanation for its 2-8x speedup improvements.");
    Ok(())
}
