//! Quickstart: compute and optimize the likelihood of a small partitioned
//! alignment on a fixed tree, under both parallelization schemes, through
//! the one-stop `Analysis` session API.
//!
//! Run with `cargo run --release --example quickstart`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), AnalysisError> {
    // 1. A multi-gene alignment: 12 taxa, 4 genes of 150 columns each,
    //    simulated with per-gene model parameters (the dataset generator is
    //    the workspace's Seq-Gen substitute).
    let dataset = paper_simulated(12, 600, 150, 2024).generate();
    println!(
        "dataset {}: {} taxa, {} partitions, {} distinct patterns",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.patterns.total_patterns()
    );

    // 2. One builder call replaces the old eight-step spec → patterns →
    //    models → categories → schedule → executor → kernel → driver chain.
    //    Per-partition GTR+Γ models with per-partition branch lengths (the
    //    model the paper argues for) are the default.
    let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
        .threads(2)
        .strategy(WeightedLpt)
        .build()?;
    println!("initial log likelihood: {:.3}", analysis.log_likelihood()?);

    // 3. Optimize model parameters and branch lengths with the newPAR scheme.
    let outcome = analysis.optimize(&OptimizerConfig::new(ParallelScheme::New))?;
    println!(
        "optimized log likelihood: {:.3} ({} outer rounds, {} synchronization events)",
        outcome.report.final_log_likelihood, outcome.report.rounds, outcome.report.sync_events
    );

    // 4. The same optimization under the old per-partition scheme issues far
    //    more synchronization events for the same result.
    let mut old_analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
        .threads(2)
        .strategy(WeightedLpt)
        .build()?;
    let old_outcome = old_analysis.optimize(&OptimizerConfig::new(ParallelScheme::Old))?;
    println!(
        "oldPAR reaches lnL {:.3} with {} synchronization events ({}x more)",
        old_outcome.report.final_log_likelihood,
        old_outcome.report.sync_events,
        old_outcome.report.sync_events as f64 / outcome.report.sync_events as f64
    );

    // 5. Export the optimized tree.
    println!("optimized tree: {}", newick::to_newick(analysis.tree()));
    Ok(())
}
