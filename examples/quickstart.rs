//! Quickstart: compute and optimize the likelihood of a small partitioned
//! alignment on a fixed tree, under both parallelization schemes.
//!
//! Run with `cargo run --release --example quickstart`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A multi-gene alignment: 12 taxa, 4 genes of 150 columns each,
    //    simulated with per-gene model parameters (the dataset generator is
    //    the workspace's Seq-Gen substitute).
    let dataset = paper_simulated(12, 600, 150, 2024).generate();
    println!(
        "dataset {}: {} taxa, {} partitions, {} distinct patterns",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.patterns.total_patterns()
    );

    // 2. Build the likelihood engine: per-partition GTR+Γ models with
    //    per-partition branch lengths (the model the paper argues for).
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let mut kernel =
        SequentialKernel::build(Arc::clone(&dataset.patterns), dataset.tree.clone(), models);
    println!("initial log likelihood: {:.3}", kernel.log_likelihood());

    // 3. Optimize model parameters and branch lengths with the newPAR scheme.
    let report = optimize_model_parameters(&mut kernel, &OptimizerConfig::new(ParallelScheme::New));
    println!(
        "optimized log likelihood: {:.3} ({} outer rounds, {} synchronization events)",
        report.final_log_likelihood, report.rounds, report.sync_events
    );

    // 4. The same optimization under the old per-partition scheme issues far
    //    more synchronization events for the same result.
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let mut old_kernel =
        SequentialKernel::build(Arc::clone(&dataset.patterns), dataset.tree.clone(), models);
    let old_report =
        optimize_model_parameters(&mut old_kernel, &OptimizerConfig::new(ParallelScheme::Old));
    println!(
        "oldPAR reaches lnL {:.3} with {} synchronization events ({}x more)",
        old_report.final_log_likelihood,
        old_report.sync_events,
        old_report.sync_events as f64 / report.sync_events as f64
    );

    // 5. Export the optimized tree.
    println!("optimized tree: {}", newick::to_newick(kernel.tree()));
}
