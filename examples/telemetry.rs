//! Telemetry: record a full adaptive optimization run — regions, cache
//! counters, reschedules, optimizer probes — and export the unified
//! timeline as JSONL and Prometheus text.
//!
//! Telemetry is off by default and costs one pointer check per
//! instrumentation site when disabled; one builder call arms it for the
//! whole session (executor, kernel caches, rescheduler, optimizers).
//!
//! Run with `cargo run --release --example telemetry`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), AnalysisError> {
    // A dataset whose partitions converge at staggered rates: pairs of one
    // long and one short DNA gene. The totals are cyclically balanced, but
    // the late convergence masks are heavily skewed — exactly the shape the
    // mask-aware within-round rescheduler reacts to, so the run produces
    // migrations to observe.
    let mut layout = Vec::new();
    for _ in 0..12 {
        layout.push(40usize);
        layout.push(8);
    }
    let dataset = DatasetSpec {
        name: "staggered_pairs_40x8".to_string(),
        taxa: 8,
        partition_columns: layout,
        data_type: DataType::Dna,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.0,
        seed: 2026,
    }
    .generate();
    let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
        .threads(16)
        .strategy(Cyclic)
        .rescheduler(ReschedulePolicy {
            imbalance_threshold: 1.25,
            min_regions: 12,
            unit: TraceUnit::Flops,
            max_reschedules: 4,
            mask_aware: true,
            mask_decay: 0.85,
        })
        // The default config records everything. Probe events dominate the
        // log on real runs, so either raise the capacity (overflow is
        // counted in `events_dropped`, never fatal) or set `.probes(false)`
        // to keep the log to one entry per region.
        .telemetry(TelemetryConfig::default().event_capacity(1 << 17))
        .build_traced()?;

    let outcome = analysis.optimize(&OptimizerConfig::new(ParallelScheme::New))?;
    println!(
        "optimized lnL {:.3} in {} rounds with {} mid-run reschedules\n",
        outcome.report.final_log_likelihood,
        outcome.report.rounds,
        outcome.events.len()
    );

    // 1. Counters: every cache, recovery and scheduling decision, numbered.
    let snapshot = analysis
        .telemetry_snapshot()
        .expect("the builder armed telemetry");
    println!("--- counters ---");
    for (name, value) in snapshot.counters.named() {
        println!("{name:>24}: {value}");
    }
    println!(
        "tip-index cache hit rate: {:.1}%, branch-table hit rate: {:.1}%",
        snapshot.tip_cache_hit_rate() * 100.0,
        snapshot.table_cache_hit_rate() * 100.0
    );

    // 2. Histograms: per-region wall time and measured imbalance.
    println!(
        "\nregions: {} recorded, mean {:.1}us, max {:.1}us; mean imbalance {:.3}",
        snapshot.region_seconds.count(),
        snapshot.region_seconds.mean() * 1e6,
        snapshot.region_seconds.max().unwrap_or(0.0) * 1e6,
        snapshot.region_imbalance.mean()
    );

    // 3. The typed event log. Reschedule events carry the measured
    //    imbalance that triggered them and the predicted one after.
    println!("\n--- reschedule events ---");
    for event in &snapshot.events {
        if let TelemetryEvent::Reschedule {
            t,
            round,
            within_round,
            measured_imbalance,
            predicted_imbalance,
        } = event
        {
            println!(
                "t={t:.4}s round {round} (within_round={within_round}): \
                 imbalance {measured_imbalance:.3} -> {predicted_imbalance:.3}"
            );
        }
    }

    // 4. Exports: JSONL (one event per line, round-trippable) and
    //    Prometheus text (counters, gauges, histograms).
    let jsonl = snapshot.to_jsonl();
    let reparsed = TelemetrySnapshot::events_from_jsonl(&jsonl);
    println!(
        "\nJSONL export: {} lines, {} events round-tripped",
        jsonl.lines().count(),
        reparsed.len()
    );
    let prom = snapshot.to_prometheus();
    println!(
        "Prometheus export ({} lines), first counters:",
        prom.lines().count()
    );
    for line in prom.lines().filter(|l| l.starts_with("plf_")).take(4) {
        println!("  {line}");
    }
    Ok(())
}
