//! Tour of the pluggable scheduling subsystem: builds all four strategies'
//! assignments for a mixed DNA/protein dataset, compares their predicted
//! per-worker load, then verifies the prediction against the instrumented
//! executor's measurement.
//!
//! Run with `cargo run --release --example scheduling_strategies`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

/// Runs one traced likelihood evaluation under `assignment` and returns the
/// work trace.
fn trace_run(
    dataset: &plf_loadbalance::seqgen::GeneratedDataset,
    assignment: &Assignment,
    categories: &[usize],
) -> plf_loadbalance::kernel::cost::WorkTrace {
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let executor = TracingExecutor::from_assignment(
        &dataset.patterns,
        assignment,
        dataset.tree.node_capacity(),
        categories,
    )
    .expect("assignment was built for this dataset");
    let mut kernel = LikelihoodKernel::new(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    );
    let _ = kernel.log_likelihood();
    kernel.executor_mut().take_trace()
}

fn main() {
    // 8 DNA genes plus 3 protein genes: the protein patterns weigh ~25x the
    // DNA ones, so pattern *counts* are a poor balance proxy.
    let workers = 8usize;
    let dataset = mixed_dna_protein(12, 8, 3, 150, 4711).generate();
    let categories = vec![4; dataset.patterns.partition_count()];
    println!(
        "dataset: {} — {} taxa, {} partitions ({} protein), {} patterns, {} workers\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.spec.protein_partitions.len(),
        dataset.patterns.total_patterns(),
        workers,
    );

    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let strategies: Vec<Box<dyn ScheduleStrategy>> =
        vec![Box::new(Cyclic), Box::new(Block), Box::new(WeightedLpt)];

    println!("{} ", ImbalanceReport::header());
    let mut warmup: Option<(Assignment, plf_loadbalance::kernel::cost::WorkTrace)> = None;
    for strategy in &strategies {
        let assignment = strategy
            .assign(&costs, workers)
            .expect("non-empty dataset and positive worker count");
        let trace = trace_run(&dataset, &assignment, &categories);
        let report = imbalance_report(&assignment, &trace);
        println!("{}", report.format());
        if assignment.strategy() == "cyclic" {
            warmup = Some((assignment, trace));
        }
    }

    // Trace-adaptive: rebalance from the cyclic warm-up measurement.
    let (prior, trace) = warmup.expect("cyclic ran first");
    let adaptive = TraceAdaptive::new(prior, &trace).expect("trace matches the warm-up run");
    let assignment = adaptive
        .assign(&costs, workers)
        .expect("rebalancing succeeds");
    let trace = trace_run(&dataset, &assignment, &categories);
    println!("{}", imbalance_report(&assignment, &trace).format());

    println!();
    println!("block lumps the expensive protein tail onto few workers; weighted-lpt");
    println!("and trace-adaptive pack by cost and keep every worker equally busy.");
}
