//! Tour of the pluggable scheduling subsystem: builds all four strategies'
//! assignments for a mixed DNA/protein dataset through traced `Analysis`
//! sessions, compares their predicted per-worker load, then verifies the
//! prediction against the instrumented executor's measurement.
//!
//! Run with `cargo run --release --example scheduling_strategies`.

use plf_loadbalance::prelude::*;
use std::sync::Arc;

/// Runs one traced likelihood evaluation under `strategy` and returns the
/// session's (assignment, trace) pair.
fn trace_run(
    dataset: &plf_loadbalance::seqgen::GeneratedDataset,
    strategy: impl ScheduleStrategy + 'static,
    workers: usize,
) -> Result<(Assignment, WorkTrace), AnalysisError> {
    let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
        .threads(workers)
        .strategy(strategy)
        .build_traced()?;
    let _ = analysis.log_likelihood()?;
    let assignment = analysis.assignment().clone();
    Ok((assignment, analysis.take_trace()))
}

fn main() -> Result<(), AnalysisError> {
    // 8 DNA genes plus 3 protein genes: the protein patterns weigh ~25x the
    // DNA ones, so pattern *counts* are a poor balance proxy.
    let workers = 8usize;
    let dataset = mixed_dna_protein(12, 8, 3, 150, 4711).generate();
    let categories = vec![4; dataset.patterns.partition_count()];
    println!(
        "dataset: {} — {} taxa, {} partitions ({} protein), {} patterns, {} workers\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.spec.protein_partitions.len(),
        dataset.patterns.total_patterns(),
        workers,
    );

    let strategies: Vec<Box<dyn ScheduleStrategy>> =
        vec![Box::new(Cyclic), Box::new(Block), Box::new(WeightedLpt)];

    println!("{} ", ImbalanceReport::header());
    let mut warmup: Option<(Assignment, WorkTrace)> = None;
    for strategy in strategies {
        let (assignment, trace) = trace_run(&dataset, strategy, workers)?;
        println!("{}", imbalance_report(&assignment, &trace).format());
        if assignment.strategy() == "cyclic" {
            warmup = Some((assignment, trace));
        }
    }

    // Trace-adaptive: rebalance from the cyclic warm-up measurement.
    let (prior, trace) = warmup.expect("cyclic ran first");
    let adaptive = TraceAdaptive::new(prior, &trace)?;
    let (assignment, trace) = trace_run(&dataset, adaptive, workers)?;
    println!("{}", imbalance_report(&assignment, &trace).format());

    // The analytic cost model the schedules packed against, for reference.
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    println!(
        "\ntotal analytic cost {:.0} over {} patterns",
        costs.total(),
        costs.pattern_count()
    );
    println!("block lumps the expensive protein tail onto few workers; weighted-lpt");
    println!("and trace-adaptive pack by cost and keep every worker equally busy.");
    Ok(())
}
