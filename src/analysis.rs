//! One-stop analysis sessions: [`Analysis`] and [`AnalysisBuilder`].
//!
//! Every entry point used to hand-assemble the same chain — dataset spec →
//! patterns → models → Γ categories → schedule → executor → kernel → driver —
//! before any likelihood work could start. [`Analysis::builder`] collapses
//! that boilerplate onto one audited, *fallible* path:
//!
//! ```
//! use plf_loadbalance::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), AnalysisError> {
//! let dataset = paper_simulated(8, 200, 50, 42).generate();
//! let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
//!     .threads(2)
//!     .strategy(WeightedLpt)
//!     .timed(true)
//!     .build()?;
//! let report = analysis.optimize(&OptimizerConfig::new(ParallelScheme::New))?;
//! assert!(report.report.final_log_likelihood > report.report.initial_log_likelihood);
//! println!("{}", analysis.imbalance_report_in(TraceUnit::Seconds).format());
//! # Ok(())
//! # }
//! ```
//!
//! Builder misuse is a typed [`AnalysisError`], not a panic: zero threads,
//! a model set covering the wrong number of partitions, or a tree whose taxa
//! do not match the alignment all come back as values. Worker deaths during
//! [`Analysis::optimize`] / [`Analysis::run_search`] are *recovered* (up to
//! the configured budget) by rebuilding the workers through the
//! [`Reassignable`] capability; configure a [`ReschedulePolicy`] to also
//! migrate pattern→worker ownership mid-run from live wall-clock
//! measurements.

use std::sync::Arc;

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::TraceUnit;
use phylo_kernel::{Executor, KernelDispatch, KernelError, LikelihoodKernel, WorkTrace};
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{
    optimize_model_parameters_adaptive, optimize_model_parameters_resilient,
    AdaptiveOptimizationReport, OptimizeError, OptimizerConfig,
};
use phylo_parallel::{ExecutorOptions, ThreadedExecutor, TracingExecutor, WorkerSkew};
use phylo_perfmodel::{imbalance_report_in, ImbalanceReport};
use phylo_sched::{
    Assignment, PatternCosts, Reassignable, ReschedulePolicy, Rescheduler, SchedError,
    ScheduleStrategy, WeightedLpt,
};
use phylo_search::{
    tree_search_adaptive, tree_search_resilient, AdaptiveSearchResult, SearchConfig,
};
use phylo_telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};
use phylo_tree::Tree;

/// Why an analysis session could not be built or run.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The likelihood engine failed (mismatched parts at build time, or an
    /// execution failure beyond the worker-recovery budget at run time).
    Kernel(KernelError),
    /// The scheduling layer rejected an input (zero threads, mismatched
    /// costs, a skew naming a worker outside the thread range, …).
    Sched(SchedError),
}

impl From<KernelError> for AnalysisError {
    fn from(e: KernelError) -> Self {
        AnalysisError::Kernel(e)
    }
}

impl From<SchedError> for AnalysisError {
    fn from(e: SchedError) -> Self {
        AnalysisError::Sched(e)
    }
}

impl From<OptimizeError> for AnalysisError {
    fn from(e: OptimizeError) -> Self {
        match e {
            OptimizeError::Kernel(e) => AnalysisError::Kernel(e),
            OptimizeError::Sched(e) => AnalysisError::Sched(e),
        }
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Kernel(e) => write!(f, "{e}"),
            Self::Sched(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Kernel(e) => Some(e),
            Self::Sched(e) => Some(e),
        }
    }
}

/// Configures and builds an [`Analysis`]; created by [`Analysis::builder`].
pub struct AnalysisBuilder {
    patterns: Arc<PartitionedPatterns>,
    tree: Tree,
    models: Option<ModelSet>,
    branch_mode: BranchLengthMode,
    threads: usize,
    strategy: Box<dyn ScheduleStrategy>,
    timed: bool,
    skew: Option<WorkerSkew>,
    policy: Option<ReschedulePolicy>,
    shared_tables: bool,
    dispatch: KernelDispatch,
    telemetry: Option<TelemetryConfig>,
}

impl std::fmt::Debug for AnalysisBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisBuilder")
            .field("threads", &self.threads)
            .field("strategy", &self.strategy.name())
            .field("timed", &self.timed)
            .field("rescheduler", &self.policy.is_some())
            .field("shared_tables", &self.shared_tables)
            .field("dispatch", &self.dispatch)
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl AnalysisBuilder {
    /// Explicit per-partition models. Without this call the builder uses
    /// [`ModelSet::default_for`] under the configured
    /// [`AnalysisBuilder::branch_mode`].
    #[must_use]
    pub fn models(mut self, models: ModelSet) -> Self {
        self.models = Some(models);
        self
    }

    /// Branch-length mode of the *default* models (ignored when explicit
    /// models are supplied). Default: [`BranchLengthMode::PerPartition`],
    /// the model the paper argues for.
    #[must_use]
    pub fn branch_mode(mut self, mode: BranchLengthMode) -> Self {
        self.branch_mode = mode;
        self
    }

    /// Number of worker threads (default 1). Zero is a typed error at
    /// [`AnalysisBuilder::build`] time, not a panic.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pattern→worker scheduling strategy (default [`WeightedLpt`], the
    /// cost-aware packing).
    #[must_use]
    pub fn strategy(mut self, strategy: impl ScheduleStrategy + 'static) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// Accumulate per-region wall-clock measurements into a [`WorkTrace`]
    /// (default off; forced on when a rescheduling policy is configured,
    /// because the policy decides from that trace).
    #[must_use]
    pub fn timed(mut self, timed: bool) -> Self {
        self.timed = timed;
        self
    }

    /// Artificially slow one worker (experiments; see [`WorkerSkew`]).
    /// Ignored by [`AnalysisBuilder::build_traced`], whose virtual workers
    /// have no wall clock to skew.
    #[must_use]
    pub fn skew(mut self, skew: WorkerSkew) -> Self {
        self.skew = Some(skew);
        self
    }

    /// Enable mid-run rescheduling under `policy`: during
    /// [`Analysis::optimize`] and [`Analysis::run_search`] the live trace is
    /// watched and pattern→worker ownership migrates when the measured
    /// imbalance crosses the policy's threshold. Implies
    /// [`AnalysisBuilder::timed`].
    #[must_use]
    pub fn rescheduler(mut self, policy: ReschedulePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Toggle *mask-aware* rescheduling: the rescheduler reacts to the
    /// convergence-mask shape **within** a driver round — it measures the
    /// live-cost imbalance of the most recent partial-mask regions (where
    /// converged partitions no longer contribute work) and, when triggered
    /// between branches, re-levels every partition individually across the
    /// workers (live partitions first), balancing the live phase and the
    /// full mask at once. With no [`AnalysisBuilder::rescheduler`] policy
    /// configured, enabling this installs [`ReschedulePolicy::default`]
    /// with `mask_aware` set (which, like any policy, implies
    /// [`AnalysisBuilder::timed`]).
    #[must_use]
    pub fn mask_aware(mut self, mask_aware: bool) -> Self {
        match (self.policy.as_mut(), mask_aware) {
            (Some(policy), _) => policy.mask_aware = mask_aware,
            (None, true) => {
                self.policy = Some(ReschedulePolicy {
                    mask_aware: true,
                    ..ReschedulePolicy::default()
                });
            }
            // mask_aware(false) without a policy stays policy-free rather
            // than installing a rescheduler as a side effect.
            (None, false) => {}
        }
        self
    }

    fn resolve_models(&mut self) -> Result<(ModelSet, Vec<usize>), AnalysisError> {
        let models = self
            .models
            .take()
            .unwrap_or_else(|| ModelSet::default_for(&self.patterns, self.branch_mode));
        if models.len() != self.patterns.partition_count() {
            return Err(AnalysisError::Kernel(KernelError::ModelCountMismatch {
                models: models.len(),
                partitions: self.patterns.partition_count(),
            }));
        }
        let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        Ok((models, categories))
    }

    fn schedule(&self, categories: &[usize]) -> Result<(PatternCosts, Assignment), AnalysisError> {
        // The cost model must describe the kernel that will actually run:
        // under shared tables with the blocked dispatch (the default) the
        // protein/DNA per-pattern ratio is 6, under the scalar tabled
        // kernels 21, and for the per-call reference ≈23.8 (see
        // `PatternCosts::analytic_blocked` / `analytic_tabled`).
        let costs = match (self.shared_tables, self.dispatch) {
            (true, KernelDispatch::Blocked) => {
                PatternCosts::analytic_blocked(&self.patterns, categories)
            }
            (true, KernelDispatch::Scalar) => {
                PatternCosts::analytic_tabled(&self.patterns, categories)
            }
            (false, _) => PatternCosts::analytic(&self.patterns, categories),
        };
        let assignment = self.strategy.assign(&costs, self.threads)?;
        Ok((costs, assignment))
    }

    /// Enable telemetry recording under `config`: the kernel, the executors
    /// and the drivers emit typed events (region timings, cache counters,
    /// reschedules, worker deaths/recoveries, optimizer probes) into a
    /// low-overhead recorder, and [`Analysis::telemetry_snapshot`] exposes
    /// the derived counters, histograms and event log. Default: off, with
    /// zero cost on the hot paths (a disabled handle is one `Option` check).
    #[must_use]
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Whether the engine precomputes shared per-branch tables (transition
    /// matrices + tip lookups, built once by the master and shared read-only
    /// across the workers) — on by default. `false` selects the per-call
    /// reference kernels; results are identical bit for bit, which is what
    /// the `kernel_tables` benchmark gate verifies.
    #[must_use]
    pub fn shared_tables(mut self, enabled: bool) -> Self {
        self.shared_tables = enabled;
        self
    }

    /// Which inner-loop implementation the shared-table kernels run
    /// (default [`KernelDispatch::Blocked`], the cache-blocked
    /// width-specialized fast path). [`KernelDispatch::Scalar`] selects the
    /// straight-loop reference kernels — DNA partitions agree bit for bit
    /// under both dispatches, protein partitions within the documented
    /// `1e-12` lnL tolerance (the `kernel_tables` gate enforces both). The
    /// schedule's analytic cost model follows the selected dispatch.
    /// Ignored when [`AnalysisBuilder::shared_tables`] is off (the per-call
    /// reference has no dispatch choice).
    #[must_use]
    pub fn kernel(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Builds the session on real worker threads ([`ThreadedExecutor`]).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Sched`] for zero threads, an empty dataset or an
    /// out-of-range skew; [`AnalysisError::Kernel`] for mismatched models,
    /// taxa or an incomplete tree.
    pub fn build(mut self) -> Result<Analysis<ThreadedExecutor>, AnalysisError> {
        let (models, categories) = self.resolve_models()?;
        let (costs, assignment) = self.schedule(&categories)?;
        let options = ExecutorOptions {
            timed: self.timed || self.policy.is_some(),
            skew: self.skew,
        };
        let executor = ThreadedExecutor::with_options(
            &self.patterns,
            &assignment,
            self.tree.node_capacity(),
            &categories,
            options,
        )?;
        let mut kernel = LikelihoodKernel::try_new(self.patterns, self.tree, models, executor)?;
        kernel.set_shared_tables(self.shared_tables);
        kernel.set_dispatch(self.dispatch);
        let telemetry = Self::arm_telemetry(&mut kernel, self.telemetry);
        Ok(Analysis {
            kernel,
            base_costs: costs,
            policy: self.policy,
            telemetry,
        })
    }

    /// Builds the session on *virtual* workers ([`TracingExecutor`]): every
    /// command executes sequentially while the per-worker FLOPs and seconds
    /// of each parallel region are recorded — the executor behind the
    /// paper's figure reproductions, useful to study an N-thread schedule on
    /// any host. A configured [`AnalysisBuilder::skew`] is ignored.
    ///
    /// # Errors
    ///
    /// As for [`AnalysisBuilder::build`].
    pub fn build_traced(mut self) -> Result<Analysis<TracingExecutor>, AnalysisError> {
        let (models, categories) = self.resolve_models()?;
        let (costs, assignment) = self.schedule(&categories)?;
        let executor = TracingExecutor::from_assignment(
            &self.patterns,
            &assignment,
            self.tree.node_capacity(),
            &categories,
        )?;
        let mut kernel = LikelihoodKernel::try_new(self.patterns, self.tree, models, executor)?;
        kernel.set_shared_tables(self.shared_tables);
        kernel.set_dispatch(self.dispatch);
        let telemetry = Self::arm_telemetry(&mut kernel, self.telemetry);
        Ok(Analysis {
            kernel,
            base_costs: costs,
            policy: self.policy,
            telemetry,
        })
    }

    fn arm_telemetry<E: Executor>(
        kernel: &mut LikelihoodKernel<E>,
        config: Option<TelemetryConfig>,
    ) -> Telemetry {
        let telemetry = match config {
            Some(config) => Telemetry::new(config),
            None => Telemetry::disabled(),
        };
        kernel.set_telemetry(&telemetry);
        telemetry
    }
}

/// A ready-to-run analysis session: the likelihood kernel, its schedule and
/// the (optional) rescheduling policy behind one façade.
///
/// Built by [`Analysis::builder`]; see the [module docs](self) for the
/// one-stop example. The executor type is a parameter so the same session
/// API drives real threads ([`ThreadedExecutor`], via
/// [`AnalysisBuilder::build`]) and virtual traced workers
/// ([`TracingExecutor`], via [`AnalysisBuilder::build_traced`]).
#[derive(Debug)]
pub struct Analysis<E: Executor + Reassignable> {
    kernel: LikelihoodKernel<E>,
    base_costs: PatternCosts,
    policy: Option<ReschedulePolicy>,
    telemetry: Telemetry,
}

impl Analysis<ThreadedExecutor> {
    /// Starts configuring an analysis of `patterns` on `tree`; finish with
    /// [`AnalysisBuilder::build`] (real threads) or
    /// [`AnalysisBuilder::build_traced`] (virtual traced workers).
    pub fn builder(patterns: Arc<PartitionedPatterns>, tree: Tree) -> AnalysisBuilder {
        AnalysisBuilder {
            patterns,
            tree,
            models: None,
            branch_mode: BranchLengthMode::PerPartition,
            threads: 1,
            strategy: Box::new(WeightedLpt),
            timed: false,
            skew: None,
            policy: None,
            shared_tables: true,
            dispatch: KernelDispatch::default(),
            telemetry: None,
        }
    }
}

impl<E: Executor + Reassignable> Analysis<E> {
    /// Total log likelihood of the current tree and parameters.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Kernel`] when the execution backend fails.
    pub fn log_likelihood(&mut self) -> Result<f64, AnalysisError> {
        Ok(self.kernel.try_log_likelihood()?)
    }

    /// Optimizes all model parameters (α, rates, branch lengths) on the
    /// fixed current topology. Worker deaths are recovered up to
    /// `config.max_worker_recoveries`; with a configured
    /// [`AnalysisBuilder::rescheduler`] policy, pattern→worker ownership
    /// additionally migrates mid-run when the live measurements justify it
    /// (reported in the returned `events`).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Kernel`] when the engine fails beyond the recovery
    /// budget; [`AnalysisError::Sched`] when the rescheduling policy is
    /// configured but the executor records no measurements.
    pub fn optimize(
        &mut self,
        config: &OptimizerConfig,
    ) -> Result<AdaptiveOptimizationReport, AnalysisError> {
        match self.policy {
            Some(policy) => {
                let mut rescheduler = Rescheduler::with_telemetry(policy, &self.telemetry);
                Ok(optimize_model_parameters_adaptive(
                    &mut self.kernel,
                    config,
                    &mut rescheduler,
                    &self.base_costs,
                )?)
            }
            None => {
                let (report, recoveries) =
                    optimize_model_parameters_resilient(&mut self.kernel, config)?;
                Ok(AdaptiveOptimizationReport {
                    report,
                    events: Vec::new(),
                    recoveries,
                })
            }
        }
    }

    /// Runs the SPR hill-climbing tree search from the session's current
    /// tree, with the same recovery and rescheduling behaviour as
    /// [`Analysis::optimize`].
    ///
    /// # Errors
    ///
    /// As for [`Analysis::optimize`].
    pub fn run_search(
        &mut self,
        config: &SearchConfig,
    ) -> Result<AdaptiveSearchResult, AnalysisError> {
        match self.policy {
            Some(policy) => {
                let mut rescheduler = Rescheduler::with_telemetry(policy, &self.telemetry);
                Ok(tree_search_adaptive(
                    &mut self.kernel,
                    config,
                    &mut rescheduler,
                    &self.base_costs,
                )?)
            }
            None => {
                let (result, recoveries) = tree_search_resilient(&mut self.kernel, config)?;
                Ok(AdaptiveSearchResult {
                    result,
                    events: Vec::new(),
                    recoveries,
                })
            }
        }
    }

    /// The session's telemetry handle (disabled unless the builder armed it
    /// via [`AnalysisBuilder::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A consistent point-in-time snapshot of the session's telemetry —
    /// counters, latency/imbalance histograms and the typed event log.
    /// `None` unless the builder armed telemetry.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.enabled().then(|| self.telemetry.snapshot())
    }

    /// The live work trace accumulated since construction or the last
    /// [`Analysis::take_trace`] (empty unless the session is timed/traced).
    pub fn trace(&self) -> &WorkTrace {
        self.kernel.executor().live_trace()
    }

    /// Takes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> WorkTrace {
        self.kernel.executor_mut().take_trace()
    }

    /// The assignment the current workers were built from (after a mid-run
    /// migration this is the *migrated* schedule).
    pub fn assignment(&self) -> &Assignment {
        self.kernel.executor().assignment()
    }

    /// Predicted-vs-measured per-worker load of the current schedule against
    /// the live trace, in analytic FLOPs.
    pub fn imbalance_report(&self) -> ImbalanceReport {
        self.imbalance_report_in(TraceUnit::Flops)
    }

    /// [`Analysis::imbalance_report`] in an explicit unit
    /// ([`TraceUnit::Seconds`] for timed real-thread sessions).
    pub fn imbalance_report_in(&self, unit: TraceUnit) -> ImbalanceReport {
        imbalance_report_in(self.assignment(), self.trace(), unit)
    }

    /// The analytic per-pattern cost model the schedule was built from.
    pub fn base_costs(&self) -> &PatternCosts {
        &self.base_costs
    }

    /// Current tree topology.
    pub fn tree(&self) -> &Tree {
        self.kernel.tree()
    }

    /// Synchronization events issued to the executor so far.
    pub fn sync_events(&self) -> u64 {
        self.kernel.sync_events()
    }

    /// The underlying likelihood engine (full low-level API).
    pub fn kernel(&self) -> &LikelihoodKernel<E> {
        &self.kernel
    }

    /// Mutable access to the underlying engine (e.g. to set parameters or
    /// arm test instrumentation on the executor).
    pub fn kernel_mut(&mut self) -> &mut LikelihoodKernel<E> {
        &mut self.kernel
    }

    /// Consumes the session and returns the engine.
    pub fn into_kernel(self) -> LikelihoodKernel<E> {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_optimize::ParallelScheme;
    use phylo_sched::Cyclic;
    use phylo_seqgen::datasets::paper_simulated;

    fn dataset() -> phylo_seqgen::GeneratedDataset {
        paper_simulated(8, 160, 40, 11).generate()
    }

    #[test]
    fn builder_produces_a_working_session() {
        let ds = dataset();
        let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(2)
            .strategy(Cyclic)
            .build()
            .unwrap();
        let lnl = analysis.log_likelihood().unwrap();
        assert!(lnl.is_finite() && lnl < 0.0);
        assert!(analysis.sync_events() > 0);
        assert_eq!(analysis.assignment().worker_count(), 2);
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let ds = dataset();
        let err = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(0)
            .build()
            .unwrap_err();
        assert_eq!(err, AnalysisError::Sched(SchedError::NoWorkers));
    }

    #[test]
    fn model_partition_mismatch_is_a_typed_error() {
        let ds = dataset();
        // Models built for a *different* (single-partition) dataset.
        let other = paper_simulated(8, 40, 40, 12).generate();
        let wrong = ModelSet::default_for(&other.patterns, BranchLengthMode::Joint);
        let err = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .models(wrong)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::Kernel(KernelError::ModelCountMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_taxa_is_a_typed_error() {
        let ds = dataset();
        let other = paper_simulated(10, 160, 40, 13).generate();
        let err = Analysis::builder(Arc::clone(&other.patterns), ds.tree.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Kernel(_)));
    }

    #[test]
    fn traced_session_records_regions_and_reports_imbalance() {
        let ds = dataset();
        let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(4)
            .build_traced()
            .unwrap();
        let _ = analysis.log_likelihood().unwrap();
        assert!(analysis.trace().sync_events() > 0);
        let report = analysis.imbalance_report();
        assert_eq!(report.workers, 4);
        assert!(analysis.take_trace().sync_events() > 0);
        assert_eq!(analysis.trace().sync_events(), 0);
    }

    #[test]
    fn mask_aware_knob_installs_and_toggles_the_policy() {
        let ds = dataset();
        // Enabling without an explicit policy installs a mask-aware default.
        let builder = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone()).mask_aware(true);
        assert!(builder.policy.expect("policy installed").mask_aware);
        // Disabling without a policy stays policy-free.
        let builder =
            Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone()).mask_aware(false);
        assert!(builder.policy.is_none());
        // Toggling an explicit policy flips only the flag.
        let policy = ReschedulePolicy {
            imbalance_threshold: 2.5,
            ..ReschedulePolicy::default()
        };
        let builder = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .rescheduler(policy)
            .mask_aware(true);
        let installed = builder.policy.expect("explicit policy kept");
        assert!(installed.mask_aware);
        assert_eq!(installed.imbalance_threshold, 2.5);
    }

    #[test]
    fn mask_aware_session_runs_and_preserves_the_likelihood() {
        let ds = phylo_seqgen::datasets::mixed_dna_protein(6, 3, 2, 48, 17).generate();
        let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(7)
            .strategy(Cyclic)
            .rescheduler(ReschedulePolicy {
                imbalance_threshold: 1.0001,
                min_regions: 8,
                unit: TraceUnit::Flops,
                max_reschedules: 1,
                mask_aware: true,
                mask_decay: 0.85,
            })
            .build_traced()
            .unwrap();
        let report = analysis
            .optimize(&OptimizerConfig::new(ParallelScheme::New))
            .unwrap();
        assert!(
            !report.events.is_empty(),
            "the near-zero threshold must trigger a mask-aware migration"
        );
        for event in &report.events {
            assert!(event.log_likelihood_drift() < 1e-8);
        }
    }

    #[test]
    fn optimize_improves_the_likelihood_through_the_facade() {
        let ds = dataset();
        let mut analysis = Analysis::builder(Arc::clone(&ds.patterns), ds.tree.clone())
            .threads(2)
            .build()
            .unwrap();
        let report = analysis
            .optimize(&OptimizerConfig::new(ParallelScheme::New))
            .unwrap();
        assert!(report.report.final_log_likelihood > report.report.initial_log_likelihood);
        assert!(report.events.is_empty());
        assert!(report.recoveries.is_empty());
    }
}
