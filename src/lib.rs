//! # plf-loadbalance
//!
//! A reproduction of *"Load Balance in the Phylogenetic Likelihood Kernel"*
//! (Stamatakis & Ott, ICPP 2009) as a Rust workspace: a partitioned
//! phylogenetic likelihood kernel with RAxML-style fine-grained (per-pattern)
//! parallelism, in which the iterative optimizers (Newton–Raphson for branch
//! lengths, Brent for the Q matrix and the Γ shape parameter) can be run
//! either one partition at a time (**oldPAR**, the baseline) or simultaneously
//! over all partitions with a per-partition convergence mask (**newPAR**, the
//! paper's contribution).
//!
//! This crate is a facade that re-exports the workspace crates under one
//! namespace and adds the one-stop [`Analysis`] session API on top; see the
//! README for a tour and `DESIGN.md` for the paper-to-module mapping.
//!
//! The whole execution surface is **fallible by default**: a worker death in
//! a parallel backend is a value ([`prelude::KernelError`]), not a crash,
//! and the drivers recover from it mid-run by rebuilding the workers.
//!
//! ```
//! use plf_loadbalance::prelude::*;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), AnalysisError> {
//! // A small partitioned dataset simulated on a random tree.
//! let dataset = paper_simulated(8, 200, 50, 42).generate();
//! let mut analysis = Analysis::builder(Arc::clone(&dataset.patterns), dataset.tree.clone())
//!     .threads(2)
//!     .strategy(WeightedLpt)
//!     .build()?;
//! let outcome = analysis.optimize(&OptimizerConfig::new(ParallelScheme::New))?;
//! assert!(outcome.report.final_log_likelihood > outcome.report.initial_log_likelihood);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod analysis;

pub use analysis::{Analysis, AnalysisBuilder, AnalysisError};

pub use phylo_data as data;
pub use phylo_kernel as kernel;
pub use phylo_math as math;
pub use phylo_models as models;
pub use phylo_optimize as optimize;
pub use phylo_parallel as parallel;
pub use phylo_perfmodel as perfmodel;
pub use phylo_sched as sched;
pub use phylo_search as search;
pub use phylo_seqgen as seqgen;
pub use phylo_serve as serve;
pub use phylo_telemetry as telemetry;
pub use phylo_tree as tree;

/// The most commonly used types and functions in one import.
pub mod prelude {
    pub use crate::analysis::{Analysis, AnalysisBuilder, AnalysisError};
    pub use phylo_data::{Alignment, DataType, Partition, PartitionSet, PartitionedPatterns};
    pub use phylo_kernel::{
        engine::BranchScope, BranchTables, ExecError, KernelDispatch, KernelError,
        LikelihoodKernel, MaskDictionary, OpError, SequentialKernel, TraceUnit, WorkTrace,
    };
    pub use phylo_models::{BranchLengthMode, ModelSet, PartitionModel, SubstitutionModel};
    pub use phylo_optimize::{
        optimize_all_branches, optimize_model_parameters, optimize_model_parameters_adaptive,
        optimize_model_parameters_resilient, AdaptiveOptimizationReport, HookPoint, OptimizeError,
        OptimizerConfig, ParallelScheme, RescheduleEvent, WorkerRecovery,
    };
    pub use phylo_parallel::{
        build_workers, schedule, ExecutorOptions, RayonExecutor, ThreadedExecutor, TracingExecutor,
        WorkerSkew,
    };
    pub use phylo_perfmodel::{
        imbalance_report, imbalance_report_in, CostCalibration, ImbalanceReport, Platform,
    };
    pub use phylo_sched::{
        worker_imbalance, Assignment, Block, Cyclic, PartitionAwareLpt, PatternCosts, Reassignable,
        RescheduleDecision, ReschedulePolicy, Rescheduler, SchedError, ScheduleStrategy,
        SpeedAwareLpt, TraceAdaptive, WeightedLpt,
    };
    pub use phylo_search::{
        tree_search, tree_search_adaptive, tree_search_resilient, AdaptiveSearchResult,
        SearchConfig, SearchResult,
    };
    pub use phylo_seqgen::datasets::{
        mixed_dna_protein, paper_real_world, paper_simulated, DatasetSpec, RealWorldKind,
    };
    pub use phylo_serve::{
        AdmissionError, PoolStats, ServeError, SessionManager, SessionOutcome, SessionSpec,
        TenantStrategy,
    };
    pub use phylo_telemetry::{
        BenchEnvelope, Telemetry, TelemetryConfig, TelemetryEvent, TelemetrySnapshot,
    };
    pub use phylo_tree::{newick, Tree};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        // Type-level smoke test: constructing a spec and a config through the
        // facade works.
        let spec = paper_simulated(10, 100, 50, 1);
        assert_eq!(spec.partition_count(), 2);
        let _ = OptimizerConfig::new(ParallelScheme::Old);
        let _ = SearchConfig::default();
        let platforms = Platform::paper_platforms();
        assert_eq!(platforms.len(), 4);
    }
}
