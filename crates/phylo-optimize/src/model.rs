//! Brent-based optimization of the per-partition model parameters (Γ shape α
//! and the Q-matrix exchangeabilities) in the oldPAR and newPAR schemes.
//!
//! Evaluating a candidate α or rate requires invalidating and recomputing the
//! partition's CLVs with a *full* tree traversal, so every Brent iteration is
//! expensive: one newview region plus one evaluate region. oldPAR pays those
//! two regions per iteration *per partition* (and the regions only span that
//! partition's patterns); newPAR advances the Brent state machines of all
//! not-yet-converged partitions together, so the same two regions per
//! iteration span every active partition.

use phylo_kernel::{Executor, KernelError, LikelihoodKernel};
use phylo_math::brent::{BrentState, BrentStep};
use phylo_math::gamma_rates::{MAX_ALPHA, MIN_ALPHA};
use phylo_models::substitution::GTR_RATE_COUNT;

use crate::config::{OptimizerConfig, ParallelScheme};

/// Work counters of a model-parameter optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelOptimizationStats {
    /// Total Brent objective evaluations summed over partitions.
    pub brent_evaluations: u64,
    /// Parallel evaluation rounds issued (each is one newview + one evaluate
    /// region); this is the count that differs between oldPAR and newPAR.
    pub evaluation_rounds: u64,
}

impl ModelOptimizationStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, other: ModelOptimizationStats) {
        self.brent_evaluations += other.brent_evaluations;
        self.evaluation_rounds += other.evaluation_rounds;
    }
}

/// Which model parameter a Brent pass optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelParameter {
    /// The Γ shape parameter α.
    Alpha,
    /// One exchangeability of the GTR matrix (DNA partitions only).
    Exchangeability(usize),
}

impl ModelParameter {
    /// Stable label used in telemetry probe events.
    fn label(&self) -> &'static str {
        match self {
            ModelParameter::Alpha => "alpha",
            ModelParameter::Exchangeability(_) => "exchangeability",
        }
    }
}

fn parameter_value<E: Executor>(
    kernel: &LikelihoodKernel<E>,
    partition: usize,
    param: ModelParameter,
) -> f64 {
    match param {
        ModelParameter::Alpha => kernel.alpha(partition),
        ModelParameter::Exchangeability(i) => kernel.exchangeability(partition, i),
    }
}

fn set_parameter<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    partition: usize,
    param: ModelParameter,
    value: f64,
) {
    match param {
        ModelParameter::Alpha => kernel.set_alpha(partition, value),
        ModelParameter::Exchangeability(i) => kernel.set_exchangeability(partition, i, value),
    }
}

fn parameter_bounds(param: ModelParameter, current: f64) -> (f64, f64) {
    let (global_lo, global_hi) = match param {
        ModelParameter::Alpha => (MIN_ALPHA, MAX_ALPHA),
        ModelParameter::Exchangeability(_) => (1.0e-2, 100.0),
    };
    // Bracket around the current value (in the spirit of RAxML's Brent
    // wrapper), clamped to the global bounds; Brent then works in log space.
    let lo = (current / 8.0).max(global_lo);
    let hi = (current * 8.0).min(global_hi);
    (lo.ln(), hi.ln())
}

/// Whether a parameter applies to a partition.
fn applicable<E: Executor>(
    kernel: &LikelihoodKernel<E>,
    partition: usize,
    param: ModelParameter,
) -> bool {
    match param {
        ModelParameter::Alpha => true,
        // Only DNA partitions have free exchangeabilities; protein partitions
        // keep their empirical matrix, and the last DNA rate (GT) is the fixed
        // reference rate.
        ModelParameter::Exchangeability(i) => {
            kernel.models().model(partition).data_type() == phylo_data::DataType::Dna
                && i < GTR_RATE_COUNT - 1
        }
    }
}

/// One Brent pass over a single parameter for every applicable partition.
fn optimize_parameter<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    param: ModelParameter,
    config: &OptimizerConfig,
) -> Result<ModelOptimizationStats, KernelError> {
    match config.scheme {
        ParallelScheme::Old => optimize_parameter_old(kernel, param, config),
        ParallelScheme::New => optimize_parameter_new(kernel, param, config),
    }
}

/// Evaluates the masked partitions at the current parameter values and returns
/// their (negated) log likelihoods. One call = one newview + one evaluate
/// region.
fn evaluate_masked<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    mask: &[bool],
) -> Result<Vec<f64>, KernelError> {
    let root = kernel.default_root_branch();
    kernel.try_log_likelihood_partitions(root, &mask.to_vec())
}

fn optimize_parameter_old<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    param: ModelParameter,
    config: &OptimizerConfig,
) -> Result<ModelOptimizationStats, KernelError> {
    let mut stats = ModelOptimizationStats::default();
    let partitions = kernel.partition_count();
    let telemetry = kernel.telemetry().clone();
    for p in 0..partitions {
        if !applicable(kernel, p, param) {
            continue;
        }
        let current = parameter_value(kernel, p, param);
        let (lo, hi) = parameter_bounds(param, current);
        let mut state = BrentState::new(lo, hi);
        // Initial evaluation.
        set_parameter(kernel, p, param, state.initial_point().exp());
        let mask = kernel.single_mask(p);
        let lnl = evaluate_masked(kernel, &mask)?[p];
        stats.evaluation_rounds += 1;
        stats.brent_evaluations += 1;
        telemetry.brent_probe(param.label(), p, state.initial_point().exp(), lnl);
        state.set_initial_value(-lnl);

        for _ in 0..config.brent_max_iter {
            match state.propose(config.brent_tolerance) {
                BrentStep::Converged => break,
                BrentStep::Evaluate(x) => {
                    set_parameter(kernel, p, param, x.exp());
                    let lnl = evaluate_masked(kernel, &mask)?[p];
                    stats.evaluation_rounds += 1;
                    stats.brent_evaluations += 1;
                    telemetry.brent_probe(param.label(), p, x.exp(), lnl);
                    state.update(x, -lnl);
                }
            }
        }
        set_parameter(kernel, p, param, state.best_point().exp());
    }
    Ok(stats)
}

fn optimize_parameter_new<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    param: ModelParameter,
    config: &OptimizerConfig,
) -> Result<ModelOptimizationStats, KernelError> {
    let mut stats = ModelOptimizationStats::default();
    let partitions = kernel.partition_count();
    let telemetry = kernel.telemetry().clone();
    let mut states: Vec<Option<BrentState>> = (0..partitions)
        .map(|p| {
            if applicable(kernel, p, param) {
                let current = parameter_value(kernel, p, param);
                let (lo, hi) = parameter_bounds(param, current);
                Some(BrentState::new(lo, hi))
            } else {
                None
            }
        })
        .collect();
    if states.iter().all(|s| s.is_none()) {
        return Ok(stats);
    }

    // Initial evaluation of every applicable partition, in one round.
    let mut mask = vec![false; partitions];
    for (p, state) in states.iter().enumerate() {
        if let Some(state) = state {
            set_parameter(kernel, p, param, state.initial_point().exp());
            mask[p] = true;
            stats.brent_evaluations += 1;
        }
    }
    let lnls = evaluate_masked(kernel, &mask)?;
    stats.evaluation_rounds += 1;
    for (p, state) in states.iter_mut().enumerate() {
        if let Some(state) = state {
            telemetry.brent_probe(param.label(), p, state.initial_point().exp(), lnls[p]);
            state.set_initial_value(-lnls[p]);
        }
    }

    // Simultaneous iteration with the per-partition convergence mask.
    for _ in 0..config.brent_max_iter {
        let mut mask = vec![false; partitions];
        let mut proposals: Vec<Option<f64>> = vec![None; partitions];
        for (p, state) in states.iter_mut().enumerate() {
            if let Some(state) = state {
                match state.propose(config.brent_tolerance) {
                    BrentStep::Converged => {}
                    BrentStep::Evaluate(x) => {
                        proposals[p] = Some(x);
                        mask[p] = true;
                    }
                }
            }
        }
        if proposals.iter().all(|p| p.is_none()) {
            break;
        }
        for (p, proposal) in proposals.iter().enumerate() {
            if let Some(x) = proposal {
                set_parameter(kernel, p, param, x.exp());
                stats.brent_evaluations += 1;
            }
        }
        let lnls = evaluate_masked(kernel, &mask)?;
        stats.evaluation_rounds += 1;
        for (p, proposal) in proposals.iter().enumerate() {
            if let Some(x) = proposal {
                telemetry.brent_probe(param.label(), p, x.exp(), lnls[p]);
                states[p]
                    .as_mut()
                    .expect("proposal implies an active state")
                    .update(*x, -lnls[p]);
            }
        }
    }

    // Apply the best points found.
    for (p, state) in states.iter().enumerate() {
        if let Some(state) = state {
            set_parameter(kernel, p, param, state.best_point().exp());
        }
    }
    Ok(stats)
}

/// Optimizes the Γ shape parameter α of every partition.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine.
pub fn optimize_alphas<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
) -> Result<ModelOptimizationStats, KernelError> {
    optimize_parameter(kernel, ModelParameter::Alpha, config)
}

/// Optimizes the free GTR exchangeabilities of every DNA partition (one Brent
/// pass per rate, as in RAxML's round-robin rate optimization).
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine.
pub fn optimize_exchangeabilities<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
) -> Result<ModelOptimizationStats, KernelError> {
    let mut stats = ModelOptimizationStats::default();
    for rate in 0..GTR_RATE_COUNT - 1 {
        stats.merge(optimize_parameter(
            kernel,
            ModelParameter::Exchangeability(rate),
            config,
        )?);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_kernel::SequentialKernel;
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    fn kernel(seed: u64) -> SequentialKernel {
        let ds = paper_simulated(8, 320, 80, seed).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap()
    }

    #[test]
    fn alpha_optimization_improves_likelihood() {
        let mut k = kernel(1);
        let before = k.try_log_likelihood().unwrap();
        let config = OptimizerConfig::new(ParallelScheme::New);
        let stats = optimize_alphas(&mut k, &config).unwrap();
        let after = k.try_log_likelihood().unwrap();
        assert!(
            after >= before - 1e-9,
            "lnL must not get worse: {before} -> {after}"
        );
        assert!(
            after > before + 0.5,
            "expected a real improvement: {before} -> {after}"
        );
        assert!(stats.brent_evaluations > 0);
        // The optimized alphas should differ between partitions (each gene was
        // simulated with its own shape).
        let alphas: Vec<f64> = (0..k.partition_count()).map(|p| k.alpha(p)).collect();
        let min = alphas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = alphas.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min > 0.05,
            "per-partition alphas should differ: {alphas:?}"
        );
    }

    #[test]
    fn old_and_new_schemes_agree_on_alpha_optima() {
        let mut k_old = kernel(2);
        let mut k_new = kernel(2);
        let stats_old =
            optimize_alphas(&mut k_old, &OptimizerConfig::new(ParallelScheme::Old)).unwrap();
        let stats_new =
            optimize_alphas(&mut k_new, &OptimizerConfig::new(ParallelScheme::New)).unwrap();
        for p in 0..k_old.partition_count() {
            let a = k_old.alpha(p);
            let b = k_new.alpha(p);
            assert!(
                (a.ln() - b.ln()).abs() < 0.05,
                "partition {p}: alpha {a} vs {b}"
            );
        }
        // Same total number of Brent evaluations (same state machines), but far
        // fewer evaluation rounds in the new scheme.
        assert_eq!(stats_old.brent_evaluations, stats_new.brent_evaluations);
        assert!(
            stats_old.evaluation_rounds > stats_new.evaluation_rounds * 2,
            "oldPAR rounds {} vs newPAR rounds {}",
            stats_old.evaluation_rounds,
            stats_new.evaluation_rounds
        );
    }

    #[test]
    fn exchangeability_optimization_improves_likelihood() {
        let mut k = kernel(3);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let before = k.try_log_likelihood().unwrap();
        let stats = optimize_exchangeabilities(&mut k, &config).unwrap();
        let after = k.try_log_likelihood().unwrap();
        assert!(
            after > before,
            "rate optimization must improve lnL: {before} -> {after}"
        );
        assert!(stats.evaluation_rounds > 0);
    }

    #[test]
    fn protein_partitions_are_skipped_for_rate_optimization() {
        use phylo_seqgen::datasets::DatasetSpec;
        let spec = DatasetSpec {
            name: "mini_protein".into(),
            taxa: 6,
            partition_columns: vec![40, 40],
            data_type: phylo_data::DataType::Protein,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.0,
            seed: 4,
        };
        let ds = spec.generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut k =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
        let before_exch: Vec<f64> = (0..2).map(|p| k.exchangeability(p, 0)).collect();
        let config = OptimizerConfig::new(ParallelScheme::New);
        let stats = optimize_exchangeabilities(&mut k, &config).unwrap();
        assert_eq!(
            stats.brent_evaluations, 0,
            "no free rates on protein partitions"
        );
        for (p, &before) in before_exch.iter().enumerate() {
            assert!((k.exchangeability(p, 0) - before).abs() < 1e-15);
        }
    }

    #[test]
    fn alpha_recovers_rate_heterogeneity_signal() {
        // A dataset simulated with strong heterogeneity (the generator draws
        // alpha in [0.3, 1.6]) should not be optimized towards the "no
        // heterogeneity" limit.
        let mut k = kernel(5);
        let config = OptimizerConfig::new(ParallelScheme::New);
        optimize_alphas(&mut k, &config).unwrap();
        for p in 0..k.partition_count() {
            let alpha = k.alpha(p);
            assert!(
                (0.05..50.0).contains(&alpha),
                "partition {p}: implausible alpha {alpha}"
            );
        }
    }
}
