//! Iterative model-parameter and branch-length optimization in the two
//! parallelization schemes compared by the paper.
//!
//! The maximum-likelihood estimate of a partitioned analysis requires, per
//! partition, optimizing the Q-matrix exchangeabilities and the Γ shape
//! parameter α with Brent's method, and the branch lengths with
//! Newton–Raphson. Because the number of iterations to convergence differs
//! between partitions, there are two ways to organize the parallel work:
//!
//! * **oldPAR** ([`ParallelScheme::Old`]) — the original approach: optimize
//!   one partition at a time. Every iteration of every partition is its own
//!   parallel region over *only that partition's patterns*: with short
//!   partitions and many threads most workers receive little or no work and
//!   the synchronization count is `Σ_p iterations(p)`.
//! * **newPAR** ([`ParallelScheme::New`]) — the paper's contribution: advance
//!   the iterative optimizers of *all* partitions simultaneously, tracking a
//!   per-partition boolean convergence vector. Every iteration is one parallel
//!   region spanning all not-yet-converged partitions, so the synchronization
//!   count is `max_p iterations(p)` and each worker gets close to `m′/T`
//!   patterns of work per region.
//!
//! Both schemes produce the same optima (they evaluate the same sequence of
//! candidate points per partition); only the batching differs — which is
//! exactly why the paper's speedups are "free" accuracy-wise.
//!
//! ```
//! use std::sync::Arc;
//! use phylo_kernel::SequentialKernel;
//! use phylo_models::{BranchLengthMode, ModelSet};
//! use phylo_optimize::{optimize_model_parameters, OptimizerConfig, ParallelScheme};
//! use phylo_seqgen::datasets::paper_simulated;
//!
//! let ds = paper_simulated(6, 60, 30, 7).generate();
//! let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
//! let mut kernel = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
//!
//! let config = OptimizerConfig::search_phase(ParallelScheme::New);
//! let report = optimize_model_parameters(&mut kernel, &config).unwrap();
//! assert!(report.final_log_likelihood >= report.initial_log_likelihood);
//! assert!(report.rounds >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod branches;
pub mod config;
pub mod driver;
pub mod error;
pub mod model;

pub use adaptive::{
    optimize_model_parameters_adaptive, optimize_model_parameters_resilient, recover_worker_death,
    reschedule_if_needed, reschedule_mid_round, AdaptiveOptimizationReport, RescheduleEvent,
    WorkerRecovery,
};
pub use branches::{
    optimize_all_branches, optimize_all_branches_with_hook, optimize_branch,
    BranchOptimizationStats,
};
pub use config::{OptimizerConfig, ParallelScheme};
pub use driver::{optimize_model_parameters, HookPoint, OptimizationReport};
pub use error::OptimizeError;
pub use model::{optimize_alphas, optimize_exchangeabilities, ModelOptimizationStats};
