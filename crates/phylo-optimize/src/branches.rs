//! Newton–Raphson branch-length optimization (the RAxML `makenewz` loop) in
//! the oldPAR and newPAR schemes.
//!
//! Per branch, the kernel first builds the branch sum tables (one parallel
//! region), after which every Newton–Raphson iteration is a single cheap
//! parallel region evaluating the first and second derivative of the log
//! likelihood at the current candidate length. With per-partition branch
//! lengths the iteration counts differ between partitions; oldPAR runs the
//! whole procedure per partition, newPAR runs one iteration stream whose
//! regions cover every not-yet-converged partition (the convergence mask).

use phylo_kernel::engine::BranchScope;
use phylo_kernel::{Executor, KernelError, LikelihoodKernel};
use phylo_math::newton::{NewtonState, NewtonStep};
use phylo_models::BranchLengthMode;
use phylo_tree::topology::{MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH};
use phylo_tree::BranchId;

use crate::config::{OptimizerConfig, ParallelScheme};

/// Work counters of a branch-length optimization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchOptimizationStats {
    /// Branches processed.
    pub branches_optimized: u64,
    /// Total Newton–Raphson iterations summed over partitions.
    pub newton_iterations: u64,
    /// Derivative parallel regions issued (the synchronization events that
    /// differ between oldPAR and newPAR).
    pub derivative_regions: u64,
}

impl BranchOptimizationStats {
    /// Accumulates another stats record.
    pub fn merge(&mut self, other: BranchOptimizationStats) {
        self.branches_optimized += other.branches_optimized;
        self.newton_iterations += other.newton_iterations;
        self.derivative_regions += other.derivative_regions;
    }
}

/// Optimizes the length(s) of one branch.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine (e.g. a worker death in the
/// parallel backend); the master-side state keeps whatever lengths had been
/// committed before the failure.
pub fn optimize_branch<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    branch: BranchId,
    config: &OptimizerConfig,
) -> Result<BranchOptimizationStats, KernelError> {
    let mut stats = BranchOptimizationStats {
        branches_optimized: 1,
        ..Default::default()
    };
    match kernel.models().branch_mode() {
        BranchLengthMode::Joint => optimize_branch_joint(kernel, branch, config, &mut stats)?,
        BranchLengthMode::PerPartition => match config.scheme {
            ParallelScheme::Old => optimize_branch_old(kernel, branch, config, &mut stats)?,
            ParallelScheme::New => optimize_branch_new(kernel, branch, config, &mut stats)?,
        },
    }
    Ok(stats)
}

/// Joint branch lengths: one Newton–Raphson iteration stream whose derivative
/// is the sum over all partitions. Both schemes behave identically here, which
/// is why the paper reports only ≈5 % differences for joint analyses.
fn optimize_branch_joint<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    branch: BranchId,
    config: &OptimizerConfig,
    stats: &mut BranchOptimizationStats,
) -> Result<(), KernelError> {
    let mask = kernel.full_mask();
    kernel.try_prepare_branch(branch, &mask)?;
    let partitions = kernel.partition_count();
    let telemetry = kernel.telemetry().clone();
    let mut state = NewtonState::new(
        kernel.branch_length(0, branch),
        MIN_BRANCH_LENGTH,
        MAX_BRANCH_LENGTH,
        config.branch_epsilon,
        config.branch_max_iter,
    );
    while let NewtonStep::Evaluate(t) = state.propose() {
        // `NewtonState` already confines its iterates to the state's
        // [lower, upper] interval; the clamp (here and in the oldPAR/newPAR
        // loops below) re-asserts that invariant at the exact point a probe
        // crosses the kernel boundary, which now *rejects* out-of-domain
        // lengths as typed errors rather than exponentiating them.
        let t = t.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
        let lengths: Vec<Option<f64>> = vec![Some(t); partitions];
        let ders = kernel.try_branch_derivatives(&lengths)?;
        stats.derivative_regions += 1;
        stats.newton_iterations += 1;
        let (mut lnl, mut d1, mut d2) = (0.0, 0.0, 0.0);
        for d in ders.into_iter().flatten() {
            lnl += d.log_likelihood;
            d1 += d.first;
            d2 += d.second;
        }
        // A joint probe sums over all partitions — recorded without one.
        telemetry.newton_probe(branch, None, t, lnl, d1, d2);
        state.update(d1, d2);
    }
    kernel.set_branch_length(BranchScope::All, branch, state.current);
    Ok(())
}

/// oldPAR with per-partition branch lengths: the whole Newton–Raphson
/// procedure runs per partition; every iteration of every partition is its own
/// parallel region covering only that partition's patterns.
fn optimize_branch_old<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    branch: BranchId,
    config: &OptimizerConfig,
    stats: &mut BranchOptimizationStats,
) -> Result<(), KernelError> {
    let partitions = kernel.partition_count();
    let telemetry = kernel.telemetry().clone();
    for p in 0..partitions {
        let mask = kernel.single_mask(p);
        kernel.try_prepare_branch(branch, &mask)?;
        let mut state = NewtonState::new(
            kernel.branch_length(p, branch),
            MIN_BRANCH_LENGTH,
            MAX_BRANCH_LENGTH,
            config.branch_epsilon,
            config.branch_max_iter,
        );
        while let NewtonStep::Evaluate(t) = state.propose() {
            let t = t.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
            let mut lengths: Vec<Option<f64>> = vec![None; partitions];
            lengths[p] = Some(t);
            let ders = kernel.try_branch_derivatives(&lengths)?;
            stats.derivative_regions += 1;
            stats.newton_iterations += 1;
            let d = ders[p].expect("active partition must report derivatives");
            telemetry.newton_probe(branch, Some(p), t, d.log_likelihood, d.first, d.second);
            state.update(d.first, d.second);
        }
        kernel.set_branch_length(BranchScope::Partition(p), branch, state.current);
    }
    Ok(())
}

/// newPAR with per-partition branch lengths: one iteration stream; every
/// region evaluates the derivatives of *all* not-yet-converged partitions at
/// their own candidate lengths, guarded by the boolean convergence vector.
fn optimize_branch_new<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    branch: BranchId,
    config: &OptimizerConfig,
    stats: &mut BranchOptimizationStats,
) -> Result<(), KernelError> {
    let partitions = kernel.partition_count();
    let telemetry = kernel.telemetry().clone();
    let mask = kernel.full_mask();
    kernel.try_prepare_branch(branch, &mask)?;
    let mut states: Vec<NewtonState> = (0..partitions)
        .map(|p| {
            NewtonState::new(
                kernel.branch_length(p, branch),
                MIN_BRANCH_LENGTH,
                MAX_BRANCH_LENGTH,
                config.branch_epsilon,
                config.branch_max_iter,
            )
        })
        .collect();

    loop {
        // The convergence mask: converged partitions are excluded from the
        // parallel region so no likelihood work is wasted on them.
        let lengths: Vec<Option<f64>> = states
            .iter()
            .map(|s| match s.propose() {
                NewtonStep::Evaluate(t) => Some(t.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH)),
                NewtonStep::Converged => None,
            })
            .collect();
        let active = lengths.iter().filter(|l| l.is_some()).count();
        if active == 0 {
            break;
        }
        let ders = kernel.try_branch_derivatives(&lengths)?;
        stats.derivative_regions += 1;
        stats.newton_iterations += active as u64;
        for (p, der) in ders.into_iter().enumerate() {
            if let Some(t) = lengths[p] {
                let d = der.expect("active partition must report derivatives");
                telemetry.newton_probe(branch, Some(p), t, d.log_likelihood, d.first, d.second);
                states[p].update(d.first, d.second);
            }
        }
    }
    for (p, state) in states.iter().enumerate() {
        kernel.set_branch_length(BranchScope::Partition(p), branch, state.current);
    }
    Ok(())
}

/// Optimizes every branch in `branches` (or all branches when `None`),
/// repeating up to `config.branch_passes` smoothing passes, and returns the
/// final log likelihood together with the accumulated statistics.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine.
pub fn optimize_all_branches<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    branches: Option<&[BranchId]>,
    config: &OptimizerConfig,
) -> Result<(f64, BranchOptimizationStats), KernelError> {
    optimize_all_branches_with_hook(kernel, branches, config, |_| Ok(()))
}

/// The same smoothing loop with a hook invoked after every branch — the
/// *within-round* point where the mask-aware rescheduler looks at the
/// convergence-mask shape the branch's Newton streams just recorded. The
/// hook may mutate the kernel as long as it preserves the likelihood.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine or the hook.
pub fn optimize_all_branches_with_hook<E, F>(
    kernel: &mut LikelihoodKernel<E>,
    branches: Option<&[BranchId]>,
    config: &OptimizerConfig,
    mut after_branch: F,
) -> Result<(f64, BranchOptimizationStats), KernelError>
where
    E: Executor,
    F: FnMut(&mut LikelihoodKernel<E>) -> Result<(), KernelError>,
{
    let branch_list: Vec<BranchId> = match branches {
        Some(list) => list.to_vec(),
        None => kernel.tree().branches().collect(),
    };
    let mut stats = BranchOptimizationStats::default();
    for _pass in 0..config.branch_passes.max(1) {
        let mut max_change = 0.0f64;
        for &b in &branch_list {
            let before: Vec<f64> = (0..kernel.partition_count())
                .map(|p| kernel.branch_length(p, b))
                .collect();
            stats.merge(optimize_branch(kernel, b, config)?);
            for (p, &old) in before.iter().enumerate() {
                max_change = max_change.max((kernel.branch_length(p, b) - old).abs());
            }
            after_branch(kernel)?;
        }
        if max_change < config.branch_epsilon {
            break;
        }
    }
    Ok((kernel.try_log_likelihood()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_kernel::SequentialKernel;
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    fn kernel(mode: BranchLengthMode, seed: u64) -> SequentialKernel {
        let ds = paper_simulated(8, 240, 60, seed).generate();
        let models = ModelSet::default_for(&ds.patterns, mode);
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap()
    }

    #[test]
    fn optimizing_branches_improves_likelihood() {
        for mode in [BranchLengthMode::Joint, BranchLengthMode::PerPartition] {
            let mut k = kernel(mode, 1);
            let before = k.try_log_likelihood().unwrap();
            let config = OptimizerConfig::new(ParallelScheme::New);
            let (after, stats) = optimize_all_branches(&mut k, None, &config).unwrap();
            assert!(
                after > before + 1.0,
                "{mode:?}: lnL must improve substantially ({before} -> {after})"
            );
            assert!(stats.newton_iterations > 0);
            assert_eq!(
                stats.branches_optimized as usize % k.tree().branch_count(),
                0
            );
        }
    }

    #[test]
    fn old_and_new_schemes_reach_the_same_optimum() {
        let config_old = OptimizerConfig::new(ParallelScheme::Old);
        let config_new = OptimizerConfig::new(ParallelScheme::New);

        let mut k_old = kernel(BranchLengthMode::PerPartition, 2);
        let mut k_new = kernel(BranchLengthMode::PerPartition, 2);
        let (lnl_old, _) = optimize_all_branches(&mut k_old, None, &config_old).unwrap();
        let (lnl_new, _) = optimize_all_branches(&mut k_new, None, &config_new).unwrap();
        assert!(
            (lnl_old - lnl_new).abs() < 0.05,
            "schemes must agree on the optimum: {lnl_old} vs {lnl_new}"
        );
        // Branch lengths agree per partition.
        for b in k_old.tree().branches() {
            for p in 0..k_old.partition_count() {
                let a = k_old.branch_length(p, b);
                let c = k_new.branch_length(p, b);
                assert!((a - c).abs() < 5e-3, "branch {b} partition {p}: {a} vs {c}");
            }
        }
    }

    #[test]
    fn new_scheme_issues_far_fewer_derivative_regions() {
        let config_old = OptimizerConfig::new(ParallelScheme::Old);
        let config_new = OptimizerConfig::new(ParallelScheme::New);

        let mut k_old = kernel(BranchLengthMode::PerPartition, 3);
        let mut k_new = kernel(BranchLengthMode::PerPartition, 3);
        let branch = k_old.tree().internal_branches()[0];
        let stats_old = optimize_branch(&mut k_old, branch, &config_old).unwrap();
        let stats_new = optimize_branch(&mut k_new, branch, &config_new).unwrap();
        let partitions = k_old.partition_count() as u64;
        assert!(partitions >= 4);
        assert!(
            stats_old.derivative_regions >= stats_new.derivative_regions * 2,
            "oldPAR regions {} should far exceed newPAR regions {}",
            stats_old.derivative_regions,
            stats_new.derivative_regions
        );
        // newPAR needs at most max-per-partition iterations, i.e. no more than
        // the per-branch iteration cap.
        assert!(stats_new.derivative_regions <= config_new.branch_max_iter as u64);
        // Total NR iterations are similar (same per-partition optimizations).
        let ratio = stats_old.newton_iterations as f64 / stats_new.newton_iterations as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "iteration totals should be comparable: {ratio}"
        );
    }

    #[test]
    fn per_partition_lengths_diverge_between_partitions() {
        // The generator gives each partition its own simulation parameters, so
        // the optimized per-partition lengths of one branch should not all be
        // identical.
        let mut k = kernel(BranchLengthMode::PerPartition, 4);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let (_, _) = optimize_all_branches(&mut k, None, &config).unwrap();
        let branch = k.tree().internal_branches()[0];
        let lengths: Vec<f64> = (0..k.partition_count())
            .map(|p| k.branch_length(p, branch))
            .collect();
        let min = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lengths.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min > 1e-4,
            "per-partition branch lengths should differ: {lengths:?}"
        );
    }

    #[test]
    fn gradient_is_near_zero_at_the_optimum() {
        let mut k = kernel(BranchLengthMode::PerPartition, 5);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let branch = k.tree().internal_branches()[0];
        optimize_branch(&mut k, branch, &config).unwrap();
        // Re-evaluate the derivative at the optimized lengths.
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        let lengths: Vec<Option<f64>> = (0..k.partition_count())
            .map(|p| Some(k.branch_length(p, branch)))
            .collect();
        let ders = k.try_branch_derivatives(&lengths).unwrap();
        for (p, d) in ders.iter().enumerate() {
            let d = d.unwrap();
            let t = lengths[p].unwrap();
            // Interior optima have a (near-)zero gradient; boundary optima are
            // allowed to keep a one-sided gradient.
            if t > MIN_BRANCH_LENGTH * 2.0 && t < MAX_BRANCH_LENGTH * 0.9 {
                assert!(
                    d.first.abs() < 2.0,
                    "partition {p}: gradient {} too large at optimum {t}",
                    d.first
                );
            }
        }
    }

    #[test]
    fn subset_optimization_only_touches_requested_branches() {
        let mut k = kernel(BranchLengthMode::Joint, 6);
        let all: Vec<f64> = k.tree().branches().map(|b| k.branch_length(0, b)).collect();
        let subset = [0usize, 1];
        let config = OptimizerConfig::search_phase(ParallelScheme::New);
        let _ = optimize_all_branches(&mut k, Some(&subset), &config).unwrap();
        for b in k.tree().branches() {
            if !subset.contains(&b) {
                assert!(
                    (k.branch_length(0, b) - all[b]).abs() < 1e-15,
                    "branch {b} must be untouched"
                );
            }
        }
    }
}
