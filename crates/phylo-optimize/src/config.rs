//! Optimizer configuration.

/// Which parallelization scheme the iterative optimizers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelScheme {
    /// Optimize one partition at a time (the baseline the paper improves on).
    Old,
    /// Optimize all partitions simultaneously with a per-partition convergence
    /// mask (the paper's contribution).
    New,
}

impl std::fmt::Display for ParallelScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelScheme::Old => write!(f, "oldPAR"),
            ParallelScheme::New => write!(f, "newPAR"),
        }
    }
}

/// Tuning knobs of the optimizers. The defaults mirror typical RAxML settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Parallelization scheme for the iterative optimizers.
    pub scheme: ParallelScheme,
    /// Newton–Raphson step-size tolerance for branch lengths.
    pub branch_epsilon: f64,
    /// Maximum Newton–Raphson iterations per branch (per partition).
    pub branch_max_iter: usize,
    /// Maximum passes over all branches per branch-length smoothing round.
    pub branch_passes: usize,
    /// Brent relative tolerance for α and the Q-matrix rates.
    pub brent_tolerance: f64,
    /// Maximum Brent iterations per parameter (per partition).
    pub brent_max_iter: usize,
    /// Overall log-likelihood improvement threshold for the outer
    /// model-optimization loop.
    pub likelihood_epsilon: f64,
    /// Maximum outer rounds of (α, rates, branch lengths).
    pub max_rounds: usize,
    /// Whether to optimize the Q-matrix exchangeabilities (DNA partitions
    /// only; protein partitions always keep their empirical matrix).
    pub optimize_rates: bool,
    /// How many worker deaths a recovery-capable driver (one holding a
    /// `Reassignable` executor) may absorb per run by rebuilding the workers
    /// and resuming; the next death past the budget is reported as an error.
    pub max_worker_recoveries: usize,
}

impl OptimizerConfig {
    /// Default configuration for a given scheme.
    pub fn new(scheme: ParallelScheme) -> Self {
        Self {
            scheme,
            branch_epsilon: 1.0e-5,
            branch_max_iter: 32,
            branch_passes: 2,
            brent_tolerance: 1.0e-3,
            brent_max_iter: 24,
            likelihood_epsilon: 0.1,
            max_rounds: 4,
            optimize_rates: true,
            max_worker_recoveries: 2,
        }
    }

    /// A faster, coarser configuration used inside the tree search phase
    /// (RAxML likewise uses looser settings during the search and tight ones
    /// for the final model optimization).
    pub fn search_phase(scheme: ParallelScheme) -> Self {
        Self {
            branch_epsilon: 1.0e-3,
            branch_max_iter: 16,
            branch_passes: 1,
            brent_tolerance: 1.0e-2,
            brent_max_iter: 10,
            likelihood_epsilon: 1.0,
            max_rounds: 1,
            ..Self::new(scheme)
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self::new(ParallelScheme::New)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ParallelScheme::Old.to_string(), "oldPAR");
        assert_eq!(ParallelScheme::New.to_string(), "newPAR");
    }

    #[test]
    fn defaults_are_sane() {
        let c = OptimizerConfig::default();
        assert_eq!(c.scheme, ParallelScheme::New);
        assert!(c.branch_epsilon > 0.0);
        assert!(c.branch_max_iter > 0);
        assert!(c.brent_max_iter > 0);
        assert!(c.max_rounds > 0);
    }

    #[test]
    fn search_phase_is_coarser() {
        let tight = OptimizerConfig::new(ParallelScheme::Old);
        let loose = OptimizerConfig::search_phase(ParallelScheme::Old);
        assert!(loose.branch_epsilon > tight.branch_epsilon);
        assert!(loose.brent_max_iter < tight.brent_max_iter);
        assert_eq!(loose.scheme, ParallelScheme::Old);
    }
}
