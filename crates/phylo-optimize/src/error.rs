//! Error type of the driver layer.

use phylo_kernel::KernelError;
use phylo_sched::SchedError;

/// Why a driver (model optimization, tree search) could not complete.
///
/// Drivers fail as a *value*: a worker death that exhausts the recovery
/// budget, a shape mismatch between the supplied cost model and the kernel's
/// dataset, or a missing measurement path all land here instead of aborting
/// the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// The likelihood engine failed (most prominently
    /// `KernelError::Exec(ExecError::WorkerDied { .. })` after the worker
    /// recovery budget ran out).
    Kernel(KernelError),
    /// The scheduling layer rejected an input (mismatched base costs, no
    /// measurements to reschedule from, …).
    Sched(SchedError),
}

impl From<KernelError> for OptimizeError {
    fn from(e: KernelError) -> Self {
        OptimizeError::Kernel(e)
    }
}

impl From<SchedError> for OptimizeError {
    fn from(e: SchedError) -> Self {
        OptimizeError::Sched(e)
    }
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Kernel(e) => write!(f, "{e}"),
            Self::Sched(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Kernel(e) => Some(e),
            Self::Sched(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OptimizeError = SchedError::NoWorkers.into();
        assert!(matches!(e, OptimizeError::Sched(_)));
        assert!(!e.to_string().is_empty());
        let e: OptimizeError = KernelError::TaxaMismatch.into();
        assert!(matches!(e, OptimizeError::Kernel(_)));
        assert!(!e.to_string().is_empty());
    }
}
