//! The outer model-optimization loop.
//!
//! RAxML-style searches alternate between tree-search phases and model
//! optimization phases; the latter (and the stand-alone "optimize model
//! parameters on a fixed tree" experiment of the paper) repeatedly cycle
//! through α, the Q-matrix rates and a branch-length smoothing pass until the
//! log likelihood stops improving.

use phylo_kernel::{Executor, KernelError, LikelihoodKernel};

use crate::branches::{optimize_all_branches_with_hook, BranchOptimizationStats};
use crate::config::OptimizerConfig;
use crate::model::{optimize_alphas, optimize_exchangeabilities, ModelOptimizationStats};

/// Where in a driver loop a rescheduling hook fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookPoint {
    /// In the middle of a round — after one branch's Newton streams inside
    /// the smoothing pass (model optimization), or after the SPR sweep
    /// (tree search). This is where the mask-aware rescheduler reacts to the
    /// convergence-mask shape *within* the round.
    WithinRound,
    /// After a full outer round — the between-rounds point the plain
    /// (total-cost) rescheduler uses.
    RoundEnd,
}

/// Summary of a full model-parameter optimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizationReport {
    /// Log likelihood before any optimization.
    pub initial_log_likelihood: f64,
    /// Log likelihood after the final round.
    pub final_log_likelihood: f64,
    /// Number of outer rounds executed.
    pub rounds: usize,
    /// Branch-length work counters.
    pub branch_stats: BranchOptimizationStats,
    /// Model-parameter work counters.
    pub model_stats: ModelOptimizationStats,
    /// Synchronization events issued to the executor over the whole run.
    pub sync_events: u64,
}

/// Optimizes all model parameters (α, rates, branch lengths) on the fixed
/// current topology, alternating until the improvement per round drops below
/// `config.likelihood_epsilon` or `config.max_rounds` is reached.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine — most prominently a worker
/// death in a parallel backend. The master-side state (tree, models, branch
/// lengths) keeps every update committed before the failure, so a caller
/// that rebuilds the workers (`phylo_sched::Reassignable::reassign` +
/// `LikelihoodKernel::invalidate_all`) can call again and the optimization
/// *resumes* from where it got to; [`optimize_model_parameters_adaptive`]
/// does exactly that automatically.
///
/// [`optimize_model_parameters_adaptive`]: crate::adaptive::optimize_model_parameters_adaptive
pub fn optimize_model_parameters<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
) -> Result<OptimizationReport, KernelError> {
    optimize_model_parameters_with_hook(kernel, config, |_, _, _| Ok(()))
}

/// The same outer loop with a caller-supplied hook invoked at the two
/// rescheduling points: [`HookPoint::WithinRound`] after every branch of the
/// smoothing pass, and [`HookPoint::RoundEnd`] after every round —
/// deliberately *before* the convergence check, so the hook also runs
/// after the final round (a migration triggered there still benefits
/// whatever the caller runs next on the same kernel). The adaptive driver
/// uses the hook to migrate pattern→worker ownership mid-run; the hook may
/// mutate the kernel as long as it preserves the likelihood.
pub(crate) fn optimize_model_parameters_with_hook<E, F>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
    mut hook: F,
) -> Result<OptimizationReport, KernelError>
where
    E: Executor,
    F: FnMut(&mut LikelihoodKernel<E>, usize, HookPoint) -> Result<(), KernelError>,
{
    let sync_before = kernel.sync_events();
    let initial = kernel.try_log_likelihood()?;
    let mut current = initial;
    let mut branch_stats = BranchOptimizationStats::default();
    let mut model_stats = ModelOptimizationStats::default();
    let mut rounds = 0;

    for _ in 0..config.max_rounds.max(1) {
        rounds += 1;
        model_stats.merge(optimize_alphas(kernel, config)?);
        if config.optimize_rates {
            model_stats.merge(optimize_exchangeabilities(kernel, config)?);
        }
        let (lnl, bstats) = optimize_all_branches_with_hook(kernel, None, config, |kernel| {
            hook(kernel, rounds, HookPoint::WithinRound)
        })?;
        branch_stats.merge(bstats);

        let improvement = lnl - current;
        current = lnl;
        kernel.telemetry().optimizer_round(rounds, current);
        hook(kernel, rounds, HookPoint::RoundEnd)?;
        if improvement.abs() < config.likelihood_epsilon {
            break;
        }
    }

    Ok(OptimizationReport {
        initial_log_likelihood: initial,
        final_log_likelihood: current,
        rounds,
        branch_stats,
        model_stats,
        sync_events: kernel.sync_events() - sync_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelScheme;
    use phylo_kernel::SequentialKernel;
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    fn kernel(mode: BranchLengthMode, seed: u64) -> SequentialKernel {
        let ds = paper_simulated(8, 240, 60, seed).generate();
        let models = ModelSet::default_for(&ds.patterns, mode);
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap()
    }

    #[test]
    fn full_optimization_improves_likelihood_monotonically() {
        let mut k = kernel(BranchLengthMode::PerPartition, 1);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let report = optimize_model_parameters(&mut k, &config).unwrap();
        assert!(report.final_log_likelihood > report.initial_log_likelihood + 5.0);
        assert!(report.rounds >= 1);
        assert!(report.sync_events > 0);
        assert!(report.branch_stats.newton_iterations > 0);
        assert!(report.model_stats.brent_evaluations > 0);
    }

    #[test]
    fn schemes_agree_on_final_likelihood_but_not_on_sync_counts() {
        let mut k_old = kernel(BranchLengthMode::PerPartition, 2);
        let mut k_new = kernel(BranchLengthMode::PerPartition, 2);
        let report_old =
            optimize_model_parameters(&mut k_old, &OptimizerConfig::new(ParallelScheme::Old))
                .unwrap();
        let report_new =
            optimize_model_parameters(&mut k_new, &OptimizerConfig::new(ParallelScheme::New))
                .unwrap();
        let rel = (report_old.final_log_likelihood - report_new.final_log_likelihood).abs()
            / report_old.final_log_likelihood.abs();
        assert!(
            rel < 1e-3,
            "final lnL must agree: {} vs {}",
            report_old.final_log_likelihood,
            report_new.final_log_likelihood
        );
        assert!(
            report_old.sync_events > report_new.sync_events,
            "oldPAR must synchronize more often ({} vs {})",
            report_old.sync_events,
            report_new.sync_events
        );
    }

    #[test]
    fn joint_mode_also_converges() {
        let mut k = kernel(BranchLengthMode::Joint, 3);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let report = optimize_model_parameters(&mut k, &config).unwrap();
        assert!(report.final_log_likelihood > report.initial_log_likelihood);
    }

    #[test]
    fn rates_can_be_disabled() {
        let mut k = kernel(BranchLengthMode::Joint, 4);
        let config = OptimizerConfig {
            optimize_rates: false,
            max_rounds: 1,
            ..OptimizerConfig::default()
        };
        let report = optimize_model_parameters(&mut k, &config).unwrap();
        assert!(report.final_log_likelihood >= report.initial_log_likelihood);
    }
}
