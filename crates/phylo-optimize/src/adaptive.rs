//! Measured-time feedback into the running optimizer.
//!
//! This is the end of the measurement loop the paper motivates: the analytic
//! cost model decides the *initial* schedule, a timed executor measures what
//! each worker actually costs per region, and the [`Rescheduler`] migrates
//! pattern→worker ownership mid-run when the measurement says the schedule
//! is wrong (a throttled core, a mis-ranked pattern class). Migration
//! rebuilds the executor's worker slices from the new [`Assignment`] and
//! invalidates the master-side CLV cache; the likelihood is
//! placement-invariant, so log likelihoods before and after a migration
//! agree to ≤ 1e-8 (only the reduction's summation order changes).
//!
//! [`Assignment`]: phylo_sched::Assignment

use std::sync::Arc;

use phylo_kernel::cost::WorkTrace;
use phylo_kernel::{Executor, KernelError, LikelihoodKernel};
use phylo_sched::{PatternCosts, Reassignable, Rescheduler, SchedError};

use crate::config::OptimizerConfig;
use crate::driver::{optimize_model_parameters_with_hook, HookPoint, OptimizationReport};
use crate::error::OptimizeError;

/// One mid-run ownership migration.
#[derive(Debug, Clone, PartialEq)]
pub struct RescheduleEvent {
    /// Outer optimization round the migration happened in (1-based).
    pub round: usize,
    /// Whether the migration fired *within* the round (a mask-aware
    /// rescheduler reacting to the convergence-mask shape between branches)
    /// rather than at the between-rounds point.
    pub within_round: bool,
    /// Measured per-worker imbalance (max/mean) that triggered it — the
    /// whole-epoch total for the plain policy, the recent-window live
    /// imbalance for a mask-aware one.
    pub measured_imbalance: f64,
    /// Predicted imbalance of the new assignment under the base cost model.
    pub predicted_imbalance: f64,
    /// Estimated per-worker speeds the new schedule packs against.
    pub speeds: Vec<f64>,
    /// Log likelihood evaluated immediately before the migration.
    pub log_likelihood_before: f64,
    /// Log likelihood evaluated immediately after (must agree to ≤ 1e-8).
    pub log_likelihood_after: f64,
    /// The measured trace of the epoch that ended at this migration
    /// (rebuilding the workers restarts the trace, so it is captured here —
    /// a full run's measurements are the events' epoch traces plus the
    /// executor's live trace at the end).
    pub epoch_trace: WorkTrace,
}

impl RescheduleEvent {
    /// Absolute log-likelihood drift across the migration.
    pub fn log_likelihood_drift(&self) -> f64 {
        (self.log_likelihood_after - self.log_likelihood_before).abs()
    }
}

/// One absorbed worker death: the driver rebuilt the workers from the
/// current assignment, invalidated the master-side CLV cache and resumed.
/// All parameter updates committed before the death live in the master
/// state, so nothing optimized so far is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRecovery {
    /// The worker whose death was absorbed.
    pub worker: usize,
    /// 1-based recovery attempt within the run.
    pub attempt: usize,
}

/// [`OptimizationReport`] plus the migrations that happened along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOptimizationReport {
    /// The ordinary optimization outcome.
    pub report: OptimizationReport,
    /// Mid-run migrations, in execution order (empty if the policy never
    /// triggered).
    pub events: Vec<RescheduleEvent>,
    /// Worker deaths absorbed by rebuilding the workers mid-run (empty in a
    /// healthy run). When non-empty, `report` describes the final resumed
    /// attempt: its initial log likelihood and work counters start at the
    /// last recovery point, not at the original call.
    pub recoveries: Vec<WorkerRecovery>,
}

/// Entry guard shared by the adaptive drivers (model optimization here,
/// `tree_search_adaptive` in `phylo-search`): `base_costs` must describe the
/// kernel's dataset.
///
/// # Errors
///
/// [`SchedError::PatternCountMismatch`] on disagreement.
pub fn validate_base_costs<E: Executor>(
    kernel: &LikelihoodKernel<E>,
    base_costs: &PatternCosts,
) -> Result<(), SchedError> {
    if base_costs.pattern_count() != kernel.patterns().total_patterns() {
        return Err(SchedError::PatternCountMismatch {
            expected: kernel.patterns().total_patterns(),
            got: base_costs.pattern_count(),
        });
    }
    Ok(())
}

/// Exit guard shared by the adaptive drivers: a reassign resets the trace,
/// so "no events and an empty trace after a full run" can only mean the
/// executor records nothing at all — the measurement path is not enabled
/// and rescheduling could never have triggered.
///
/// # Errors
///
/// [`SchedError::NoMeasurements`] in that case.
pub fn ensure_measurements_happened<E>(
    kernel: &mut LikelihoodKernel<E>,
    events: &[RescheduleEvent],
) -> Result<(), SchedError>
where
    E: Executor + Reassignable,
{
    if events.is_empty() && kernel.executor_mut().live_trace().sync_events() == 0 {
        return Err(SchedError::NoMeasurements);
    }
    Ok(())
}

/// Checks, between rounds of any driver loop, whether the live trace
/// justifies an ownership migration — and performs it if so.
///
/// Returns `Ok(None)` when the rescheduler stays put. On migration the
/// executor is rebuilt from the new assignment, the master-side CLV cache is
/// invalidated, and the likelihood is evaluated on both sides of the move
/// for the returned event.
///
/// The caller must have validated `base_costs` against the kernel's dataset
/// (see [`optimize_model_parameters_adaptive`]); shape mismatches are
/// programming errors here.
///
/// # Errors
///
/// Propagates [`KernelError`] from the boundary likelihood evaluations.
///
/// # Panics
///
/// Panics if `base_costs` covers a different pattern count than the
/// executor's assignment (the entry points validate this).
pub fn reschedule_if_needed<E>(
    kernel: &mut LikelihoodKernel<E>,
    rescheduler: &mut Rescheduler,
    base_costs: &PatternCosts,
    round: usize,
) -> Result<Option<RescheduleEvent>, KernelError>
where
    E: Executor + Reassignable,
{
    reschedule_at_point(kernel, rescheduler, base_costs, round, false)
}

/// [`reschedule_if_needed`] for the *within-round* hook point: the decision
/// additionally records that it fired mid-round. With a mask-aware policy
/// this is where the convergence-mask shape of the branch just optimized is
/// inspected; a plain policy behaves exactly as between rounds.
///
/// # Errors
///
/// Propagates [`KernelError`] from the boundary likelihood evaluations.
///
/// # Panics
///
/// As for [`reschedule_if_needed`].
pub fn reschedule_mid_round<E>(
    kernel: &mut LikelihoodKernel<E>,
    rescheduler: &mut Rescheduler,
    base_costs: &PatternCosts,
    round: usize,
) -> Result<Option<RescheduleEvent>, KernelError>
where
    E: Executor + Reassignable,
{
    reschedule_at_point(kernel, rescheduler, base_costs, round, true)
}

fn reschedule_at_point<E>(
    kernel: &mut LikelihoodKernel<E>,
    rescheduler: &mut Rescheduler,
    base_costs: &PatternCosts,
    round: usize,
    within_round: bool,
) -> Result<Option<RescheduleEvent>, KernelError>
where
    E: Executor + Reassignable,
{
    let masked = rescheduler.policy().mask_aware;
    let ranges: Vec<std::ops::Range<usize>> = if masked {
        let patterns = kernel.patterns();
        (0..patterns.partition_count())
            .map(|p| patterns.global_range(p))
            .collect()
    } else {
        Vec::new()
    };
    let exec = kernel.executor_mut();
    let considered = if masked {
        rescheduler.consider_masked(exec.assignment(), exec.live_trace(), base_costs, &ranges)
    } else {
        rescheduler.consider(exec.assignment(), exec.live_trace(), base_costs)
    };
    let Some(decision) =
        considered.expect("trace, assignment and base costs describe the same run")
    else {
        return Ok(None);
    };

    let log_likelihood_before = kernel.try_log_likelihood()?;
    kernel.telemetry().reschedule(
        round,
        within_round,
        decision.measured_imbalance,
        decision.assignment.imbalance(),
    );
    // Rebuilding the workers restarts the trace epoch; keep the old epoch's
    // measurements with the event so full-run statistics survive migrations.
    let epoch_trace = kernel.executor_mut().take_trace();
    rebuild_workers(kernel, &decision.assignment)
        .expect("the new assignment covers the same dataset");
    let log_likelihood_after = kernel.try_log_likelihood()?;

    Ok(Some(RescheduleEvent {
        round,
        within_round,
        measured_imbalance: decision.measured_imbalance,
        predicted_imbalance: decision.assignment.imbalance(),
        speeds: decision.speeds,
        log_likelihood_before,
        log_likelihood_after,
        epoch_trace,
    }))
}

/// Rebuilds a failed executor's workers from its *current* assignment and
/// invalidates the master-side CLV cache — the recovery half of the
/// worker-death story (the detection half is `KernelError::failed_worker`).
///
/// # Errors
///
/// Propagates [`SchedError`] if the executor rejects the rebuild (which for
/// its own current assignment indicates a programming error upstream).
pub fn recover_worker_death<E>(kernel: &mut LikelihoodKernel<E>) -> Result<(), SchedError>
where
    E: Executor + Reassignable,
{
    let assignment = kernel.executor_mut().assignment().clone();
    rebuild_workers(kernel, &assignment)
}

/// The one rebuild sequence both migration and recovery go through: respawn
/// the executor's workers under `assignment` and invalidate the master-side
/// CLV cache (the rebuilt workers own fresh, empty CLV buffers).
fn rebuild_workers<E>(
    kernel: &mut LikelihoodKernel<E>,
    assignment: &phylo_sched::Assignment,
) -> Result<(), SchedError>
where
    E: Executor + Reassignable,
{
    let patterns = Arc::clone(kernel.patterns());
    let node_capacity = kernel.tree().node_capacity();
    let categories: Vec<usize> = kernel
        .models()
        .models()
        .iter()
        .map(|m| m.categories())
        .collect();
    kernel
        .executor_mut()
        .reassign(&patterns, assignment, node_capacity, &categories)?;
    kernel.invalidate_all();
    Ok(())
}

/// Runs `body` against the kernel, absorbing up to `max_recoveries` worker
/// deaths: on `KernelError::Exec(WorkerDied | Poisoned)` the workers are
/// rebuilt via [`recover_worker_death`] and `body` is invoked again. Because
/// every parameter update the optimizers commit lives in the master state,
/// re-entering the driver loop continues from the current parameters rather
/// than from the original starting point — though the loop structure itself
/// restarts, so in-flight work of the interrupted round is re-executed and
/// the *returned report describes the final attempt only*: its
/// `initial_log_likelihood`, round and sync-event counters start at the
/// re-entry, not at the original call (the pre-death commands are simply
/// not attributed). Shared by the adaptive drivers here and in
/// `phylo-search`.
///
/// # Errors
///
/// The first non-recoverable error from `body`, the first worker death past
/// the budget, or [`OptimizeError::Sched`] if a rebuild itself fails.
pub fn with_worker_recovery<E, T, F>(
    kernel: &mut LikelihoodKernel<E>,
    max_recoveries: usize,
    recoveries: &mut Vec<WorkerRecovery>,
    mut body: F,
) -> Result<T, OptimizeError>
where
    E: Executor + Reassignable,
    F: FnMut(&mut LikelihoodKernel<E>) -> Result<T, KernelError>,
{
    loop {
        match body(kernel) {
            Ok(value) => return Ok(value),
            Err(error) => {
                let Some(worker) = error.failed_worker() else {
                    return Err(error.into());
                };
                if recoveries.len() >= max_recoveries {
                    return Err(error.into());
                }
                recover_worker_death(kernel)?;
                let attempt = recoveries.len() + 1;
                kernel.telemetry().worker_recovery(worker, attempt);
                recoveries.push(WorkerRecovery { worker, attempt });
            }
        }
    }
}

/// [`optimize_model_parameters`] with worker-death recovery but without
/// mid-run rescheduling: up to `config.max_worker_recoveries` worker deaths
/// are absorbed by rebuilding the workers and resuming. Unlike the adaptive
/// driver this places no requirement on the executor's measurement path.
///
/// [`optimize_model_parameters`]: crate::driver::optimize_model_parameters
///
/// # Errors
///
/// [`OptimizeError::Kernel`] when the engine fails beyond the recovery
/// budget (or for a non-recoverable error), [`OptimizeError::Sched`] if a
/// recovery rebuild itself fails.
pub fn optimize_model_parameters_resilient<E>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
) -> Result<(OptimizationReport, Vec<WorkerRecovery>), OptimizeError>
where
    E: Executor + Reassignable,
{
    let mut recoveries = Vec::new();
    let report = with_worker_recovery(
        kernel,
        config.max_worker_recoveries,
        &mut recoveries,
        |kernel| optimize_model_parameters_with_hook(kernel, config, |_, _, _| Ok(())),
    )?;
    Ok((report, recoveries))
}

/// [`optimize_model_parameters`] with mid-run rescheduling: after every
/// outer round the live trace is shown to the rescheduler, and a triggered
/// decision migrates pattern→worker ownership before the next round.
///
/// [`optimize_model_parameters`]: crate::driver::optimize_model_parameters
///
/// The rescheduler is consulted after *every* round, including the last one:
/// a migration triggered at the very end still pays off because the executor
/// stays migrated for whatever the caller runs next (the warm-up pattern —
/// one short optimizer call to measure, then the real workload on the
/// corrected placement).
///
/// The driver also *recovers from worker deaths*: when the engine reports
/// `KernelError::Exec(WorkerDied | Poisoned)` and the recovery budget
/// (`config.max_worker_recoveries`) is not exhausted, the workers are
/// rebuilt from the current assignment, the CLV cache is invalidated, and
/// the driver loop re-enters — resuming with every parameter update
/// committed before the death.
///
/// # Errors
///
/// [`OptimizeError::Sched`] with [`SchedError::PatternCountMismatch`] if
/// `base_costs` covers a different number of patterns than the kernel's
/// dataset, or with [`SchedError::NoMeasurements`] if the run finished
/// without the executor recording a single trace region (the measurement
/// path is not enabled, so rescheduling could never have triggered);
/// [`OptimizeError::Kernel`] when the engine fails beyond the recovery
/// budget.
pub fn optimize_model_parameters_adaptive<E>(
    kernel: &mut LikelihoodKernel<E>,
    config: &OptimizerConfig,
    rescheduler: &mut Rescheduler,
    base_costs: &PatternCosts,
) -> Result<AdaptiveOptimizationReport, OptimizeError>
where
    E: Executor + Reassignable,
{
    validate_base_costs(kernel, base_costs)?;
    let mask_aware = rescheduler.policy().mask_aware;
    let mut events = Vec::new();
    let mut recoveries = Vec::new();
    let report = with_worker_recovery(
        kernel,
        config.max_worker_recoveries,
        &mut recoveries,
        |kernel| {
            optimize_model_parameters_with_hook(kernel, config, |kernel, round, point| {
                // The within-round point fires after every branch; only a
                // mask-aware policy has anything to gain from it.
                let event = match point {
                    HookPoint::WithinRound if !mask_aware => None,
                    HookPoint::WithinRound => {
                        reschedule_mid_round(kernel, rescheduler, base_costs, round)?
                    }
                    HookPoint::RoundEnd => {
                        reschedule_if_needed(kernel, rescheduler, base_costs, round)?
                    }
                };
                if let Some(event) = event {
                    events.push(event);
                }
                Ok(())
            })
        },
    )?;
    ensure_measurements_happened(kernel, &events)?;
    Ok(AdaptiveOptimizationReport {
        report,
        events,
        recoveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelScheme;
    use phylo_kernel::cost::TraceUnit;
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_parallel::{schedule, Cyclic, TracingExecutor};
    use phylo_sched::ReschedulePolicy;
    use phylo_seqgen::datasets::mixed_dna_protein;

    fn tracing_kernel(
        ds: &phylo_seqgen::GeneratedDataset,
        workers: usize,
    ) -> (LikelihoodKernel<TracingExecutor>, PatternCosts) {
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let costs = PatternCosts::analytic(&ds.patterns, &cats);
        let assignment = schedule(&ds.patterns, &cats, workers, &Cyclic).unwrap();
        let exec = TracingExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        (
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap(),
            costs,
        )
    }

    #[test]
    fn adaptive_run_matches_plain_run_when_policy_never_triggers() {
        let ds = mixed_dna_protein(6, 4, 2, 40, 71).generate();
        let (mut plain, _) = tracing_kernel(&ds, 3);
        let config = OptimizerConfig::new(ParallelScheme::New);
        let expected = crate::driver::optimize_model_parameters(&mut plain, &config).unwrap();

        let (mut kernel, costs) = tracing_kernel(&ds, 3);
        // An unreachable threshold: the rescheduler must never act.
        let mut rescheduler = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: f64::MAX,
            min_regions: 1,
            unit: TraceUnit::Flops,
            max_reschedules: 8,
            mask_aware: false,
            mask_decay: 0.85,
        });
        let adaptive =
            optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)
                .unwrap();
        assert!(adaptive.events.is_empty());
        assert!(
            (adaptive.report.final_log_likelihood - expected.final_log_likelihood).abs() < 1e-8
        );
    }

    #[test]
    fn triggered_migration_preserves_the_likelihood() {
        // 7 virtual workers over 80-pattern partitions: the cyclic shares
        // are uneven (80 = 7·11 + 3), so the measured FLOP imbalance is
        // real and a low threshold triggers an actual migration.
        let ds = mixed_dna_protein(6, 4, 2, 80, 73).generate();
        let (mut kernel, costs) = tracing_kernel(&ds, 7);
        let config = OptimizerConfig {
            scheme: ParallelScheme::Old,
            max_rounds: 2,
            likelihood_epsilon: 1e-9,
            ..OptimizerConfig::default()
        };
        let mut rescheduler = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 1.0001,
            min_regions: 8,
            unit: TraceUnit::Flops,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        });
        let adaptive =
            optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)
                .unwrap();
        assert_eq!(adaptive.events.len(), 1, "policy must trigger once");
        let event = &adaptive.events[0];
        assert!(
            event.log_likelihood_drift() < 1e-8,
            "migration changed the likelihood by {}",
            event.log_likelihood_drift()
        );
        assert!(event.measured_imbalance > 1.0001);
        assert_eq!(kernel.executor_mut().assignment().strategy(), "speed-lpt");
    }

    #[test]
    fn an_untimed_executor_is_rejected_instead_of_silently_not_adapting() {
        use phylo_parallel::ThreadedExecutor;

        let ds = mixed_dna_protein(6, 4, 2, 40, 83).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let costs = PatternCosts::analytic(&ds.patterns, &cats);
        let assignment = schedule(&ds.patterns, &cats, 2, &Cyclic).unwrap();
        // Default options: timed == false, so the executor records nothing.
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut kernel =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let mut rescheduler = Rescheduler::new(ReschedulePolicy::default());
        let config = OptimizerConfig {
            max_rounds: 1,
            ..OptimizerConfig::default()
        };
        assert_eq!(
            optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)
                .unwrap_err(),
            OptimizeError::Sched(SchedError::NoMeasurements)
        );
    }

    #[test]
    fn mismatched_base_costs_are_rejected() {
        let ds = mixed_dna_protein(6, 4, 2, 40, 79).generate();
        let (mut kernel, _) = tracing_kernel(&ds, 3);
        let mut rescheduler = Rescheduler::new(ReschedulePolicy::default());
        let bad = PatternCosts::uniform(3);
        assert!(matches!(
            optimize_model_parameters_adaptive(
                &mut kernel,
                &OptimizerConfig::default(),
                &mut rescheduler,
                &bad
            )
            .unwrap_err(),
            OptimizeError::Sched(SchedError::PatternCountMismatch { .. })
        ));
    }
}
