//! Per-partition model parameter bundles.
//!
//! A partitioned analysis estimates a separate set of model parameters for
//! every partition (Figure 2 of the paper): the Q matrix, the Γ shape
//! parameter α, and — depending on the branch-length mode — its own branch
//! lengths. [`PartitionModel`] bundles the per-partition parameters;
//! [`ModelSet`] is the whole-dataset collection aligned index-for-index with
//! the partitions of a `PartitionedPatterns`.

use phylo_data::{DataType, PartitionedPatterns};
use phylo_math::gamma_rates::{discrete_gamma_rates, DEFAULT_CATEGORIES, MAX_ALPHA, MIN_ALPHA};

use crate::substitution::{empirical_frequencies, SubstitutionModel};

/// How branch lengths are shared between partitions.
///
/// The paper argues for per-partition estimates (they enable the fast
/// gappy-alignment algorithm of reference \[32\]) and shows that this is exactly
/// the case where the old parallelization's load imbalance hurts most.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchLengthMode {
    /// One shared branch-length vector across all partitions.
    Joint,
    /// An independent branch-length vector per partition.
    PerPartition,
}

/// The model parameters of a single partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionModel {
    substitution: SubstitutionModel,
    alpha: f64,
    gamma_rates: Vec<f64>,
}

impl PartitionModel {
    /// Creates a partition model with the given substitution model, Γ shape
    /// `alpha` and number of discrete Γ categories.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[MIN_ALPHA, MAX_ALPHA]` or
    /// `categories == 0`.
    pub fn new(substitution: SubstitutionModel, alpha: f64, categories: usize) -> Self {
        assert!(
            (MIN_ALPHA..=MAX_ALPHA).contains(&alpha),
            "alpha {alpha} outside supported range"
        );
        let gamma_rates = discrete_gamma_rates(alpha, categories);
        Self {
            substitution,
            alpha,
            gamma_rates,
        }
    }

    /// Default model for a data type: 4 Γ categories, α = 1.
    pub fn default_for(data_type: DataType) -> Self {
        Self::new(
            SubstitutionModel::default_for(data_type),
            1.0,
            DEFAULT_CATEGORIES,
        )
    }

    /// The substitution model.
    pub fn substitution(&self) -> &SubstitutionModel {
        &self.substitution
    }

    /// Replaces the substitution model (e.g. after a Brent update of a rate).
    pub fn set_substitution(&mut self, substitution: SubstitutionModel) {
        self.substitution = substitution;
    }

    /// Current Γ shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sets α and recomputes the category rates.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside the supported range.
    pub fn set_alpha(&mut self, alpha: f64) {
        assert!(
            (MIN_ALPHA..=MAX_ALPHA).contains(&alpha),
            "alpha {alpha} outside supported range"
        );
        self.alpha = alpha;
        self.gamma_rates = discrete_gamma_rates(alpha, self.gamma_rates.len());
    }

    /// The discrete Γ category rates (mean 1).
    pub fn gamma_rates(&self) -> &[f64] {
        &self.gamma_rates
    }

    /// Number of Γ rate categories.
    pub fn categories(&self) -> usize {
        self.gamma_rates.len()
    }

    /// Number of character states (4 or 20).
    pub fn states(&self) -> usize {
        self.substitution.states()
    }

    /// Data type of the partition.
    pub fn data_type(&self) -> DataType {
        self.substitution.data_type()
    }
}

/// The per-partition models of a whole dataset plus the branch-length mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSet {
    models: Vec<PartitionModel>,
    branch_mode: BranchLengthMode,
}

impl ModelSet {
    /// Builds a model set with one default model per partition of `patterns`,
    /// using empirical state frequencies estimated from the data.
    pub fn default_for(patterns: &PartitionedPatterns, branch_mode: BranchLengthMode) -> Self {
        Self::with_categories(patterns, branch_mode, DEFAULT_CATEGORIES)
    }

    /// Like [`ModelSet::default_for`] but with an explicit number of Γ rate
    /// categories (1 disables rate heterogeneity; the ablation benches use
    /// this).
    pub fn with_categories(
        patterns: &PartitionedPatterns,
        branch_mode: BranchLengthMode,
        categories: usize,
    ) -> Self {
        let models = patterns
            .partitions
            .iter()
            .map(|p| {
                let base = SubstitutionModel::default_for(p.data_type);
                let freqs = empirical_frequencies(p);
                let substitution = base.with_frequencies(freqs);
                PartitionModel::new(substitution, 1.0, categories)
            })
            .collect();
        Self {
            models,
            branch_mode,
        }
    }

    /// Builds a model set from explicit per-partition models.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn from_models(models: Vec<PartitionModel>, branch_mode: BranchLengthMode) -> Self {
        assert!(
            !models.is_empty(),
            "a model set needs at least one partition model"
        );
        Self {
            models,
            branch_mode,
        }
    }

    /// The per-partition models.
    pub fn models(&self) -> &[PartitionModel] {
        &self.models
    }

    /// Mutable access to the per-partition models (used by the optimizers).
    pub fn models_mut(&mut self) -> &mut [PartitionModel] {
        &mut self.models
    }

    /// Model of partition `i`.
    pub fn model(&self, i: usize) -> &PartitionModel {
        &self.models[i]
    }

    /// Mutable model of partition `i`.
    pub fn model_mut(&mut self, i: usize) -> &mut PartitionModel {
        &mut self.models[i]
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The branch-length sharing mode.
    pub fn branch_mode(&self) -> BranchLengthMode {
        self.branch_mode
    }

    /// Changes the branch-length sharing mode.
    pub fn set_branch_mode(&mut self, mode: BranchLengthMode) {
        self.branch_mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, PartitionSet};

    fn toy_patterns(partition_len: usize) -> PartitionedPatterns {
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGT".into()),
            ("t2".into(), "ACGTACGAACGTACGA".into()),
            ("t3".into(), "ACCTACGAACCTACGA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 16, partition_len);
        PartitionedPatterns::compile(&aln, &ps).unwrap()
    }

    #[test]
    fn partition_model_gamma_rates_track_alpha() {
        let mut m = PartitionModel::default_for(DataType::Dna);
        assert_eq!(m.categories(), DEFAULT_CATEGORIES);
        let before = m.gamma_rates().to_vec();
        m.set_alpha(0.2);
        assert!((m.alpha() - 0.2).abs() < 1e-15);
        assert_ne!(before, m.gamma_rates());
        let mean: f64 = m.gamma_rates().iter().sum::<f64>() / m.categories() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_is_rejected() {
        let mut m = PartitionModel::default_for(DataType::Dna);
        m.set_alpha(0.0);
    }

    #[test]
    fn model_set_has_one_model_per_partition() {
        let pp = toy_patterns(4);
        let ms = ModelSet::default_for(&pp, BranchLengthMode::PerPartition);
        assert_eq!(ms.len(), pp.partition_count());
        assert_eq!(ms.branch_mode(), BranchLengthMode::PerPartition);
        for m in ms.models() {
            assert_eq!(m.states(), 4);
            assert_eq!(m.categories(), DEFAULT_CATEGORIES);
        }
    }

    #[test]
    fn model_set_uses_empirical_frequencies() {
        let pp = toy_patterns(16);
        let ms = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        let freqs = ms.model(0).substitution().frequencies();
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The toy alignment is A/C-rich compared to uniform.
        assert!(freqs[0] > 0.2);
    }

    #[test]
    fn with_categories_controls_rate_heterogeneity() {
        let pp = toy_patterns(8);
        let ms = ModelSet::with_categories(&pp, BranchLengthMode::Joint, 1);
        assert_eq!(ms.model(0).categories(), 1);
        assert_eq!(ms.model(0).gamma_rates(), &[1.0]);
    }

    #[test]
    fn protein_partition_gets_protein_model() {
        let aln = Alignment::new(vec![
            ("t1".into(), "ARNDCQEGHI".into()),
            ("t2".into(), "ARNDCQEGHL".into()),
            ("t3".into(), "ARNDCREGHL".into()),
        ])
        .unwrap();
        let ps = PartitionSet::unpartitioned(DataType::Protein, 10);
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let ms = ModelSet::default_for(&pp, BranchLengthMode::PerPartition);
        assert_eq!(ms.model(0).states(), 20);
    }

    #[test]
    fn set_branch_mode() {
        let pp = toy_patterns(8);
        let mut ms = ModelSet::default_for(&pp, BranchLengthMode::Joint);
        ms.set_branch_mode(BranchLengthMode::PerPartition);
        assert_eq!(ms.branch_mode(), BranchLengthMode::PerPartition);
    }
}
