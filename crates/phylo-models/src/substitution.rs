//! Concrete substitution models.
//!
//! DNA models are parameterized as special cases of the general
//! time-reversible (GTR) model; protein models use either the Poisson
//! (equal-rates) matrix or a deterministic synthetic "empirical-like" matrix
//! (see DESIGN.md: the paper's real protein datasets are replaced by synthetic
//! equivalents, and what matters for the load-balance study is only the 20×20
//! state space and its ≈25× higher per-column cost).

use phylo_data::DataType;
use phylo_math::matrix::SquareMatrix;

use crate::qmatrix::{build_rate_matrix, decompose, Eigensystem};

/// Number of GTR exchangeability parameters for DNA (upper triangle of 4×4).
pub const GTR_RATE_COUNT: usize = 6;

/// A reversible substitution model: exchangeabilities, stationary frequencies
/// and the cached eigendecomposition of the scaled rate matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstitutionModel {
    data_type: DataType,
    exchangeabilities: Vec<f64>,
    frequencies: Vec<f64>,
    eigen: Eigensystem,
}

impl SubstitutionModel {
    /// Builds a model from raw exchangeabilities and frequencies.
    ///
    /// # Panics
    ///
    /// Panics if the parameter dimensions do not match the data type or the
    /// frequencies are not a probability distribution (see
    /// [`build_rate_matrix`]).
    pub fn from_parameters(
        data_type: DataType,
        exchangeabilities: Vec<f64>,
        frequencies: Vec<f64>,
    ) -> Self {
        assert_eq!(
            frequencies.len(),
            data_type.states(),
            "frequency count mismatch"
        );
        let q = build_rate_matrix(&exchangeabilities, &frequencies);
        let eigen = decompose(&q, &frequencies);
        Self {
            data_type,
            exchangeabilities,
            frequencies,
            eigen,
        }
    }

    /// Jukes–Cantor 1969: equal rates, equal frequencies.
    pub fn jc69() -> Self {
        Self::from_parameters(DataType::Dna, vec![1.0; GTR_RATE_COUNT], vec![0.25; 4])
    }

    /// HKY85: transition/transversion ratio `kappa` with arbitrary base
    /// frequencies. Exchangeability order is AC, AG, AT, CG, CT, GT; the
    /// transitions are AG and CT.
    pub fn hky85(kappa: f64, frequencies: [f64; 4]) -> Self {
        assert!(kappa > 0.0, "kappa must be positive");
        let ex = vec![1.0, kappa, 1.0, 1.0, kappa, 1.0];
        Self::from_parameters(DataType::Dna, ex, frequencies.to_vec())
    }

    /// General time-reversible DNA model with six exchangeabilities
    /// (AC, AG, AT, CG, CT, GT) and four base frequencies.
    pub fn gtr(rates: [f64; GTR_RATE_COUNT], frequencies: [f64; 4]) -> Self {
        Self::from_parameters(DataType::Dna, rates.to_vec(), frequencies.to_vec())
    }

    /// Poisson protein model: all exchangeabilities equal, uniform amino-acid
    /// frequencies.
    pub fn poisson_protein() -> Self {
        let n = DataType::Protein.states();
        Self::from_parameters(
            DataType::Protein,
            vec![1.0; n * (n - 1) / 2],
            vec![1.0 / n as f64; n],
        )
    }

    /// A deterministic synthetic "empirical-like" protein model: heterogeneous
    /// exchangeabilities and non-uniform frequencies generated from a fixed
    /// linear-congruential sequence. This stands in for published empirical
    /// matrices (WAG/LG); the exact values are irrelevant to the load-balance
    /// study, only the 20-state dimensionality and the heterogeneity matter.
    pub fn synthetic_empirical_protein() -> Self {
        let n = DataType::Protein.states();
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            // xorshift64*: deterministic, well-distributed pseudo-random values.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545F4914F6CDD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64
        };
        // Exchangeabilities span roughly two orders of magnitude, like
        // empirical matrices do.
        let exch: Vec<f64> = (0..n * (n - 1) / 2)
            .map(|_| 0.05 + 4.0 * next() * next())
            .collect();
        let mut freqs: Vec<f64> = (0..n).map(|_| 0.2 + next()).collect();
        let sum: f64 = freqs.iter().sum();
        for f in &mut freqs {
            *f /= sum;
        }
        Self::from_parameters(DataType::Protein, exch, freqs)
    }

    /// Default model for a data type: JC69-like for DNA (all rates 1 but
    /// empirically estimated frequencies are usually plugged in later), the
    /// synthetic empirical matrix for protein data.
    pub fn default_for(data_type: DataType) -> Self {
        match data_type {
            DataType::Dna => Self::jc69(),
            DataType::Protein => Self::synthetic_empirical_protein(),
        }
    }

    /// The data type this model applies to.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of character states (4 or 20).
    pub fn states(&self) -> usize {
        self.data_type.states()
    }

    /// Stationary frequencies π.
    pub fn frequencies(&self) -> &[f64] {
        &self.frequencies
    }

    /// Exchangeability parameters (upper triangle, row-major).
    pub fn exchangeabilities(&self) -> &[f64] {
        &self.exchangeabilities
    }

    /// The cached eigendecomposition.
    pub fn eigen(&self) -> &Eigensystem {
        &self.eigen
    }

    /// Transition probability matrix for branch length `t` (in expected
    /// substitutions per site).
    pub fn transition_matrix(&self, t: f64) -> SquareMatrix {
        self.eigen.transition_matrix(t)
    }

    /// Returns a copy of the model with one exchangeability replaced and the
    /// eigensystem rebuilt. Used by the Brent optimization of the Q matrix;
    /// the last exchangeability (GT for DNA) is conventionally fixed to 1 as
    /// the reference rate, which callers enforce by never passing
    /// `index == GTR_RATE_COUNT - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `value` is not positive.
    pub fn with_exchangeability(&self, index: usize, value: f64) -> Self {
        assert!(
            index < self.exchangeabilities.len(),
            "exchangeability index out of range"
        );
        assert!(
            value > 0.0 && value.is_finite(),
            "exchangeability must be positive"
        );
        let mut ex = self.exchangeabilities.clone();
        ex[index] = value;
        Self::from_parameters(self.data_type, ex, self.frequencies.clone())
    }

    /// Returns a copy of the model with new stationary frequencies and the
    /// eigensystem rebuilt (used when plugging in empirical frequencies).
    pub fn with_frequencies(&self, frequencies: Vec<f64>) -> Self {
        Self::from_parameters(self.data_type, self.exchangeabilities.clone(), frequencies)
    }
}

/// Computes empirical state frequencies from pattern data, counting each
/// unambiguous character weighted by its pattern weight, with a pseudo-count
/// of 1 per state so no frequency is ever zero.
pub fn empirical_frequencies(partition: &phylo_data::CompressedPartition) -> Vec<f64> {
    let n_states = partition.data_type.states();
    let mut counts = vec![1.0f64; n_states];
    for p in 0..partition.pattern_count() {
        let w = partition.weights[p];
        for t in 0..partition.n_taxa {
            let state = partition.tip_state(p, t);
            if let Some(i) = partition.data_type.state_index(state) {
                counts[i] += w;
            }
        }
    }
    let total: f64 = counts.iter().sum();
    counts.into_iter().map(|c| c / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_math::approx_eq;

    #[test]
    fn jc69_transition_probabilities_match_analytic_formula() {
        // For JC69 with unit mean rate, P_same(t) = 1/4 + 3/4·exp(-4t/3),
        // P_diff(t) = 1/4 − 1/4·exp(-4t/3).
        let model = SubstitutionModel::jc69();
        for &t in &[0.05, 0.1, 0.5, 1.0, 2.0] {
            let p = model.transition_matrix(t);
            let same = 0.25 + 0.75 * (-4.0 * t / 3.0_f64).exp();
            let diff = 0.25 - 0.25 * (-4.0 * t / 3.0_f64).exp();
            for i in 0..4 {
                for j in 0..4 {
                    let expected = if i == j { same } else { diff };
                    assert!(
                        approx_eq(p[(i, j)], expected, 1e-9),
                        "t={t} P[{i}][{j}]={} expected {expected}",
                        p[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn hky85_reduces_to_jc_when_kappa_is_one() {
        let hky = SubstitutionModel::hky85(1.0, [0.25; 4]);
        let jc = SubstitutionModel::jc69();
        let p_hky = hky.transition_matrix(0.3);
        let p_jc = jc.transition_matrix(0.3);
        assert!(p_hky.max_abs_diff(&p_jc) < 1e-12);
    }

    #[test]
    fn hky85_transitions_exceed_transversions() {
        let model = SubstitutionModel::hky85(4.0, [0.25; 4]);
        let p = model.transition_matrix(0.1);
        // A→G (transition) more likely than A→C (transversion).
        assert!(p[(0, 2)] > p[(0, 1)]);
        // C→T (transition) more likely than C→G (transversion).
        assert!(p[(1, 3)] > p[(1, 2)]);
    }

    #[test]
    fn gtr_respects_supplied_frequencies() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let model = SubstitutionModel::gtr([1.0, 2.0, 1.5, 0.7, 3.1, 1.0], freqs);
        let p = model.transition_matrix(300.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[(i, j)] - freqs[j]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn protein_models_have_twenty_states() {
        let poisson = SubstitutionModel::poisson_protein();
        assert_eq!(poisson.states(), 20);
        let emp = SubstitutionModel::synthetic_empirical_protein();
        assert_eq!(emp.states(), 20);
        let p = emp.transition_matrix(0.15);
        for i in 0..20 {
            let sum: f64 = (0..20).map(|j| p[(i, j)]).sum();
            assert!(approx_eq(sum, 1.0, 1e-9));
        }
    }

    #[test]
    fn synthetic_empirical_model_is_deterministic_and_heterogeneous() {
        let a = SubstitutionModel::synthetic_empirical_protein();
        let b = SubstitutionModel::synthetic_empirical_protein();
        assert_eq!(a, b);
        let min = a
            .exchangeabilities()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = a.exchangeabilities().iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 5.0, "exchangeabilities should be heterogeneous");
        // Frequencies differ from uniform.
        assert!(a.frequencies().iter().any(|&f| (f - 0.05).abs() > 0.005));
    }

    #[test]
    fn with_exchangeability_rebuilds_eigen() {
        let base = SubstitutionModel::jc69();
        let bumped = base.with_exchangeability(1, 4.0);
        assert!((bumped.exchangeabilities()[1] - 4.0).abs() < 1e-15);
        let p_base = base.transition_matrix(0.2);
        let p_bumped = bumped.transition_matrix(0.2);
        assert!(
            p_base.max_abs_diff(&p_bumped) > 1e-4,
            "transition matrix must change"
        );
        // Rows still sum to one.
        for i in 0..4 {
            let sum: f64 = (0..4).map(|j| p_bumped[(i, j)]).sum();
            assert!(approx_eq(sum, 1.0, 1e-10));
        }
    }

    #[test]
    fn empirical_frequencies_reflect_composition() {
        use phylo_data::{Alignment, PartitionSet, PartitionedPatterns};
        let aln = Alignment::new(vec![
            ("t1".into(), "AAAAAAAC".into()),
            ("t2".into(), "AAAAAAAC".into()),
            ("t3".into(), "AAAAAAGC".into()),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &PartitionSet::unpartitioned(DataType::Dna, 8))
            .unwrap();
        let freqs = empirical_frequencies(&pp.partitions[0]);
        assert_eq!(freqs.len(), 4);
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // A must dominate, T must be rare (only pseudo-count).
        assert!(freqs[0] > 0.7);
        assert!(freqs[3] < 0.1);
    }

    #[test]
    fn default_for_matches_data_type() {
        assert_eq!(SubstitutionModel::default_for(DataType::Dna).states(), 4);
        assert_eq!(
            SubstitutionModel::default_for(DataType::Protein).states(),
            20
        );
    }

    #[test]
    #[should_panic]
    fn with_exchangeability_rejects_nonpositive() {
        SubstitutionModel::jc69().with_exchangeability(0, 0.0);
    }
}
