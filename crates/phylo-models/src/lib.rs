//! Statistical models of sequence evolution.
//!
//! A partitioned phylogenomic analysis estimates, for every partition, its own
//! instantaneous substitution matrix `Q` (4×4 for DNA, 20×20 for protein
//! data), its own Γ shape parameter α for among-site rate heterogeneity, and —
//! in the per-partition branch-length model — its own branch lengths. This
//! crate provides:
//!
//! * [`qmatrix`] — construction and eigendecomposition of reversible rate
//!   matrices and the transition probability matrices `P(t) = e^{Qt}`,
//! * [`substitution`] — the concrete models (JC69, HKY85, GTR, Poisson and a
//!   synthetic empirical protein model),
//! * [`partition_model`] — the per-partition parameter bundles
//!   ([`PartitionModel`]) and the whole-dataset collection ([`ModelSet`])
//!   that the kernel and the optimizers operate on.
//!
//! ```
//! use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
//! use phylo_models::{BranchLengthMode, ModelSet};
//!
//! let alignment = Alignment::new(vec![
//!     ("t1".into(), "ACGTACGT".into()),
//!     ("t2".into(), "ACGAACGA".into()),
//! ]).unwrap();
//! let partitions = PartitionSet::equal_length(DataType::Dna, 8, 4);
//! let patterns = PartitionedPatterns::compile(&alignment, &partitions).unwrap();
//!
//! // One model per partition, each with its own Γ shape and Q matrix.
//! let models = ModelSet::default_for(&patterns, BranchLengthMode::PerPartition);
//! assert_eq!(models.len(), patterns.partition_count());
//! assert_eq!(models.branch_mode(), BranchLengthMode::PerPartition);
//! assert!(models.model(0).categories() >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod partition_model;
pub mod qmatrix;
pub mod substitution;

pub use partition_model::{BranchLengthMode, ModelSet, PartitionModel};
pub use phylo_math::gamma_rates::DEFAULT_CATEGORIES;
pub use qmatrix::Eigensystem;
pub use substitution::SubstitutionModel;
