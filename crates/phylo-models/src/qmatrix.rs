//! Reversible rate matrices and their eigendecomposition.
//!
//! A general time-reversible (GTR-class) model is defined by a symmetric
//! matrix of exchangeabilities `s_ij` and stationary frequencies `π_i`. The
//! instantaneous rate matrix is `Q_ij = s_ij · π_j` (i ≠ j) with the diagonal
//! chosen so rows sum to zero, scaled such that the expected number of
//! substitutions per unit time is one. Because the model is reversible, `Q`
//! can be symmetrized with `D = diag(π)`:
//!
//! ```text
//! B = D^{1/2} · Q · D^{-1/2}    (symmetric)
//! B = V Λ Vᵀ                    (Jacobi eigendecomposition)
//! Q = U Λ U⁻¹,  U = D^{-1/2} V,  U⁻¹ = Vᵀ D^{1/2}
//! P(t) = U e^{Λt} U⁻¹
//! ```
//!
//! The matrix `W = D^{1/2} V` is also stored: the likelihood across the root
//! branch can be written `Σ_k (Wᵀl)_k (Wᵀr)_k e^{λ_k t}`, which is what the
//! branch-length derivative computation (the `makenewz` sum table) uses.

use phylo_math::eigen::symmetric_eigen;
use phylo_math::matrix::SquareMatrix;

/// Eigendecomposition of a scaled reversible rate matrix, with all the derived
/// matrices the kernel needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigensystem {
    /// Eigenvalues λ of the rate matrix (all ≤ 0, one equal to 0).
    pub values: Vec<f64>,
    /// `U = D^{-1/2} V`: right eigenvectors of `Q` as columns.
    pub u: SquareMatrix,
    /// `U⁻¹ = Vᵀ D^{1/2}`.
    pub u_inv: SquareMatrix,
    /// `W = D^{1/2} V`: the basis used by the root-likelihood sum table.
    pub w: SquareMatrix,
}

/// Builds the scaled rate matrix `Q` from exchangeabilities (upper triangle,
/// row-major: `s_01, s_02, …, s_0n, s_12, …`) and stationary frequencies.
///
/// The result has rows summing to zero and is scaled so that
/// `-Σ_i π_i Q_ii = 1` (one expected substitution per unit time).
///
/// # Panics
///
/// Panics if the number of exchangeabilities does not match
/// `n·(n−1)/2`, if any value is negative, or if the frequencies do not form a
/// probability distribution.
pub fn build_rate_matrix(exchangeabilities: &[f64], frequencies: &[f64]) -> SquareMatrix {
    let n = frequencies.len();
    assert!(n >= 2, "need at least two states");
    assert_eq!(
        exchangeabilities.len(),
        n * (n - 1) / 2,
        "expected {} exchangeabilities for {n} states",
        n * (n - 1) / 2
    );
    assert!(
        exchangeabilities.iter().all(|&s| s >= 0.0),
        "exchangeabilities must be non-negative"
    );
    let freq_sum: f64 = frequencies.iter().sum();
    assert!(
        (freq_sum - 1.0).abs() < 1e-6 && frequencies.iter().all(|&f| f > 0.0),
        "frequencies must be positive and sum to 1 (sum = {freq_sum})"
    );

    let mut q = SquareMatrix::zeros(n);
    let mut idx = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let s = exchangeabilities[idx];
            idx += 1;
            q[(i, j)] = s * frequencies[j];
            q[(j, i)] = s * frequencies[i];
        }
    }
    // Diagonal: rows sum to zero.
    for i in 0..n {
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
        q[(i, i)] = -row_sum;
    }
    // Scale to one expected substitution per unit time.
    let mu: f64 = -(0..n).map(|i| frequencies[i] * q[(i, i)]).sum::<f64>();
    assert!(mu > 0.0, "degenerate rate matrix (zero total rate)");
    for v in q.as_mut_slice() {
        *v /= mu;
    }
    q
}

/// Eigendecomposes a scaled reversible rate matrix built by
/// [`build_rate_matrix`] with the same frequencies.
pub fn decompose(q: &SquareMatrix, frequencies: &[f64]) -> Eigensystem {
    let n = frequencies.len();
    assert_eq!(q.dim(), n);
    let sqrt_pi: Vec<f64> = frequencies.iter().map(|&f| f.sqrt()).collect();

    // B = D^{1/2} Q D^{-1/2}
    let mut b = SquareMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            b[(i, j)] = sqrt_pi[i] * q[(i, j)] / sqrt_pi[j];
        }
    }
    // Enforce exact symmetry (numerical noise would trip the eigensolver).
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (b[(i, j)] + b[(j, i)]);
            b[(i, j)] = avg;
            b[(j, i)] = avg;
        }
    }
    let eig = symmetric_eigen(&b);

    let mut u = SquareMatrix::zeros(n);
    let mut u_inv = SquareMatrix::zeros(n);
    let mut w = SquareMatrix::zeros(n);
    for i in 0..n {
        for k in 0..n {
            u[(i, k)] = eig.vectors[(i, k)] / sqrt_pi[i];
            w[(i, k)] = eig.vectors[(i, k)] * sqrt_pi[i];
            // U⁻¹[k][i] = V[i][k] * sqrt_pi[i]
            u_inv[(k, i)] = eig.vectors[(i, k)] * sqrt_pi[i];
        }
    }
    Eigensystem {
        values: eig.values,
        u,
        u_inv,
        w,
    }
}

impl Eigensystem {
    /// Number of states.
    pub fn states(&self) -> usize {
        self.values.len()
    }

    /// Transition probability matrix `P(t) = U e^{Λt} U⁻¹`.
    ///
    /// Tiny negative entries arising from round-off are clamped to zero.
    pub fn transition_matrix(&self, t: f64) -> SquareMatrix {
        let n = self.states();
        let exp_lambda: Vec<f64> = self.values.iter().map(|&l| (l * t).exp()).collect();
        let mut p = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (k, &el) in exp_lambda.iter().enumerate() {
                    acc += self.u[(i, k)] * el * self.u_inv[(k, j)];
                }
                p[(i, j)] = if acc < 0.0 && acc > -1e-12 { 0.0 } else { acc };
            }
        }
        p
    }

    /// Writes `P(t)` into a caller-provided row-major buffer of length
    /// `states²` (used by the kernel to avoid allocating per branch/category).
    pub fn transition_matrix_into(&self, t: f64, out: &mut [f64]) {
        let n = self.states();
        assert_eq!(out.len(), n * n);
        let exp_lambda: Vec<f64> = self.values.iter().map(|&l| (l * t).exp()).collect();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (k, &el) in exp_lambda.iter().enumerate() {
                    acc += self.u[(i, k)] * el * self.u_inv[(k, j)];
                }
                out[i * n + j] = if acc < 0.0 && acc > -1e-12 { 0.0 } else { acc };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_math::approx_eq;

    fn gtr_example() -> (Vec<f64>, Vec<f64>) {
        (
            vec![1.2, 2.5, 0.8, 1.1, 3.0, 1.0],
            vec![0.3, 0.2, 0.25, 0.25],
        )
    }

    #[test]
    fn rate_matrix_rows_sum_to_zero() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        for i in 0..4 {
            let sum: f64 = (0..4).map(|j| q[(i, j)]).sum();
            assert!(approx_eq(sum, 0.0, 1e-12), "row {i} sums to {sum}");
        }
    }

    #[test]
    fn rate_matrix_is_scaled_to_unit_rate() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let mu: f64 = -(0..4).map(|i| fr[i] * q[(i, i)]).sum::<f64>();
        assert!(approx_eq(mu, 1.0, 1e-12));
    }

    #[test]
    fn stationarity_pi_q_is_zero() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        for j in 0..4 {
            let v: f64 = (0..4).map(|i| fr[i] * q[(i, j)]).sum();
            assert!(approx_eq(v, 0.0, 1e-12), "column {j}: {v}");
        }
    }

    #[test]
    fn transition_matrix_at_zero_is_identity() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let p0 = eig.transition_matrix(0.0);
        let id = SquareMatrix::identity(4);
        assert!(p0.max_abs_diff(&id) < 1e-10);
    }

    #[test]
    fn transition_matrix_rows_are_distributions() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        for &t in &[0.01, 0.1, 0.5, 1.0, 5.0] {
            let p = eig.transition_matrix(t);
            for i in 0..4 {
                let sum: f64 = (0..4).map(|j| p[(i, j)]).sum();
                assert!(approx_eq(sum, 1.0, 1e-10), "t={t} row {i} sums to {sum}");
                for j in 0..4 {
                    assert!(p[(i, j)] >= 0.0, "negative probability at t={t}");
                }
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(t + s) = P(t) P(s)
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let p_a = eig.transition_matrix(0.3);
        let p_b = eig.transition_matrix(0.7);
        let p_ab = eig.transition_matrix(1.0);
        assert!(p_a.matmul(&p_b).max_abs_diff(&p_ab) < 1e-10);
    }

    #[test]
    fn detailed_balance() {
        // π_i P_ij(t) = π_j P_ji(t) for reversible models.
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let p = eig.transition_matrix(0.42);
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx_eq(fr[i] * p[(i, j)], fr[j] * p[(j, i)], 1e-10));
            }
        }
    }

    #[test]
    fn long_time_limit_is_stationary_distribution() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let p = eig.transition_matrix(500.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (p[(i, j)] - fr[j]).abs() < 1e-8,
                    "P[{i}][{j}] = {}",
                    p[(i, j)]
                );
            }
        }
    }

    #[test]
    fn eigenvalues_nonpositive_with_one_zero() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let zero_count = eig.values.iter().filter(|&&l| l.abs() < 1e-9).count();
        assert_eq!(zero_count, 1);
        assert!(eig.values.iter().all(|&l| l < 1e-9));
    }

    #[test]
    fn transition_matrix_into_matches_allocating_version() {
        let (ex, fr) = gtr_example();
        let q = build_rate_matrix(&ex, &fr);
        let eig = decompose(&q, &fr);
        let p = eig.transition_matrix(0.37);
        let mut buf = vec![0.0; 16];
        eig.transition_matrix_into(0.37, &mut buf);
        for (a, b) in p.as_slice().iter().zip(buf.iter()) {
            assert!(approx_eq(*a, *b, 1e-15));
        }
    }

    #[test]
    fn twenty_state_model_works() {
        let n = 20;
        let exch = vec![1.0; n * (n - 1) / 2];
        let freqs = vec![1.0 / n as f64; n];
        let q = build_rate_matrix(&exch, &freqs);
        let eig = decompose(&q, &freqs);
        let p = eig.transition_matrix(0.2);
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| p[(i, j)]).sum();
            assert!(approx_eq(sum, 1.0, 1e-9));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_exchangeability_count() {
        build_rate_matrix(&[1.0, 2.0], &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_frequencies() {
        build_rate_matrix(&[1.0; 6], &[0.5, 0.5, 0.5, 0.5]);
    }
}
