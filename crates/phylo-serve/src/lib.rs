//! Multi-tenant serving: one fixed worker pool, many independent sessions.
//!
//! The paper's load-balance machinery — and everything this workspace built
//! on it — schedules *one* dataset's patterns over *one* set of workers.
//! Production services face the transposed problem: a stream of independent
//! analyses (different alignments, models, trees) arriving at a machine
//! whose worker threads should be created once and shared. This crate
//! generalizes the master/worker protocol from `patterns × workers` to
//! `(session, pattern) × workers`:
//!
//! * [`SessionManager`] owns the fixed pool (worker threads + a dispatcher
//!   thread) and admits sessions described by a [`SessionSpec`] — the same
//!   configuration surface as the single-run builder (models, branch mode,
//!   schedule strategy, optimizer config) plus serving knobs (fair-share
//!   weight, label, an optional injected fault for chaos drills).
//! * Each session runs the ordinary resilient optimizer on its own driver
//!   thread over a [`PooledExecutor`] — a standard
//!   [`Executor`](phylo_kernel::Executor) +
//!   [`Reassignable`](phylo_sched::Reassignable) whose parallel regions
//!   execute on the shared pool. Numerics are untouched: per-entry results
//!   reduce in worker-index order, so every session's log likelihood is
//!   bit-identical to a dedicated run with the same strategy and width.
//! * The dispatcher fuses pending ops of *different* sessions into one
//!   batch per barrier, picking who goes first with a weighted fair queue
//!   ([`TenantStrategy`], [`FairQueue`]); admission overload is the typed
//!   [`AdmissionError`], not a panic.
//! * Faults stay tenant-local: a worker panic on session A's op quarantines
//!   A on that worker (thread survives), A's driver recovers through the
//!   standard reassign path, and sessions B..N never see it.
//!
//! ```
//! use phylo_serve::{SessionManager, SessionSpec};
//! use phylo_seqgen::datasets::paper_simulated;
//! use std::sync::Arc;
//!
//! let mut pool = SessionManager::new(2);
//! let mut handles = Vec::new();
//! for seed in [1, 2, 3] {
//!     let ds = paper_simulated(6, 120, 24, seed).generate();
//!     let spec = SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone())
//!         .label(format!("tenant-{seed}"));
//!     handles.push(pool.submit(spec).unwrap());
//! }
//! for handle in handles {
//!     let outcome = handle.join().unwrap();
//!     assert!(outcome.final_log_likelihood >= outcome.initial_log_likelihood);
//!     assert!(outcome.recoveries.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]

mod dispatch;
pub mod error;
mod pool;
pub mod session;
pub mod spec;
pub mod tenant;

pub use dispatch::PoolStats;
pub use error::{AdmissionError, ServeError};
pub use session::{PooledExecutor, SessionHandle, SessionManager, SessionOutcome};
pub use spec::{SessionSpec, WorkerFault};
pub use tenant::{FairQueue, TenantStrategy};
