//! Sessions over the shared pool: the per-session executor, the manager
//! that admits sessions, and the handle that returns their outcomes.
//!
//! A [`SessionManager`] owns ONE fixed pool (worker threads + dispatcher).
//! [`SessionManager::submit`] builds a session exactly like the single-run
//! builder would — resolve models, schedule patterns over the pool's fixed
//! width, build per-worker slices — then registers it with the dispatcher
//! (typed admission) and spawns a *driver thread* that runs the ordinary
//! resilient optimizer over a [`PooledExecutor`]. The executor speaks the
//! standard [`Executor`] + [`Reassignable`] contract, so the driver, its
//! worker-death recovery and its convergence behaviour are literally the
//! same code that runs single-session analyses — only the transport
//! changed: ops travel to the shared dispatcher, which fuses compatible
//! ops of many sessions under one barrier.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::WorkTrace;
use phylo_kernel::{ExecContext, ExecError, Executor, KernelOp, LikelihoodKernel, OpOutput};
use phylo_models::ModelSet;
use phylo_optimize::{optimize_model_parameters_resilient, WorkerRecovery};
use phylo_parallel::build_workers;
use phylo_sched::{Assignment, PatternCosts, Reassignable, SchedError};
use phylo_telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};

use crate::dispatch::{spawn_dispatcher, DispatchMsg, OpRequest, PoolStats};
use crate::error::{AdmissionError, ServeError};
use crate::pool::{spawn_pool, PoolWorker, StateSnapshot};
use crate::spec::SessionSpec;
use crate::tenant::TenantStrategy;

/// The per-session execution backend: a synchronous [`Executor`] whose
/// parallel regions run on the shared pool. One op at a time: `execute`
/// snapshots the master state, ships the op to the dispatcher and blocks on
/// the reply lane. Implements [`Reassignable`] so the standard worker-death
/// recovery (rebuild slices, reinstall, retry) works unchanged — a
/// reinstall touches only this session's shards on the pool.
pub struct PooledExecutor {
    session: u64,
    workers: usize,
    commands: Sender<DispatchMsg>,
    reply_tx: Sender<Result<OpOutput, ExecError>>,
    reply_rx: Receiver<Result<OpOutput, ExecError>>,
    assignment: Assignment,
    trace: WorkTrace,
    sync_events: u64,
    poisoned: Option<usize>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for PooledExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledExecutor")
            .field("session", &self.session)
            .field("workers", &self.workers)
            .field("sync_events", &self.sync_events)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Executor for PooledExecutor {
    fn worker_count(&self) -> usize {
        self.workers
    }

    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        if let Some(worker) = self.poisoned {
            return Err(ExecError::Poisoned { worker });
        }
        self.sync_events += 1;
        let token = self.telemetry.enabled().then(|| {
            self.telemetry
                .region_start(op.kind().label(), &op.active_partitions())
        });
        // lint:allow(L008): op latency for the session outcome report;
        // observability only, never feeds the reduction order.
        let started = Instant::now();
        let request = OpRequest {
            session: self.session,
            op: op.clone(),
            snapshot: Arc::new(StateSnapshot {
                tree: ctx.tree.clone(),
                models: ctx.models.clone(),
                branch_lengths: ctx.branch_lengths.clone(),
            }),
            reply: self.reply_tx.clone(),
        };
        if self.commands.send(DispatchMsg::Op(request)).is_err() {
            // Pool gone mid-run: fail like a dead worker so the standard
            // recovery path (bounded by the budget) produces a typed error.
            self.poisoned = Some(0);
            return Err(ExecError::WorkerDied { worker: 0 });
        }
        match self.reply_rx.recv() {
            Ok(Ok(output)) => {
                if let Some(token) = token {
                    // The pool hides per-worker splits from the session; the
                    // session-scoped region event times the fused round trip
                    // (per-worker attribution lives in pool-level records).
                    let share = started.elapsed().as_secs_f64() / self.workers as f64;
                    let per_worker = vec![share; self.workers];
                    let queue_wait = vec![0.0; self.workers];
                    self.telemetry.region_end(token, &per_worker, &queue_wait);
                }
                Ok(output)
            }
            Ok(Err(error)) => {
                if let ExecError::WorkerDied { worker } = error {
                    self.poisoned = Some(worker);
                    self.telemetry
                        .worker_death(worker, token.as_ref().and_then(|t| t.region()));
                }
                Err(error)
            }
            Err(_) => {
                self.poisoned = Some(0);
                Err(ExecError::WorkerDied { worker: 0 })
            }
        }
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }
}

impl Reassignable for PooledExecutor {
    fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    fn live_trace(&self) -> &WorkTrace {
        &self.trace
    }

    fn take_trace(&mut self) -> WorkTrace {
        std::mem::replace(&mut self.trace, WorkTrace::new(self.workers))
    }

    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        let slices = build_workers(patterns, node_capacity, categories, assignment)?;
        let (ack_tx, ack_rx) = channel();
        let sent = self.commands.send(DispatchMsg::Reassign {
            session: self.session,
            slices,
            reply: ack_tx,
        });
        if sent.is_err() || ack_rx.recv().is_err() {
            // Pool gone: stay poisoned. The recovery budget turns the
            // repeated Poisoned failures into a typed error upstream.
            return Ok(());
        }
        self.assignment = assignment.clone();
        self.poisoned = None;
        Ok(())
    }
}

/// What one finished session reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// Pool-assigned session id (tags this session's telemetry events).
    pub session: u64,
    /// The label from the [`SessionSpec`].
    pub label: String,
    /// Log likelihood before optimization (of the final driver attempt).
    pub initial_log_likelihood: f64,
    /// Log likelihood after the final round.
    pub final_log_likelihood: f64,
    /// Optimizer rounds of the final attempt.
    pub rounds: usize,
    /// Ops this session dispatched to the pool.
    pub sync_events: u64,
    /// Worker deaths absorbed (empty for an undisturbed run).
    pub recoveries: Vec<WorkerRecovery>,
    /// Wall-clock latency of the session, admission to completion.
    pub latency: Duration,
}

/// A live session: join it to collect the [`SessionOutcome`].
#[derive(Debug)]
pub struct SessionHandle {
    session: u64,
    label: String,
    outcome: Receiver<Result<SessionOutcome, ServeError>>,
    join: Option<JoinHandle<()>>,
}

impl SessionHandle {
    /// Pool-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The label from the [`SessionSpec`].
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Waits for the session to finish and returns its outcome. A driver
    /// panic (a bug, not a worker fault) is [`ServeError::SessionPanicked`].
    pub fn join(mut self) -> Result<SessionOutcome, ServeError> {
        let outcome = self.outcome.recv();
        if let Some(join) = self.join.take() {
            if join.join().is_err() {
                return Err(ServeError::SessionPanicked);
            }
        }
        match outcome {
            Ok(result) => result,
            Err(_) => Err(ServeError::PoolDown),
        }
    }
}

/// One fixed pool serving N independent sessions.
///
/// Created with [`SessionManager::new`] (pool width) or
/// [`SessionManager::with_strategy`] (admission/batching policy and
/// telemetry). Sessions are admitted with [`SessionManager::submit`] and
/// collected with [`SessionHandle::join`]; the pool threads are reused
/// across sessions and shut down when the manager drops.
#[derive(Debug)]
pub struct SessionManager {
    commands: Sender<DispatchMsg>,
    workers: usize,
    next_session: u64,
    telemetry: Telemetry,
    dispatcher: Option<JoinHandle<()>>,
    pool: Vec<PoolWorker>,
}

impl SessionManager {
    /// A pool of `workers` threads under the default [`TenantStrategy`],
    /// without telemetry.
    pub fn new(workers: usize) -> Self {
        Self::with_strategy(workers, TenantStrategy::default(), None)
    }

    /// A pool of `workers` threads under an explicit admission/batching
    /// policy, optionally recording pool telemetry (each session's events
    /// are tagged with its id; see [`TelemetrySnapshot::session_events`]).
    pub fn with_strategy(
        workers: usize,
        strategy: TenantStrategy,
        telemetry: Option<TelemetryConfig>,
    ) -> Self {
        let (reply_tx, reply_rx) = channel();
        let pool = spawn_pool(workers, &reply_tx);
        let (cmd_tx, cmd_rx) = channel();
        let dispatcher = spawn_dispatcher(cmd_rx, &pool, reply_rx, strategy);
        let telemetry = match telemetry {
            Some(config) => Telemetry::new(config),
            None => Telemetry::disabled(),
        };
        Self {
            commands: cmd_tx,
            workers,
            next_session: 0,
            telemetry,
            dispatcher: Some(dispatcher),
            pool,
        }
    }

    /// Fixed pool width.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The pool-level telemetry handle (disabled unless configured).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A point-in-time snapshot of the pool's telemetry; `None` unless
    /// telemetry was configured. Slice per tenant with
    /// [`TelemetrySnapshot::session_events`].
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.enabled().then(|| self.telemetry.snapshot())
    }

    /// Pool-level aggregates (sessions admitted, ops dispatched, fusion
    /// width, worker panics), served by the dispatcher itself.
    ///
    /// # Errors
    ///
    /// [`ServeError::PoolDown`] when the dispatcher is gone.
    pub fn stats(&self) -> Result<PoolStats, ServeError> {
        let (reply_tx, reply_rx) = channel();
        self.commands
            .send(DispatchMsg::Stats { reply: reply_tx })
            .map_err(|_| ServeError::PoolDown)?;
        reply_rx.recv().map_err(|_| ServeError::PoolDown)
    }

    /// Admits a session and starts running it on the shared pool.
    ///
    /// The build path mirrors the single-run builder: models are resolved
    /// (or defaulted), patterns are scheduled over the pool's fixed width
    /// with the spec's strategy, per-worker slices are built and installed.
    /// Admission is *typed*: an overloaded pool or a zero weight comes back
    /// as [`ServeError::Admission`], never a panic.
    ///
    /// # Errors
    ///
    /// [`ServeError::Admission`] on overload or a zero weight,
    /// [`ServeError::Kernel`] / [`ServeError::Sched`] for a session whose
    /// dataset, models, tree or schedule do not line up,
    /// [`ServeError::PoolDown`] when the pool has shut down.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<SessionHandle, ServeError> {
        let SessionSpec {
            patterns,
            tree,
            models,
            branch_mode,
            strategy,
            optimizer,
            weight,
            label,
            fault,
        } = spec;
        if weight == 0 {
            return Err(ServeError::Admission(AdmissionError::ZeroWeight));
        }
        let session = self.next_session;
        self.next_session += 1;

        // Resolve models and the schedule exactly like the single-run path.
        let models = models.unwrap_or_else(|| ModelSet::default_for(&patterns, branch_mode));
        if models.len() != patterns.partition_count() {
            return Err(ServeError::Kernel(
                phylo_kernel::KernelError::ModelCountMismatch {
                    models: models.len(),
                    partitions: patterns.partition_count(),
                },
            ));
        }
        let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        // The engine runs with shared per-branch tables (its default), so
        // the cost model is the tabled one — same as the single-run builder.
        let costs = PatternCosts::analytic_tabled(&patterns, &categories);
        let assignment = strategy.assign(&costs, self.workers)?;
        let slices = build_workers(&patterns, tree.node_capacity(), &categories, &assignment)?;

        // Typed admission round trip; on success the dispatcher has already
        // installed this session's shards on every pool worker.
        let (verdict_tx, verdict_rx) = channel();
        self.commands
            .send(DispatchMsg::Register {
                session,
                weight,
                slices,
                reply: verdict_tx,
            })
            .map_err(|_| ServeError::PoolDown)?;
        match verdict_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(admission)) => return Err(ServeError::Admission(admission)),
            Err(_) => return Err(ServeError::PoolDown),
        }
        // Arm an injected fault *before* the driver can send its first op:
        // the command channel is FIFO, so the faulting op is deterministic.
        if let Some(fault) = fault {
            let _ = self.commands.send(DispatchMsg::InjectPanic {
                session,
                worker: fault.worker,
                after_ops: fault.after_ops,
            });
        }

        let (reply_tx, reply_rx) = channel();
        let executor = PooledExecutor {
            session,
            workers: self.workers,
            commands: self.commands.clone(),
            reply_tx,
            reply_rx,
            assignment,
            trace: WorkTrace::new(self.workers),
            sync_events: 0,
            poisoned: None,
            telemetry: Telemetry::disabled(),
        };
        let mut kernel = match LikelihoodKernel::try_new(patterns, tree, models, executor) {
            Ok(kernel) => kernel,
            Err(error) => {
                // Free the admission slot the failed build reserved.
                let _ = self.commands.send(DispatchMsg::Remove { session });
                return Err(ServeError::Kernel(error));
            }
        };
        kernel.set_telemetry(&self.telemetry.for_session(session));

        let (outcome_tx, outcome_rx) = channel();
        let commands = self.commands.clone();
        let driver_label = label.clone();
        let join = std::thread::Builder::new()
            .name(format!("plf-session-{session}"))
            .spawn(move || {
                let started = Instant::now();
                let result = optimize_model_parameters_resilient(&mut kernel, &optimizer);
                // Retire the session (frees its admission slot and its
                // shards on every pool worker) before reporting.
                let _ = commands.send(DispatchMsg::Remove { session });
                let outcome = result
                    .map(|(report, recoveries)| SessionOutcome {
                        session,
                        label: driver_label,
                        initial_log_likelihood: report.initial_log_likelihood,
                        final_log_likelihood: report.final_log_likelihood,
                        rounds: report.rounds,
                        sync_events: kernel.sync_events(),
                        recoveries,
                        latency: started.elapsed(),
                    })
                    .map_err(ServeError::from);
                let _ = outcome_tx.send(outcome);
            })
            .expect("failed to spawn session driver thread");

        Ok(SessionHandle {
            session,
            label,
            outcome: outcome_rx,
            join: Some(join),
        })
    }

    fn shutdown_inner(&mut self) {
        let _ = self.commands.send(DispatchMsg::Shutdown);
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for worker in &mut self.pool {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }

    /// Stops the dispatcher and joins every pool thread. Join all live
    /// [`SessionHandle`]s first: a session still running when the pool goes
    /// down fails over its recovery budget into a typed error.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
