//! Typed errors of the serving layer.

use phylo_kernel::KernelError;
use phylo_optimize::OptimizeError;
use phylo_sched::SchedError;

/// Why the pool refused to admit a session. Overload is a *value*, not a
/// panic: callers decide whether to retry, queue elsewhere or shed load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The pool already serves its configured maximum of live sessions.
    PoolFull {
        /// Sessions currently admitted (registered and not yet removed).
        active: usize,
        /// The configured admission bound
        /// ([`crate::TenantStrategy::max_sessions`]).
        capacity: usize,
    },
    /// A fair-share weight of zero would starve the session forever.
    ZeroWeight,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PoolFull { active, capacity } => write!(
                f,
                "session pool is full ({active} active sessions, capacity {capacity})"
            ),
            Self::ZeroWeight => write!(f, "a session weight of zero would never be scheduled"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a serving operation could not be completed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The pool declined to admit the session (overload or a bad weight).
    Admission(AdmissionError),
    /// The likelihood engine failed while building or running the session
    /// (mismatched models/taxa at build time, or an execution failure beyond
    /// the worker-recovery budget at run time).
    Kernel(KernelError),
    /// The scheduling layer rejected the session's workload description.
    Sched(SchedError),
    /// The dispatcher or its pool threads are gone (the manager was shut
    /// down while the session was still running).
    PoolDown,
    /// The session's driver thread itself panicked — a bug in the driver,
    /// distinct from a *worker* panic, which is recovered.
    SessionPanicked,
}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Admission(e)
    }
}

impl From<KernelError> for ServeError {
    fn from(e: KernelError) -> Self {
        ServeError::Kernel(e)
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

impl From<OptimizeError> for ServeError {
    fn from(e: OptimizeError) -> Self {
        match e {
            OptimizeError::Kernel(e) => ServeError::Kernel(e),
            OptimizeError::Sched(e) => ServeError::Sched(e),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Admission(e) => write!(f, "{e}"),
            Self::Kernel(e) => write!(f, "{e}"),
            Self::Sched(e) => write!(f, "{e}"),
            Self::PoolDown => write!(f, "the session pool has shut down"),
            Self::SessionPanicked => write!(f, "the session driver thread panicked"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Admission(e) => Some(e),
            Self::Kernel(e) => Some(e),
            Self::Sched(e) => Some(e),
            Self::PoolDown | Self::SessionPanicked => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_errors_render_their_bounds() {
        let e = AdmissionError::PoolFull {
            active: 3,
            capacity: 3,
        };
        assert!(e.to_string().contains("3 active"));
        assert!(AdmissionError::ZeroWeight.to_string().contains("zero"));
    }

    #[test]
    fn optimize_errors_fold_into_serve_errors() {
        let e = ServeError::from(OptimizeError::Sched(SchedError::NoWorkers));
        assert_eq!(e, ServeError::Sched(SchedError::NoWorkers));
        assert!(ServeError::PoolDown.to_string().contains("shut down"));
    }
}
