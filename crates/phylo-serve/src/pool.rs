//! The fixed pool of worker threads shared by every session.
//!
//! Each pool worker owns one [`WorkerSlices`] *per live session* (its shard
//! of that session's patterns, keyed by session id) and executes fused
//! [`Batch`]es broadcast by the dispatcher: it runs every entry's op
//! against the owning session's slices and sends ONE [`WorkerReply`] —
//! this worker's results for the whole batch, in entry order — back over
//! the shared reply channel (one message per worker per barrier, so the
//! fused round costs a constant number of channel wakeups regardless of
//! how many tenants it serves). The protocol is the multi-tenant generalization of
//! the single-session worker loop in `phylo-parallel::threaded`, with one
//! crucial difference in the failure path: a panic while executing session
//! A's entry *quarantines A on this worker* (its slices are dropped, the
//! panic is reported) and the thread moves on to the next entry — sessions
//! B..N in the same batch, and every later batch, are served as if nothing
//! happened. Worker threads survive tenant faults; only the faulting tenant
//! pays.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use phylo_kernel::executor::execute_on_worker;
use phylo_kernel::{BranchLengths, ExecContext, KernelOp, OpError, OpOutput, WorkerSlices};
use phylo_models::ModelSet;
use phylo_tree::Tree;

/// A snapshot of one session's master state, shipped with its ops (the
/// master's tree/models/branch lengths live on that session's driver
/// thread; the pool threads only ever see immutable snapshots).
pub(crate) struct StateSnapshot {
    pub tree: Tree,
    pub models: ModelSet,
    pub branch_lengths: BranchLengths,
}

/// One op of one session inside a fused batch.
pub(crate) struct BatchEntry {
    pub session: u64,
    pub op: KernelOp,
    pub snapshot: Arc<StateSnapshot>,
}

/// One fused dispatch round: compatible ops from up to `max_batch` sessions,
/// executed under a single barrier by every pool worker.
pub(crate) struct Batch {
    pub entries: Vec<BatchEntry>,
    /// Test instrumentation: `(session, worker)` that must panic while
    /// executing this batch's entry of that session (see
    /// [`crate::SessionSpec::inject_worker_fault`]).
    pub panic_target: Option<(u64, usize)>,
}

/// What a worker did with one batch entry.
pub(crate) enum EntryResult {
    /// The op ran; here is this worker's partial output.
    Output(OpOutput),
    /// The op was rejected deterministically (typed, does not quarantine).
    Rejected(OpError),
    /// The worker panicked on this entry; the session is quarantined on
    /// this worker until the session reinstalls slices.
    Panicked(String),
    /// The worker holds no slices for the entry's session (it was
    /// quarantined earlier or never installed).
    MissingSession,
}

/// One worker's answer to one fused batch: its result for every entry, in
/// entry order.
pub(crate) struct WorkerReply {
    pub worker: usize,
    pub results: Vec<EntryResult>,
}

/// Commands a pool worker consumes, in order.
pub(crate) enum WorkerMsg {
    /// Install (or replace) this worker's shard of a session's patterns.
    Install { session: u64, slices: WorkerSlices },
    /// Drop a session's shard.
    Remove { session: u64 },
    /// Execute a fused batch and reply once per entry.
    Batch(Arc<Batch>),
    /// Exit the worker loop.
    Shutdown,
}

/// A spawned pool worker: its command channel plus the join handle.
#[derive(Debug)]
pub(crate) struct PoolWorker {
    pub sender: Sender<WorkerMsg>,
    pub join: Option<JoinHandle<()>>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "pool worker panicked with a non-string payload".to_string()
    }
}

/// Spawns the fixed pool: `count` worker threads, each reporting entry
/// results through its clone of `reply_tx`.
pub(crate) fn spawn_pool(count: usize, reply_tx: &Sender<WorkerReply>) -> Vec<PoolWorker> {
    (0..count)
        .map(|worker_index| {
            let (cmd_tx, cmd_rx): (Sender<WorkerMsg>, Receiver<WorkerMsg>) = channel();
            let replies = reply_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("plf-pool-{worker_index}"))
                .spawn(move || worker_loop(worker_index, &cmd_rx, &replies))
                .expect("failed to spawn pool worker thread");
            PoolWorker {
                sender: cmd_tx,
                join: Some(join),
            }
        })
        .collect()
}

fn worker_loop(worker_index: usize, commands: &Receiver<WorkerMsg>, replies: &Sender<WorkerReply>) {
    // session id → this worker's shard of that session's patterns.
    let mut tenants: HashMap<u64, WorkerSlices> = HashMap::new();
    while let Ok(msg) = commands.recv() {
        match msg {
            WorkerMsg::Install { session, slices } => {
                tenants.insert(session, slices);
            }
            WorkerMsg::Remove { session } => {
                tenants.remove(&session);
            }
            WorkerMsg::Shutdown => break,
            WorkerMsg::Batch(batch) => {
                let results = batch
                    .entries
                    .iter()
                    .map(|entry| run_entry(&mut tenants, &batch, entry, worker_index))
                    .collect();
                if replies
                    .send(WorkerReply {
                        worker: worker_index,
                        results,
                    })
                    .is_err()
                {
                    // Dispatcher gone: nothing left to serve.
                    return;
                }
            }
        }
    }
}

/// Executes one batch entry against its session's local slices, converting
/// a panic into a quarantine of *that session only*.
fn run_entry(
    tenants: &mut HashMap<u64, WorkerSlices>,
    batch: &Batch,
    entry: &BatchEntry,
    worker_index: usize,
) -> EntryResult {
    let Some(slices) = tenants.get_mut(&entry.session) else {
        return EntryResult::MissingSession;
    };
    let injected = batch.panic_target == Some((entry.session, worker_index));
    let body = || -> Result<OpOutput, OpError> {
        if injected {
            // lint:allow(L001): fault-injection hook, armed only by recovery tests
            panic!("injected pool worker panic (test instrumentation)");
        }
        let ctx = ExecContext {
            tree: &entry.snapshot.tree,
            models: &entry.snapshot.models,
            branch_lengths: &entry.snapshot.branch_lengths,
        };
        execute_on_worker(slices, &entry.op, &ctx)
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(output)) => EntryResult::Output(output),
        Ok(Err(op_error)) => EntryResult::Rejected(op_error),
        Err(payload) => {
            // The slices may be half-updated; quarantine this tenant on
            // this worker and keep the thread alive for everyone else.
            tenants.remove(&entry.session);
            EntryResult::Panicked(panic_message(payload))
        }
    }
}
