//! Tenant-level scheduling: which sessions' ops fuse into each region.
//!
//! The single-session schedulers in `phylo-sched` decide *pattern → worker*
//! within one dataset. Serving adds a second axis: every dispatch round the
//! pool must pick *which sessions'* pending ops to batch into the next fused
//! region — the `(session, pattern) × worker` generalization. The policy
//! here is deliberately small and deterministic:
//!
//! * [`TenantStrategy`] bounds the pool (admission capacity), the fusion
//!   width (`max_batch`) and how long the dispatcher lingers to let more
//!   sessions join a round (`batch_window`).
//! * [`FairQueue`] is a stride scheduler over session weights: a session of
//!   weight `w` advances its virtual *pass* by `1/w` per served op, and each
//!   round the pending sessions with the lowest pass go first. Service is
//!   proportional to weight over time and no tenant starves, yet the whole
//!   thing is plain arithmetic — reproducible in a unit test, no clocks.

use std::collections::HashMap;
use std::time::Duration;

/// Pool-level scheduling policy: admission bound plus batching shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStrategy {
    /// Maximum live sessions admitted at once; the bound behind
    /// [`crate::AdmissionError::PoolFull`].
    pub max_sessions: usize,
    /// Maximum ops fused into one dispatch round (one barrier).
    pub max_batch: usize,
    /// How long the dispatcher waits for more sessions' ops before closing
    /// a round that is not yet full. Zero (the default) means *natural
    /// batching*: each round fuses exactly the ops that arrived while the
    /// previous round executed — fusion widens by itself under load and a
    /// lone session never waits. A nonzero window buys wider fusion at the
    /// price of that much added latency on every round.
    pub batch_window: Duration,
    /// Ops of *consecutive* service a session is granted once selected,
    /// before its slot rotates to the next-lowest-pass tenant. A quantum of
    /// 1 is pure per-op stride scheduling (maximum interleaving); larger
    /// quanta keep the set of tenants resident on the pool stable for that
    /// many rounds, which preserves the workers' cache locality when many
    /// more sessions are live than `max_batch` — short-term service skew is
    /// bounded by the quantum and long-run shares still follow the weights.
    pub quantum: u32,
}

impl Default for TenantStrategy {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_batch: 16,
            batch_window: Duration::ZERO,
            quantum: 32,
        }
    }
}

/// Weighted fair queueing over session ids (stride scheduling).
///
/// Determinism: selection sorts by `(pass, session id)`, so equal-pass ties
/// always break toward the older (lower-id) session.
#[derive(Debug, Default)]
pub struct FairQueue {
    lanes: HashMap<u64, Lane>,
}

#[derive(Debug)]
struct Lane {
    stride: f64,
    pass: f64,
    credit: u32,
}

impl FairQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `session` with fair-share `weight` (> 0). The lane starts
    /// at the minimum live pass, so a late joiner is *caught up*, not handed
    /// the whole backlog of rounds it never waited for.
    pub fn register(&mut self, session: u64, weight: u32) {
        let floor = self
            .lanes
            .values()
            .map(|l| l.pass)
            .fold(f64::INFINITY, f64::min);
        let pass = if floor.is_finite() { floor } else { 0.0 };
        self.lanes.insert(
            session,
            Lane {
                stride: 1.0 / f64::from(weight.max(1)),
                pass,
                credit: 0,
            },
        );
    }

    /// Drops `session`'s lane (a no-op for unknown ids).
    pub fn remove(&mut self, session: u64) {
        self.lanes.remove(&session);
    }

    /// Number of registered lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether no lane is registered.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Whether some registered lane still holds quantum credit but has no
    /// pending op (per `is_pending`) — a resident tenant whose next op has
    /// not arrived yet because its driver is still digesting the previous
    /// result. The dispatcher holds a round briefly while this is true, so
    /// residents keep their slots instead of rotating on every round.
    pub fn awaiting_resident(&self, mut is_pending: impl FnMut(u64) -> bool) -> bool {
        self.lanes
            .iter()
            .any(|(&s, l)| l.credit > 0 && !is_pending(s))
    }

    /// Picks up to `max` of the `pending` sessions for the next round and
    /// charges each selected lane one served op (`pass += stride`).
    ///
    /// Selection is stride scheduling with a service quantum: sessions that
    /// still hold credit from an earlier grant keep their slots (cache
    /// affinity), and freed slots go to the pending sessions with the
    /// lowest pass, each granted `quantum` ops of credit. With `quantum`
    /// = 1 this degenerates to pure lowest-pass-first. Ties always break
    /// toward the lower session id; unknown ids are skipped.
    pub fn select(&mut self, pending: &[u64], max: usize, quantum: u32) -> Vec<u64> {
        let mut resident: Vec<(f64, u64)> = Vec::new();
        let mut fresh: Vec<(f64, u64)> = Vec::new();
        for &s in pending {
            if let Some(lane) = self.lanes.get(&s) {
                if lane.credit > 0 {
                    resident.push((lane.pass, s));
                } else {
                    fresh.push((lane.pass, s));
                }
            }
        }
        let rank = |a: &(f64, u64), b: &(f64, u64)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        resident.sort_by(rank);
        resident.truncate(max);
        let mut chosen: Vec<u64> = resident.into_iter().map(|(_, s)| s).collect();
        fresh.sort_by(rank);
        for (_, s) in fresh {
            if chosen.len() >= max {
                break;
            }
            if let Some(lane) = self.lanes.get_mut(&s) {
                lane.credit = quantum.max(1);
            }
            chosen.push(s);
        }
        for &s in &chosen {
            if let Some(lane) = self.lanes.get_mut(&s) {
                lane.pass += lane.stride;
                lane.credit = lane.credit.saturating_sub(1);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serves `rounds` dispatch rounds of width `max` with every session
    /// always pending, returning ops served per session.
    fn saturate(queue: &mut FairQueue, sessions: &[u64], max: usize, rounds: usize) -> Vec<usize> {
        let mut served = vec![0usize; sessions.len()];
        for _ in 0..rounds {
            for s in queue.select(sessions, max, 1) {
                let i = sessions.iter().position(|&x| x == s).unwrap();
                served[i] += 1;
            }
        }
        served
    }

    #[test]
    fn equal_weights_share_the_pool_evenly() {
        let mut q = FairQueue::new();
        for s in 0..4 {
            q.register(s, 1);
        }
        let served = saturate(&mut q, &[0, 1, 2, 3], 2, 100);
        assert_eq!(served, vec![50, 50, 50, 50]);
    }

    #[test]
    fn service_is_proportional_to_weight_under_contention() {
        let mut q = FairQueue::new();
        q.register(0, 3);
        q.register(1, 1);
        // One slot per round: the weight-3 session gets ~3/4 of the rounds.
        let served = saturate(&mut q, &[0, 1], 1, 200);
        assert_eq!(served[0] + served[1], 200);
        let share = served[0] as f64 / 200.0;
        assert!(
            (share - 0.75).abs() < 0.02,
            "weight-3 share was {share}, expected ~0.75"
        );
        // ...and nobody starves.
        assert!(served[1] > 0);
    }

    #[test]
    fn late_joiners_are_caught_up_not_backlogged() {
        let mut q = FairQueue::new();
        q.register(0, 1);
        // Run session 0 alone for a while, accumulating pass.
        let _ = saturate(&mut q, &[0], 1, 50);
        q.register(1, 1);
        // From here on the two split evenly — the newcomer does not
        // monopolize the pool to "repay" rounds it never waited for.
        let served = saturate(&mut q, &[0, 1], 1, 40);
        assert_eq!(served, vec![20, 20]);
    }

    #[test]
    fn removal_and_unknown_ids_are_harmless() {
        let mut q = FairQueue::new();
        q.register(7, 1);
        assert_eq!(q.len(), 1);
        q.remove(7);
        q.remove(99);
        assert!(q.is_empty());
        assert!(q.select(&[7, 99], 4, 1).is_empty());
    }

    #[test]
    fn a_quantum_keeps_the_resident_set_stable_without_breaking_shares() {
        let mut q = FairQueue::new();
        let sessions: Vec<u64> = (0..8).collect();
        for &s in &sessions {
            q.register(s, 1);
        }
        // Width-2 rounds with a quantum of 10: the active pair must stay
        // identical for 10 consecutive rounds before the slots rotate.
        let first = q.select(&sessions, 2, 10);
        for _ in 1..10 {
            assert_eq!(
                q.select(&sessions, 2, 10),
                first,
                "resident set rotated early"
            );
        }
        let next = q.select(&sessions, 2, 10);
        assert_ne!(next, first, "slots never rotated");
        // Long-run service is still an even split.
        let mut served = vec![0usize; sessions.len()];
        for _ in 0..380 {
            for s in q.select(&sessions, 2, 10) {
                served[s as usize] += 1;
            }
        }
        let (min, max) = (served.iter().min().unwrap(), served.iter().max().unwrap());
        assert!(
            max - min <= 10,
            "quantum skew exceeded one quantum: {served:?}"
        );
    }

    #[test]
    fn ties_break_deterministically_by_session_id() {
        let mut q = FairQueue::new();
        q.register(2, 1);
        q.register(1, 1);
        assert_eq!(q.select(&[1, 2], 1, 1), vec![1]);
        assert_eq!(q.select(&[1, 2], 1, 1), vec![2]);
    }
}
