//! The dispatcher: admission, fairness and the fused dispatch round.
//!
//! One dispatcher thread sits between the per-session drivers and the fixed
//! pool. Drivers submit one op at a time (their executors are synchronous);
//! the dispatcher gathers pending ops from *different* sessions for up to
//! [`TenantStrategy::batch_window`], asks the [`FairQueue`] which sessions
//! go first, and broadcasts one fused [`Batch`] to every pool worker — one
//! barrier serving up to `max_batch` tenants. Each worker answers with one
//! reply carrying its results for every entry, and the dispatcher reduces
//! each entry **in worker-index order**, so a session's result is
//! bit-identical to what a dedicated executor would have produced.
//!
//! Failure containment mirrors the single-session executors: a deterministic
//! op rejection surfaces as [`ExecError::Op`] without quarantining anything;
//! a worker panic on session A's entry surfaces as
//! [`ExecError::WorkerDied`] *to A alone* — every other entry of the batch
//! reduces normally, because the pool thread survives and A's slices were
//! dropped only on the panicking worker.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use phylo_kernel::executor::reduce_outputs;
use phylo_kernel::{ExecError, KernelOp, OpError, OpOutput, WorkerSlices};

use crate::error::AdmissionError;
use crate::pool::{
    Batch, BatchEntry, EntryResult, PoolWorker, StateSnapshot, WorkerMsg, WorkerReply,
};
use crate::tenant::{FairQueue, TenantStrategy};

/// How many scheduler yields the dispatcher will spend holding a round open
/// for mid-quantum tenants whose next op has not arrived yet. Generous
/// against a driver's between-ops bookkeeping (a few yields), tiny against
/// an op's compute, so a stalled resident can delay a round but never stall
/// the pool.
const RESIDENCY_HOLD_YIELDS: usize = 32;

/// One op submitted by a session's executor, with its reply lane.
pub(crate) struct OpRequest {
    pub session: u64,
    pub op: KernelOp,
    pub snapshot: Arc<StateSnapshot>,
    pub reply: Sender<Result<OpOutput, ExecError>>,
}

/// Everything the dispatcher can be asked to do.
pub(crate) enum DispatchMsg {
    /// Admit a session and install its per-worker slices on the pool.
    Register {
        session: u64,
        weight: u32,
        slices: Vec<WorkerSlices>,
        reply: Sender<Result<(), AdmissionError>>,
    },
    /// Execute one op for a session (the hot path).
    Op(OpRequest),
    /// Reinstall a session's slices (worker-death recovery / migration).
    Reassign {
        session: u64,
        slices: Vec<WorkerSlices>,
        reply: Sender<()>,
    },
    /// Retire a session and free its admission slot.
    Remove { session: u64 },
    /// Arm a one-shot injected panic: `worker` dies on `session`'s op
    /// dispatched `after_ops` session-ops from now (0 = the next one).
    InjectPanic {
        session: u64,
        worker: usize,
        after_ops: u64,
    },
    /// Report pool-level aggregates.
    Stats { reply: Sender<PoolStats> },
    /// Stop the dispatcher (and the pool workers with it).
    Shutdown,
}

/// Pool-level aggregates, served over the command channel so the hot path
/// needs no shared counters at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Fixed pool width (worker threads).
    pub workers: usize,
    /// Sessions currently admitted.
    pub active_sessions: usize,
    /// The admission bound.
    pub capacity: usize,
    /// Ops dispatched to the pool since start.
    pub ops_dispatched: u64,
    /// Fused dispatch rounds issued since start.
    pub batches: u64,
    /// Widest round so far (ops fused under one barrier).
    pub max_batch_fused: usize,
    /// Worker panics observed (each quarantined one tenant on one worker).
    pub worker_panics: u64,
    /// Message of the most recent worker panic, if any was caught.
    pub last_panic: Option<String>,
}

struct TenantState {
    pending: VecDeque<OpRequest>,
    fault: Option<(usize, u64)>,
}

struct Dispatcher {
    strategy: TenantStrategy,
    workers: Vec<Sender<WorkerMsg>>,
    replies: Receiver<WorkerReply>,
    // BTreeMap, not HashMap: `pending_ops` and the round builder iterate the
    // tenant table, and dispatch order must not depend on hash order (L006).
    tenants: BTreeMap<u64, TenantState>,
    queue: FairQueue,
    ops_dispatched: u64,
    batches: u64,
    max_batch_fused: usize,
    worker_panics: u64,
    last_panic: Option<String>,
}

/// Spawns the dispatcher thread over an already-spawned pool.
pub(crate) fn spawn_dispatcher(
    commands: Receiver<DispatchMsg>,
    workers: &[PoolWorker],
    replies: Receiver<WorkerReply>,
    strategy: TenantStrategy,
) -> JoinHandle<()> {
    let senders: Vec<Sender<WorkerMsg>> = workers.iter().map(|w| w.sender.clone()).collect();
    std::thread::Builder::new()
        .name("plf-dispatch".to_string())
        .spawn(move || {
            Dispatcher {
                strategy,
                workers: senders,
                replies,
                tenants: BTreeMap::new(),
                queue: FairQueue::new(),
                ops_dispatched: 0,
                batches: 0,
                max_batch_fused: 0,
                worker_panics: 0,
                last_panic: None,
            }
            .run(&commands);
        })
        .expect("failed to spawn dispatcher thread")
}

impl Dispatcher {
    fn run(mut self, commands: &Receiver<DispatchMsg>) {
        'serve: loop {
            // With nothing pending, block for the next command.
            if self.pending_ops() == 0 {
                match commands.recv() {
                    Ok(msg) => {
                        if self.handle(msg) {
                            break 'serve;
                        }
                    }
                    Err(_) => break 'serve,
                }
            }
            // Greedy drain with productive yields: ingest every command
            // already queued, and as long as each sweep keeps finding new
            // ones (drivers woken by the previous round are actively
            // resubmitting), yield the core so they can — ops fuse into one
            // wide round instead of a train of narrow barriers. The cost on
            // an idle pool is two empty yields (microseconds), not a timed
            // linger window.
            let mut idle_sweeps = 0;
            while idle_sweeps < 2 && self.pending_ops() < self.strategy.max_batch {
                let Some(drained) = self.drain_commands(commands) else {
                    break 'serve;
                };
                idle_sweeps = if drained == 0 { idle_sweeps + 1 } else { 0 };
                std::thread::yield_now();
            }
            // Residency hold: tenants mid-quantum whose next op has not
            // arrived yet (their drivers are still digesting the previous
            // result) get a bounded grace period to resubmit before the
            // round closes. Without this, any other pending tenant would
            // steal the slot the moment a resident's driver woke, and the
            // resident set would churn on every round — defeating the
            // quantum's cache-locality purpose. The wait is a bounded yield
            // loop, not a parked sleep: the residents' drivers are runnable
            // right now (they just received results), so handing them the
            // core directly is cheaper than a park/unpark cycle per command.
            if self.strategy.quantum > 1 {
                let mut holds = 0;
                while holds < RESIDENCY_HOLD_YIELDS
                    && self.queue.awaiting_resident(|s| {
                        self.tenants.get(&s).is_some_and(|t| !t.pending.is_empty())
                    })
                {
                    if self.drain_commands(commands).is_none() {
                        break 'serve;
                    }
                    std::thread::yield_now();
                    holds += 1;
                }
            }
            // Optionally linger for up to the batch window (off by default:
            // it trades every round's latency for wider fusion, which only
            // pays off when drivers are slow to resubmit).
            if !self.strategy.batch_window.is_zero() {
                // lint:allow(L008): batch-window linger deadline — bounds how long the round
                // waits for stragglers; never feeds op ordering or the reduction.
                let deadline = Instant::now() + self.strategy.batch_window;
                while self.pending_ops() < self.strategy.max_batch {
                    // lint:allow(L008): remaining-linger clock check, same bounded wait.
                    let now = Instant::now();
                    let Some(left) = deadline
                        .checked_duration_since(now)
                        .filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    match commands.recv_timeout(left) {
                        Ok(msg) => {
                            if self.handle(msg) {
                                break 'serve;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break 'serve,
                    }
                }
            }
            self.dispatch_round();
        }
        for worker in &self.workers {
            let _ = worker.send(WorkerMsg::Shutdown);
        }
    }

    fn pending_ops(&self) -> usize {
        self.tenants.values().map(|t| t.pending.len()).sum()
    }

    /// Ingests every command already queued; `None` means shutdown.
    fn drain_commands(&mut self, commands: &Receiver<DispatchMsg>) -> Option<usize> {
        let mut drained = 0usize;
        loop {
            match commands.try_recv() {
                Ok(msg) => {
                    if self.handle(msg) {
                        return None;
                    }
                    drained += 1;
                }
                Err(TryRecvError::Empty) => return Some(drained),
                Err(TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// Applies one command; returns `true` on shutdown.
    fn handle(&mut self, msg: DispatchMsg) -> bool {
        match msg {
            DispatchMsg::Register {
                session,
                weight,
                slices,
                reply,
            } => {
                let verdict = self.register(session, weight, slices);
                let _ = reply.send(verdict);
            }
            DispatchMsg::Op(request) => {
                if let Some(tenant) = self.tenants.get_mut(&request.session) {
                    tenant.pending.push_back(request);
                } else {
                    // Unregistered session (e.g. removed mid-flight): fail
                    // its op instead of letting the driver hang.
                    let _ = request.reply.send(Err(ExecError::WorkerDied { worker: 0 }));
                }
            }
            DispatchMsg::Reassign {
                session,
                slices,
                reply,
            } => {
                self.install(session, slices);
                let _ = reply.send(());
            }
            DispatchMsg::Remove { session } => {
                self.tenants.remove(&session);
                self.queue.remove(session);
                for worker in &self.workers {
                    let _ = worker.send(WorkerMsg::Remove { session });
                }
            }
            DispatchMsg::InjectPanic {
                session,
                worker,
                after_ops,
            } => {
                if let Some(tenant) = self.tenants.get_mut(&session) {
                    tenant.fault = Some((worker, after_ops));
                }
            }
            DispatchMsg::Stats { reply } => {
                let _ = reply.send(PoolStats {
                    workers: self.workers.len(),
                    active_sessions: self.tenants.len(),
                    capacity: self.strategy.max_sessions,
                    ops_dispatched: self.ops_dispatched,
                    batches: self.batches,
                    max_batch_fused: self.max_batch_fused,
                    worker_panics: self.worker_panics,
                    last_panic: self.last_panic.clone(),
                });
            }
            DispatchMsg::Shutdown => return true,
        }
        false
    }

    fn register(
        &mut self,
        session: u64,
        weight: u32,
        slices: Vec<WorkerSlices>,
    ) -> Result<(), AdmissionError> {
        if weight == 0 {
            return Err(AdmissionError::ZeroWeight);
        }
        if self.tenants.len() >= self.strategy.max_sessions {
            return Err(AdmissionError::PoolFull {
                active: self.tenants.len(),
                capacity: self.strategy.max_sessions,
            });
        }
        self.tenants.insert(
            session,
            TenantState {
                pending: VecDeque::new(),
                fault: None,
            },
        );
        self.queue.register(session, weight);
        self.install(session, slices);
        Ok(())
    }

    /// Ships one slice shard to each pool worker, in worker order.
    fn install(&mut self, session: u64, slices: Vec<WorkerSlices>) {
        for (worker, shard) in self.workers.iter().zip(slices) {
            let _ = worker.send(WorkerMsg::Install {
                session,
                slices: shard,
            });
        }
    }

    /// One fused region: select fairly, broadcast, reduce per entry in
    /// worker-index order, answer every served session.
    fn dispatch_round(&mut self) {
        let mut pending: Vec<u64> = self
            .tenants
            .iter()
            .filter(|(_, t)| !t.pending.is_empty())
            .map(|(&s, _)| s)
            .collect();
        pending.sort_unstable();
        let chosen = self
            .queue
            .select(&pending, self.strategy.max_batch, self.strategy.quantum);
        if chosen.is_empty() {
            return;
        }

        let mut entries = Vec::with_capacity(chosen.len());
        let mut lanes = Vec::with_capacity(chosen.len());
        let mut panic_target = None;
        for session in chosen {
            let Some(tenant) = self.tenants.get_mut(&session) else {
                continue;
            };
            let Some(request) = tenant.pending.pop_front() else {
                continue;
            };
            // Count down a one-shot armed fault on this session's op lane.
            if let Some((worker, after_ops)) = tenant.fault {
                if after_ops == 0 {
                    panic_target = Some((session, worker));
                    tenant.fault = None;
                } else {
                    tenant.fault = Some((worker, after_ops - 1));
                }
            }
            entries.push(BatchEntry {
                session,
                op: request.op,
                snapshot: request.snapshot,
            });
            lanes.push((session, request.reply));
        }
        if entries.is_empty() {
            return;
        }

        let fused = entries.len();
        let batch = Arc::new(Batch {
            entries,
            panic_target,
        });
        self.ops_dispatched += fused as u64;
        self.batches += 1;
        self.max_batch_fused = self.max_batch_fused.max(fused);

        // Broadcast; a dead worker channel means a lost worker thread — its
        // entries are treated below like a panic (no reply ever arrives).
        let mut live = 0usize;
        for worker in &self.workers {
            if worker.send(WorkerMsg::Batch(Arc::clone(&batch))).is_ok() {
                live += 1;
            }
        }

        // Lockstep drain: exactly one reply per live worker, each carrying
        // that worker's results for the whole batch in entry order.
        let worker_count = self.workers.len();
        let mut per_worker: Vec<Option<std::vec::IntoIter<EntryResult>>> =
            (0..worker_count).map(|_| None).collect();
        for _ in 0..live {
            match self.replies.recv() {
                Ok(reply) => {
                    if let Some(slot) = per_worker.get_mut(reply.worker) {
                        *slot = Some(reply.results.into_iter());
                    }
                }
                Err(_) => break,
            }
        }

        for (session, reply) in lanes {
            // A lost worker (no reply, or a short/malformed reply) yields
            // `None` in its slot and reduces like a death on that worker.
            let row: Vec<Option<EntryResult>> = per_worker
                .iter_mut()
                .map(|lane| lane.as_mut().and_then(Iterator::next))
                .collect();
            let result = self.reduce_entry(row);
            if result.is_err() {
                // The faulted session stops sending ops until it reassigns;
                // drop any ops it already queued so they cannot go stale.
                if let Some(tenant) = self.tenants.get_mut(&session) {
                    tenant.pending.clear();
                }
            }
            let _ = reply.send(result);
        }
    }

    /// Folds one entry's per-worker results in worker-index order — the
    /// same deterministic reduction every single-session executor uses.
    fn reduce_entry(&mut self, row: Vec<Option<EntryResult>>) -> Result<OpOutput, ExecError> {
        let mut folded: Option<OpOutput> = None;
        let mut rejected: Option<OpError> = None;
        let mut died: Option<usize> = None;
        for (worker, slot) in row.into_iter().enumerate() {
            match slot {
                Some(EntryResult::Output(output)) => {
                    folded = match folded.take() {
                        None => Some(output),
                        Some(acc) => match reduce_outputs(acc, output) {
                            Ok(merged) => Some(merged),
                            Err(e) => {
                                rejected.get_or_insert(e);
                                None
                            }
                        },
                    };
                }
                Some(EntryResult::Rejected(op_error)) => {
                    rejected.get_or_insert(op_error);
                }
                Some(EntryResult::Panicked(message)) => {
                    self.worker_panics += 1;
                    self.last_panic = Some(message);
                    died.get_or_insert(worker);
                }
                Some(EntryResult::MissingSession) | None => {
                    died.get_or_insert(worker);
                }
            }
        }
        if let Some(worker) = died {
            return Err(ExecError::WorkerDied { worker });
        }
        if let Some(op_error) = rejected {
            return Err(ExecError::Op(op_error));
        }
        match folded {
            Some(output) => Ok(output),
            None => Err(ExecError::WorkerDied { worker: 0 }),
        }
    }
}
