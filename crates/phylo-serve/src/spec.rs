//! Session specifications: what one tenant wants to run.

use std::sync::Arc;

use phylo_data::PartitionedPatterns;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{OptimizerConfig, ParallelScheme};
use phylo_sched::{ScheduleStrategy, WeightedLpt};
use phylo_tree::Tree;

/// A one-shot injected worker fault (test/chaos instrumentation): pool
/// worker `worker` panics while executing this session's op dispatched
/// `after_ops` session-ops after admission (0 = the first op).
///
/// Injection is armed *before* the session's first op enters the dispatch
/// channel, so the faulting op's position is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Pool worker index that dies.
    pub worker: usize,
    /// Session-ops dispatched before the fault fires.
    pub after_ops: u64,
}

/// Everything needed to admit one independent session: its dataset, tree,
/// models and per-session knobs. Mirrors the single-run `AnalysisBuilder`
/// configuration surface, minus the executor choice — the pool is fixed and
/// shared, which is the point.
pub struct SessionSpec {
    pub(crate) patterns: Arc<PartitionedPatterns>,
    pub(crate) tree: Tree,
    pub(crate) models: Option<ModelSet>,
    pub(crate) branch_mode: BranchLengthMode,
    pub(crate) strategy: Box<dyn ScheduleStrategy>,
    pub(crate) optimizer: OptimizerConfig,
    pub(crate) weight: u32,
    pub(crate) label: String,
    pub(crate) fault: Option<WorkerFault>,
}

impl std::fmt::Debug for SessionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSpec")
            .field("label", &self.label)
            .field("strategy", &self.strategy.name())
            .field("weight", &self.weight)
            .field("fault", &self.fault)
            .finish()
    }
}

impl SessionSpec {
    /// A session over `patterns` and `tree` with the defaults of the
    /// single-run builder: default per-partition models, [`WeightedLpt`]
    /// pattern placement, the newPAR optimizer scheme, fair-share weight 1.
    pub fn new(patterns: Arc<PartitionedPatterns>, tree: Tree) -> Self {
        Self {
            patterns,
            tree,
            models: None,
            branch_mode: BranchLengthMode::PerPartition,
            strategy: Box::new(WeightedLpt),
            optimizer: OptimizerConfig::new(ParallelScheme::New),
            weight: 1,
            label: String::from("session"),
            fault: None,
        }
    }

    /// Explicit per-partition models (default: [`ModelSet::default_for`]
    /// under the configured branch mode).
    #[must_use]
    pub fn models(mut self, models: ModelSet) -> Self {
        self.models = Some(models);
        self
    }

    /// Branch-length mode of the default models (ignored with explicit
    /// models). Default: [`BranchLengthMode::PerPartition`].
    #[must_use]
    pub fn branch_mode(mut self, mode: BranchLengthMode) -> Self {
        self.branch_mode = mode;
        self
    }

    /// Pattern→worker placement strategy over the pool's fixed width
    /// (default [`WeightedLpt`]).
    #[must_use]
    pub fn strategy(mut self, strategy: impl ScheduleStrategy + 'static) -> Self {
        self.strategy = Box::new(strategy);
        self
    }

    /// Optimizer configuration for the session's run.
    #[must_use]
    pub fn optimizer(mut self, config: OptimizerConfig) -> Self {
        self.optimizer = config;
        self
    }

    /// Fair-share weight (> 0): under contention a weight-`w` session gets
    /// `w` times the dispatch rounds of a weight-1 session. Zero is a typed
    /// [`crate::AdmissionError::ZeroWeight`] at submit time.
    #[must_use]
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Human-readable label carried into the session's outcome.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Arms a one-shot injected worker fault for this session (recovery
    /// tests and chaos drills; see [`WorkerFault`]).
    #[must_use]
    pub fn inject_worker_fault(mut self, worker: usize, after_ops: u64) -> Self {
        self.fault = Some(WorkerFault { worker, after_ops });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_seqgen::datasets::paper_simulated;

    #[test]
    fn spec_defaults_mirror_the_single_run_builder() {
        let ds = paper_simulated(6, 80, 20, 3).generate();
        let spec = SessionSpec::new(Arc::clone(&ds.patterns), ds.tree.clone())
            .weight(2)
            .label("unit")
            .inject_worker_fault(1, 4);
        assert_eq!(spec.weight, 2);
        assert_eq!(spec.label, "unit");
        assert_eq!(
            spec.fault,
            Some(WorkerFault {
                worker: 1,
                after_ops: 4
            })
        );
        assert!(spec.models.is_none());
        let debug = format!("{spec:?}");
        assert!(debug.contains("unit") && debug.contains("weighted-lpt"));
    }
}
