//! Analytical platform performance model.
//!
//! The paper reports absolute run times on four 2009-era multi-core machines
//! (Intel Nehalem, Intel Clovertown, AMD Barcelona, Sun x4600) that are not
//! available for this reproduction. The load-balance behaviour itself is
//! captured exactly by the instrumented executor's [`WorkTrace`]: for every
//! parallel region it records how much likelihood work each of the `T` virtual
//! workers received and how many synchronization events occurred. This crate
//! converts such a trace into a predicted run time for a given platform using
//! a simple three-term model per region:
//!
//! ```text
//! t(region) = max_w  flops_w / flop_rate            (compute, critical path)
//!           + max_w  bytes_w / (bandwidth / T)      (memory traffic, RAxML is memory bound)
//!           + sync_latency(T)                       (barrier / reduction)
//! ```
//!
//! The platform constants are calibrated against the qualitative statements in
//! the paper (Nehalem ≈ 40 % faster sequentially than Clovertown thanks to
//! ~30 GB/s per socket; the AMD/NUMA boxes are slower sequentially but provide
//! more aggregate bandwidth for 8–16 threads; the 8-socket x4600 pays the
//! highest synchronization cost). Absolute seconds are therefore approximate,
//! but *who wins, by what factor, and where the scaling collapses* — the shape
//! of Figures 3–6 — comes from the measured trace, not from these constants.
//!
//! ```
//! use phylo_kernel::cost::{OpKind, RegionRecord, WorkTrace};
//! use phylo_perfmodel::Platform;
//!
//! // One perfectly balanced 8-worker region of 1 MFLOP + 1 MB per worker.
//! let mut trace = WorkTrace::new(8);
//! let mut region = RegionRecord::new(OpKind::Newview, 8);
//! region.flops_per_worker = vec![1e6; 8];
//! region.bytes_per_worker = vec![1e6; 8];
//! trace.regions.push(region);
//!
//! let balanced = Platform::nehalem().predict_runtime(&trace);
//! assert!(balanced > 0.0);
//! // Piling the same work onto one worker can only slow the region down.
//! let mut skewed = WorkTrace::new(8);
//! let mut region = RegionRecord::new(OpKind::Newview, 8);
//! region.flops_per_worker[0] = 8e6;
//! region.bytes_per_worker[0] = 8e6;
//! skewed.regions.push(region);
//! assert!(Platform::nehalem().predict_runtime(&skewed) > balanced);
//! ```

#![forbid(unsafe_code)]

use phylo_data::{DataType, PartitionedPatterns};
use phylo_kernel::cost::{
    newview_flops, newview_flops_blocked, newview_flops_tabled, TraceUnit, WorkTrace,
};
use phylo_sched::{Assignment, PatternCosts, SchedError};

/// Hardware description of one evaluation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Display name as used in the paper's figures.
    pub name: String,
    /// Number of physical cores.
    pub cores: usize,
    /// Sustained likelihood-kernel throughput per core, in FLOP/s.
    pub flops_per_core: f64,
    /// Aggregate memory bandwidth available to the likelihood arrays, in
    /// bytes/s, when all cores are active.
    pub memory_bandwidth: f64,
    /// Cost of one synchronization event (barrier + reduction) with two
    /// threads, in seconds; grows logarithmically with the thread count.
    pub base_sync_latency: f64,
}

impl Platform {
    /// 2-socket Intel Nehalem (8 cores, QuickPath NUMA, ~30 GB/s per socket).
    pub fn nehalem() -> Self {
        Self {
            name: "Nehalem".into(),
            cores: 8,
            flops_per_core: 2.1e9,
            memory_bandwidth: 55.0e9,
            base_sync_latency: 4.0e-6,
        }
    }

    /// 2-socket Intel Clovertown (8 cores sharing one front-side bus).
    pub fn clovertown() -> Self {
        Self {
            name: "Clovertown".into(),
            cores: 8,
            flops_per_core: 1.7e9,
            memory_bandwidth: 9.0e9,
            base_sync_latency: 5.0e-6,
        }
    }

    /// 4-socket AMD Barcelona (16 cores, NUMA).
    pub fn barcelona() -> Self {
        Self {
            name: "Barcelona".into(),
            cores: 16,
            flops_per_core: 1.15e9,
            memory_bandwidth: 28.0e9,
            base_sync_latency: 7.0e-6,
        }
    }

    /// 8-socket Sun x4600 (16 cores, NUMA, highest barrier cost).
    pub fn x4600() -> Self {
        Self {
            name: "x4600".into(),
            cores: 16,
            flops_per_core: 1.25e9,
            memory_bandwidth: 32.0e9,
            base_sync_latency: 10.0e-6,
        }
    }

    /// The four platforms of the paper's evaluation, in figure order.
    pub fn paper_platforms() -> Vec<Platform> {
        vec![
            Self::nehalem(),
            Self::clovertown(),
            Self::barcelona(),
            Self::x4600(),
        ]
    }

    /// Synchronization latency for `threads` participating threads.
    pub fn sync_latency(&self, threads: usize) -> f64 {
        if threads <= 1 {
            return 0.0;
        }
        self.base_sync_latency * (threads as f64).log2().max(1.0)
    }

    /// Predicted run time in seconds for a work trace recorded with
    /// `trace.workers` virtual workers.
    ///
    /// # Panics
    ///
    /// Panics if the trace was recorded for more workers than the platform has
    /// cores.
    pub fn predict_runtime(&self, trace: &WorkTrace) -> f64 {
        let threads = trace.workers.max(1);
        assert!(
            threads <= self.cores,
            "trace uses {threads} workers but {} has only {} cores",
            self.name,
            self.cores
        );
        let per_thread_bandwidth = self.memory_bandwidth / threads as f64;
        let sync = self.sync_latency(threads);
        trace
            .regions
            .iter()
            .map(|region| {
                let compute = region
                    .flops_per_worker
                    .iter()
                    .zip(region.bytes_per_worker.iter())
                    .map(|(&flops, &bytes)| {
                        flops / self.flops_per_core + bytes / per_thread_bandwidth
                    })
                    .fold(0.0, f64::max);
                compute + sync
            })
            .sum()
    }

    /// Speedup of a parallel trace relative to a sequential (1-worker) trace.
    pub fn speedup(&self, sequential: &WorkTrace, parallel: &WorkTrace) -> f64 {
        let seq = self.predict_runtime(sequential);
        let par = self.predict_runtime(parallel);
        if par == 0.0 {
            return 1.0;
        }
        seq / par
    }
}

/// Predicted-vs-measured imbalance of one scheduled run: what the scheduler
/// *thought* the per-worker load would be (from the [`Assignment`]'s cost
/// model) against what the instrumented executor *measured* (from the
/// [`WorkTrace`]). A large gap means the cost model mis-ranks patterns and a
/// trace-adaptive re-schedule will pay off.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceReport {
    /// Name of the strategy that produced the assignment.
    pub strategy: String,
    /// Worker count of the schedule.
    pub workers: usize,
    /// Predicted cost of the most loaded worker.
    pub predicted_max: f64,
    /// Mean predicted cost per worker.
    pub predicted_mean: f64,
    /// Predicted imbalance (max/mean; 1.0 = perfect).
    pub predicted_imbalance: f64,
    /// Measured FLOPs of the most loaded worker, summed over all regions.
    pub measured_max: f64,
    /// Mean measured FLOPs per worker.
    pub measured_mean: f64,
    /// Measured imbalance (max/mean over the aggregated trace).
    pub measured_imbalance: f64,
    /// Region-weighted measured balance (`WorkTrace::overall_balance`): the
    /// mean/max efficiency accounting for one barrier per region.
    pub measured_region_balance: f64,
}

impl ImbalanceReport {
    /// Relative error of the predicted imbalance against the measured one.
    pub fn model_error(&self) -> f64 {
        if self.measured_imbalance == 0.0 {
            return 0.0;
        }
        (self.predicted_imbalance - self.measured_imbalance).abs() / self.measured_imbalance
    }

    /// Fixed-width table row.
    pub fn format(&self) -> String {
        format!(
            "{:<16} {:>3} {:>12.3} {:>12.3} {:>14.3} {:>14.3} {:>10.3}",
            self.strategy,
            self.workers,
            self.predicted_imbalance,
            self.measured_imbalance,
            self.predicted_max,
            self.measured_max,
            self.measured_region_balance,
        )
    }

    /// Header matching [`ImbalanceReport::format`].
    pub fn header() -> String {
        format!(
            "{:<16} {:>3} {:>12} {:>12} {:>14} {:>14} {:>10}",
            "strategy", "T", "pred imbal", "meas imbal", "pred max", "meas max", "region bal"
        )
    }
}

/// Compares an assignment's predicted per-worker costs against the measured
/// per-worker FLOPs of a trace recorded under that assignment
/// ([`imbalance_report_in`] with [`TraceUnit::Flops`]).
///
/// # Panics
///
/// Panics if the trace was recorded for a different worker count than the
/// assignment distributes over.
pub fn imbalance_report(assignment: &Assignment, trace: &WorkTrace) -> ImbalanceReport {
    imbalance_report_in(assignment, trace, TraceUnit::Flops)
}

/// Compares an assignment's predicted per-worker costs against the measured
/// per-worker totals of a trace in an explicit unit. With
/// [`TraceUnit::Seconds`] the measured side is the real wall clock of a
/// timed `ThreadedExecutor` run; the imbalance columns stay directly
/// comparable because max/mean ratios are unitless (the absolute `max`
/// columns are then in different units, of course).
///
/// # Panics
///
/// Panics if the trace was recorded for a different worker count than the
/// assignment distributes over.
pub fn imbalance_report_in(
    assignment: &Assignment,
    trace: &WorkTrace,
    unit: TraceUnit,
) -> ImbalanceReport {
    assert_eq!(
        trace.workers,
        assignment.worker_count(),
        "trace and assignment must describe the same worker count"
    );
    let workers = assignment.worker_count();
    let measured = trace.per_worker_total_in(unit);
    let measured_max = measured.iter().cloned().fold(0.0, f64::max);
    let measured_mean = measured.iter().sum::<f64>() / workers as f64;
    let measured_imbalance = phylo_sched::assignment::worker_imbalance(&measured);
    ImbalanceReport {
        strategy: assignment.strategy().to_string(),
        workers,
        predicted_max: assignment.max_cost(),
        predicted_mean: assignment.mean_cost(),
        predicted_imbalance: assignment.imbalance(),
        measured_max,
        measured_mean,
        measured_imbalance,
        measured_region_balance: trace.overall_balance_in(unit),
    }
}

/// Measured per-pattern costs of the two data types under one kernel — the
/// empirical counterpart of the analytic protein/DNA cost ratio.
///
/// The paper's argument leans on a `(20/4)² ≈ 25×` analytic ratio. The
/// shared-table kernel (`phylo_kernel::tables`) changes the arithmetic — tip
/// children become table lookups — and the recalibrated analytic ratio drops
/// to [`CostCalibration::analytic_ratio_tabled`] = 21. A calibration is
/// obtained by timing per-pattern likelihood work on a pure-DNA and a
/// pure-protein region (the `kernel_tables` benchmark does exactly that) and
/// lets the scheduler pack against *measured* weights via
/// [`CostCalibration::pattern_costs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCalibration {
    /// Measured seconds of likelihood work per DNA pattern.
    pub dna_seconds_per_pattern: f64,
    /// Measured seconds of likelihood work per protein pattern.
    pub protein_seconds_per_pattern: f64,
}

impl CostCalibration {
    /// Measured protein/DNA per-pattern cost ratio.
    pub fn ratio(&self) -> f64 {
        self.protein_seconds_per_pattern / self.dna_seconds_per_pattern
    }

    /// The analytic ratio under the per-call kernel (`≈ 23.8` for equal
    /// category counts — the paper's "≈25×" argument).
    pub fn analytic_ratio_per_call(categories: usize) -> f64 {
        newview_flops(DataType::Protein.states(), categories)
            / newview_flops(DataType::Dna.states(), categories)
    }

    /// The recalibrated analytic ratio under the shared-table kernel
    /// (exactly 21 for equal category counts: tip lookups flatten the
    /// per-state gap).
    pub fn analytic_ratio_tabled(categories: usize) -> f64 {
        newview_flops_tabled(DataType::Protein.states(), categories)
            / newview_flops_tabled(DataType::Dna.states(), categories)
    }

    /// The recalibrated analytic ratio under the cache-blocked kernel (the
    /// engine's default dispatch; 6.0 for equal category counts): the packed
    /// inner loops shrink the flop term of both widths by the SIMD lane
    /// count while the fixed per-(pattern, category) overhead stays scalar,
    /// so the effective protein/DNA gap *collapses* from the tabled model's
    /// 21 (overhead dominates the tiny 4×4 product; it is noise next to the
    /// 20×20 one). The `kernel_tables` yardstick gates this value against
    /// the measured ratio via [`CostCalibration::analytic_drift_factor`].
    pub fn analytic_ratio_blocked(categories: usize) -> f64 {
        newview_flops_blocked(DataType::Protein.states(), categories)
            / newview_flops_blocked(DataType::Dna.states(), categories)
    }

    /// Relative error of the recalibrated analytic ratio against this
    /// measurement (0 = the tabled cost model ranks the data types exactly
    /// as the hardware does).
    pub fn tabled_model_error(&self, categories: usize) -> f64 {
        let analytic = Self::analytic_ratio_tabled(categories);
        (self.ratio() - analytic).abs() / analytic
    }

    /// Multiplicative drift of an analytic protein/DNA ratio against this
    /// measurement: `max(analytic/measured, measured/analytic)`, i.e. 1.0
    /// when the model matches the hardware exactly and symmetric in the
    /// direction of the error. The `kernel_tables` yardstick fails when the
    /// shipped analytic model drifts beyond a factor 2.
    pub fn analytic_drift_factor(&self, analytic_ratio: f64) -> f64 {
        let measured = self.ratio();
        (analytic_ratio / measured).max(measured / analytic_ratio)
    }

    /// The shipped measured-first calibration: per-pattern seconds measured
    /// by the `kernel_tables` yardstick in the reference container under the
    /// blocked dispatch (the engine default). Absolute seconds are
    /// machine-specific — what the schedulers consume is the *ratio* — but
    /// shipping the raw measurement keeps the provenance honest. Prefer a
    /// live measurement ([`CostCalibration::measured_first`]); this is the
    /// fallback when none is available.
    pub fn shipped_blocked() -> Self {
        Self {
            dna_seconds_per_pattern: 4.7e-7,
            protein_seconds_per_pattern: 2.8e-6,
        }
    }

    /// Measured-first selection: a live calibration when one is available
    /// (e.g. just timed by the `kernel_tables` workload on this machine),
    /// otherwise the shipped container measurement — never the analytic
    /// FLOP model. Feed the result to [`CostCalibration::pattern_costs`] to
    /// pack schedules against measured weights.
    pub fn measured_first(live: Option<CostCalibration>) -> Self {
        live.unwrap_or_else(Self::shipped_blocked)
    }

    /// Per-pattern costs for a dataset, weighted by the *measured* seconds
    /// instead of analytic FLOPs — drop-in input for any
    /// `phylo_sched::ScheduleStrategy`.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidCost`] if a measured per-pattern second is NaN,
    /// negative or infinite (a garbage timer must not silently scramble the
    /// LPT pack order).
    pub fn pattern_costs(
        &self,
        patterns: &PartitionedPatterns,
    ) -> Result<PatternCosts, SchedError> {
        PatternCosts::per_partition(patterns, |_, part| match part.data_type {
            DataType::Dna => self.dna_seconds_per_pattern,
            DataType::Protein => self.protein_seconds_per_pattern,
        })
    }
}

/// One row of a figure-3/4/5-style table: run times for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// Platform name.
    pub platform: String,
    /// Sequential run time (seconds).
    pub sequential: f64,
    /// oldPAR with 8 threads.
    pub old_8: f64,
    /// newPAR with 8 threads.
    pub new_8: f64,
    /// oldPAR with 16 threads (`None` on 8-core machines).
    pub old_16: Option<f64>,
    /// newPAR with 16 threads (`None` on 8-core machines).
    pub new_16: Option<f64>,
}

impl FigureRow {
    /// Formats the row in a fixed-width table layout.
    pub fn format(&self) -> String {
        let fmt_opt = |v: &Option<f64>| match v {
            Some(x) => format!("{x:>12.1}"),
            None => format!("{:>12}", "-"),
        };
        format!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {} {}",
            self.platform,
            self.sequential,
            self.old_8,
            self.new_8,
            fmt_opt(&self.old_16),
            fmt_opt(&self.new_16)
        )
    }

    /// Header matching [`FigureRow::format`].
    pub fn header() -> String {
        format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "Platform", "Sequential", "Old 8", "New 8", "Old 16", "New 16"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_kernel::cost::{OpKind, RegionRecord, WorkTrace};

    fn balanced_trace(workers: usize, regions: usize, flops: f64) -> WorkTrace {
        let mut t = WorkTrace::new(workers);
        for _ in 0..regions {
            let mut r = RegionRecord::new(OpKind::Newview, workers);
            r.flops_per_worker = vec![flops / workers as f64; workers];
            r.bytes_per_worker = vec![flops / workers as f64; workers];
            t.regions.push(r);
        }
        t
    }

    fn imbalanced_trace(workers: usize, regions: usize, flops: f64) -> WorkTrace {
        let mut t = WorkTrace::new(workers);
        for _ in 0..regions {
            let mut r = RegionRecord::new(OpKind::Derivatives, workers);
            r.flops_per_worker = vec![0.0; workers];
            r.flops_per_worker[0] = flops;
            r.bytes_per_worker = vec![0.0; workers];
            t.regions.push(r);
        }
        t
    }

    #[test]
    fn paper_platforms_have_expected_core_counts() {
        let platforms = Platform::paper_platforms();
        assert_eq!(platforms.len(), 4);
        assert_eq!(platforms[0].cores, 8);
        assert_eq!(platforms[1].cores, 8);
        assert_eq!(platforms[2].cores, 16);
        assert_eq!(platforms[3].cores, 16);
    }

    #[test]
    fn nehalem_is_fastest_sequentially() {
        let seq = balanced_trace(1, 10, 1e9);
        let times: Vec<f64> = Platform::paper_platforms()
            .iter()
            .map(|p| p.predict_runtime(&seq))
            .collect();
        assert!(
            times[0] < times[1],
            "Nehalem must beat Clovertown sequentially"
        );
        assert!(times[0] < times[2] && times[0] < times[3]);
        // Paper: sequential Nehalem run time ≈ 40% lower than Clovertown.
        let reduction = 1.0 - times[0] / times[1];
        assert!(
            (0.2..0.6).contains(&reduction),
            "Nehalem vs Clovertown sequential reduction {reduction}"
        );
    }

    #[test]
    fn balanced_work_scales_well() {
        let p = Platform::nehalem();
        let seq = balanced_trace(1, 100, 1e8);
        let par = balanced_trace(8, 100, 1e8);
        let s = p.speedup(&seq, &par);
        assert!(s > 4.0, "balanced 8-thread speedup {s} too low");
        assert!(s <= 8.0 + 1e-9);
    }

    #[test]
    fn imbalanced_work_does_not_scale() {
        let p = Platform::barcelona();
        let seq = imbalanced_trace(1, 100, 1e8);
        let par = imbalanced_trace(16, 100, 1e8);
        let s = p.speedup(&seq, &par);
        assert!(s < 1.5, "fully serialized work cannot speed up, got {s}");
    }

    #[test]
    fn many_tiny_regions_can_cause_parallel_slowdown() {
        // The paper observes oldPAR running *slower* on 16 cores than on 8:
        // per-region work shrinks while the barrier cost stays, so more
        // threads only add overhead.
        let p = Platform::x4600();
        let seq = imbalanced_trace(1, 20_000, 2e4);
        let par = imbalanced_trace(16, 20_000, 2e4);
        let s = p.speedup(&seq, &par);
        assert!(s < 1.0, "expected a parallel slowdown, got speedup {s}");
    }

    #[test]
    fn clovertown_is_bandwidth_limited_in_parallel() {
        // With 8 threads the Barcelona (NUMA) should catch up with or beat the
        // Clovertown despite its slower cores, as the paper observes.
        let par8 = balanced_trace(8, 50, 1e9);
        let clovertown = Platform::clovertown().predict_runtime(&par8);
        let barcelona_8 = {
            let p = Platform::barcelona();
            p.predict_runtime(&par8)
        };
        assert!(
            barcelona_8 < clovertown * 1.1,
            "Barcelona at 8 threads ({barcelona_8}) should be on par with Clovertown ({clovertown})"
        );
    }

    #[test]
    fn sync_latency_grows_with_threads() {
        let p = Platform::x4600();
        assert_eq!(p.sync_latency(1), 0.0);
        assert!(p.sync_latency(16) > p.sync_latency(8));
    }

    #[test]
    #[should_panic]
    fn rejects_traces_wider_than_the_machine() {
        let p = Platform::nehalem();
        let t = balanced_trace(16, 1, 1e6);
        p.predict_runtime(&t);
    }

    #[test]
    fn imbalance_report_compares_predicted_and_measured() {
        use phylo_sched::{PatternCosts, ScheduleStrategy};

        let costs = PatternCosts::uniform(8);
        let assignment = phylo_sched::Cyclic.assign(&costs, 2).unwrap();
        assert_eq!(assignment.imbalance(), 1.0);

        // The measured trace disagrees: worker 0 did 3× the work.
        let mut trace = WorkTrace::new(2);
        let mut r = RegionRecord::new(OpKind::Newview, 2);
        r.flops_per_worker = vec![300.0, 100.0];
        trace.regions.push(r);

        let report = imbalance_report(&assignment, &trace);
        assert_eq!(report.strategy, "cyclic");
        assert_eq!(report.workers, 2);
        assert!((report.predicted_imbalance - 1.0).abs() < 1e-12);
        assert!((report.measured_imbalance - 1.5).abs() < 1e-12);
        assert_eq!(report.measured_max, 300.0);
        assert!((report.model_error() - 0.5 / 1.5).abs() < 1e-12);
        assert!(report.format().contains("cyclic"));
        assert!(ImbalanceReport::header().contains("pred imbal"));
    }

    #[test]
    fn imbalance_report_reads_wall_clock_seconds() {
        use phylo_sched::{PatternCosts, ScheduleStrategy};

        let costs = PatternCosts::uniform(8);
        let assignment = phylo_sched::Cyclic.assign(&costs, 2).unwrap();
        let mut trace = WorkTrace::new(2);
        let mut r = RegionRecord::new(OpKind::Newview, 2);
        r.seconds_per_worker = vec![0.9, 0.3];
        trace.regions.push(r);

        let report = imbalance_report_in(&assignment, &trace, TraceUnit::Seconds);
        assert!((report.measured_imbalance - 1.5).abs() < 1e-12);
        assert_eq!(report.measured_max, 0.9);
        assert!((report.measured_region_balance - 0.6 / 0.9).abs() < 1e-12);
        // The flops view of the same trace is empty.
        let flops = imbalance_report(&assignment, &trace);
        assert_eq!(flops.measured_max, 0.0);
    }

    #[test]
    #[should_panic(expected = "same worker count")]
    fn imbalance_report_rejects_mismatched_trace() {
        use phylo_sched::ScheduleStrategy;
        let assignment = phylo_sched::Cyclic
            .assign(&phylo_sched::PatternCosts::uniform(4), 2)
            .unwrap();
        let trace = WorkTrace::new(3);
        let _ = imbalance_report(&assignment, &trace);
    }

    #[test]
    fn cost_calibration_recalibrates_the_ratio() {
        // Per-call ≈ 23.8, tabled exactly 21 — the recalibration the shared
        // tables force on the scheduler's cost model.
        let per_call = CostCalibration::analytic_ratio_per_call(4);
        let tabled = CostCalibration::analytic_ratio_tabled(4);
        assert!((per_call - 1620.0 / 68.0).abs() < 1e-12, "{per_call}");
        assert!((tabled - 21.0).abs() < 1e-12, "{tabled}");
        assert!(tabled < per_call);

        let measured = CostCalibration {
            dna_seconds_per_pattern: 1.0e-6,
            protein_seconds_per_pattern: 21.0e-6,
        };
        assert!((measured.ratio() - 21.0).abs() < 1e-12);
        assert!(measured.tabled_model_error(4) < 1e-12);
        let off = CostCalibration {
            dna_seconds_per_pattern: 1.0e-6,
            protein_seconds_per_pattern: 10.5e-6,
        };
        assert!((off.tabled_model_error(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn calibrated_pattern_costs_weigh_by_measured_seconds() {
        use phylo_data::{Alignment, Partition, PartitionSet};

        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGT".into()),
            ("t2".into(), "ACGAACGAACGAACGA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("dna", DataType::Dna, 0..8),
            Partition::contiguous("prot", DataType::Protein, 8..16),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();

        let calibration = CostCalibration {
            dna_seconds_per_pattern: 2.0e-6,
            protein_seconds_per_pattern: 40.0e-6,
        };
        let costs = calibration.pattern_costs(&pp).unwrap();
        assert_eq!(costs.pattern_count(), pp.total_patterns());
        assert!((costs.cost(0) - 2.0e-6).abs() < 1e-18);
        assert!((costs.cost(pp.global_offset(1)) - 40.0e-6).abs() < 1e-18);

        // Garbage timers are rejected, not silently packed.
        let garbage = CostCalibration {
            dna_seconds_per_pattern: f64::NAN,
            protein_seconds_per_pattern: 1.0,
        };
        assert!(matches!(
            garbage.pattern_costs(&pp),
            Err(SchedError::InvalidCost { .. })
        ));
    }

    #[test]
    fn blocked_analytic_ratio_and_drift() {
        // The blocked cost model collapses the protein/DNA gap: packed
        // arithmetic divides the flop term by the lane count while the fixed
        // per-(pattern, category) overhead stays scalar. Pin the shape so a
        // silent cost-model edit cannot drift away from the measured ratio
        // the kernel_tables yardstick gates against.
        let blocked = CostCalibration::analytic_ratio_blocked(4);
        assert!((blocked - 6.0).abs() < 1e-12);
        // Categories cancel in the ratio.
        assert!((CostCalibration::analytic_ratio_blocked(1) - blocked).abs() < 1e-12);
        assert!(blocked < CostCalibration::analytic_ratio_tabled(4));

        // Drift factor is symmetric and 1.0 at an exact match.
        let exact = CostCalibration {
            dna_seconds_per_pattern: 1.0e-7,
            protein_seconds_per_pattern: 6.0e-7,
        };
        assert!((exact.analytic_drift_factor(6.0) - 1.0).abs() < 1e-12);
        assert!((exact.analytic_drift_factor(12.0) - 2.0).abs() < 1e-12);
        assert!((exact.analytic_drift_factor(3.0) - 2.0).abs() < 1e-12);

        // The shipped container measurement itself sits inside the factor-2
        // gate — shipping a calibration that fails our own yardstick would
        // be incoherent.
        let shipped = CostCalibration::shipped_blocked();
        assert!(shipped.analytic_drift_factor(blocked) <= 2.0);
    }

    #[test]
    fn measured_first_prefers_live_calibration() {
        let live = CostCalibration {
            dna_seconds_per_pattern: 9.0e-7,
            protein_seconds_per_pattern: 5.0e-6,
        };
        let picked = CostCalibration::measured_first(Some(live));
        assert_eq!(picked, live);
        let fallback = CostCalibration::measured_first(None);
        assert_eq!(fallback, CostCalibration::shipped_blocked());
    }

    #[test]
    fn figure_row_formatting() {
        let row = FigureRow {
            platform: "Nehalem".into(),
            sequential: 1000.0,
            old_8: 400.0,
            new_8: 150.0,
            old_16: None,
            new_16: None,
        };
        let text = row.format();
        assert!(text.contains("Nehalem"));
        assert!(text.contains("1000.0"));
        assert!(FigureRow::header().contains("Sequential"));
    }
}
