//! Maximum-likelihood tree search.
//!
//! The paper's "full ML tree search" experiments run RAxML's hill-climbing
//! search, which alternates between a tree-search phase (SPR moves with local
//! branch-length optimization, touching only 3–4 conditional likelihood
//! vectors per evaluated move) and a model-optimization phase (full traversals
//! while α, the Q matrices and all branch lengths are re-estimated). This
//! crate implements that loop on top of the likelihood engine and the
//! oldPAR/newPAR optimizers; which scheme is used is part of the
//! [`SearchConfig`], so the same search can be timed under both schemes.
//!
//! ```
//! use std::sync::Arc;
//! use phylo_kernel::SequentialKernel;
//! use phylo_models::{BranchLengthMode, ModelSet};
//! use phylo_optimize::ParallelScheme;
//! use phylo_search::{tree_search, SearchConfig};
//! use phylo_seqgen::datasets::paper_simulated;
//!
//! let ds = paper_simulated(6, 80, 40, 3).generate();
//! let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
//! let mut kernel = SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
//!
//! let mut config = SearchConfig::new(ParallelScheme::New);
//! config.max_rounds = 1;
//! config.spr_radius = 2;
//! config.optimize_model_between_rounds = false;
//! let result = tree_search(&mut kernel, &config).unwrap();
//! assert!(result.final_log_likelihood >= result.initial_log_likelihood);
//! assert!(kernel.tree().validate().is_ok());
//! ```

#![forbid(unsafe_code)]

use phylo_kernel::{Executor, KernelError, LikelihoodKernel};
use phylo_optimize::adaptive::{
    ensure_measurements_happened, validate_base_costs, with_worker_recovery,
};
use phylo_optimize::{
    optimize_all_branches, optimize_model_parameters, reschedule_if_needed, reschedule_mid_round,
    HookPoint, OptimizeError, OptimizerConfig, ParallelScheme, RescheduleEvent, WorkerRecovery,
};
use phylo_sched::{PatternCosts, Reassignable, Rescheduler};
use phylo_tree::spr::{candidate_moves, SprMove};

/// Configuration of the SPR hill-climbing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Maximum number of branches between the pruning point and a regraft
    /// target (RAxML's "rearrangement radius").
    pub spr_radius: usize,
    /// Maximum number of search rounds (each round tries moves at every
    /// internal node).
    pub max_rounds: usize,
    /// Minimum log-likelihood gain for accepting a move.
    pub acceptance_epsilon: f64,
    /// Optimizer settings used for the local branch-length optimization inside
    /// the search phase.
    pub search_optimizer: OptimizerConfig,
    /// Optimizer settings used for the model-optimization phase between search
    /// rounds.
    pub model_optimizer: OptimizerConfig,
    /// Whether to run the model-optimization phase between rounds.
    pub optimize_model_between_rounds: bool,
}

impl SearchConfig {
    /// Default search configuration for a parallelization scheme.
    pub fn new(scheme: ParallelScheme) -> Self {
        Self {
            spr_radius: 5,
            max_rounds: 3,
            acceptance_epsilon: 1e-3,
            search_optimizer: OptimizerConfig::search_phase(scheme),
            model_optimizer: OptimizerConfig::new(scheme),
            optimize_model_between_rounds: true,
        }
    }

    /// The scheme both optimizer configurations use.
    pub fn scheme(&self) -> ParallelScheme {
        self.search_optimizer.scheme
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::new(ParallelScheme::New)
    }
}

/// Outcome of a tree search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Log likelihood of the starting tree (after initial branch smoothing).
    pub initial_log_likelihood: f64,
    /// Log likelihood of the final tree.
    pub final_log_likelihood: f64,
    /// Number of candidate moves whose likelihood was evaluated.
    pub evaluated_moves: u64,
    /// Number of accepted (improving) moves.
    pub accepted_moves: u64,
    /// Number of completed search rounds.
    pub rounds: usize,
    /// Synchronization events issued over the whole search.
    pub sync_events: u64,
}

/// Runs the SPR hill-climbing search on the engine's current tree.
///
/// # Errors
///
/// Propagates [`KernelError`] from the engine — most prominently a worker
/// death in a parallel backend. The tree, models and branch lengths keep
/// every accepted move and committed update, so a caller that rebuilds the
/// workers can call again and the search resumes from the current tree;
/// [`tree_search_adaptive`] does that automatically.
pub fn tree_search<E: Executor>(
    kernel: &mut LikelihoodKernel<E>,
    config: &SearchConfig,
) -> Result<SearchResult, KernelError> {
    tree_search_with_hook(kernel, config, |_, _, _| Ok(()))
}

/// [`SearchResult`] plus the mid-search ownership migrations.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSearchResult {
    /// The ordinary search outcome.
    pub result: SearchResult,
    /// Migrations performed between search rounds, in execution order.
    pub events: Vec<RescheduleEvent>,
    /// Worker deaths absorbed by rebuilding the workers mid-search (empty in
    /// a healthy run). When non-empty, `result` describes the final resumed
    /// attempt: the search continued on the current (partially improved)
    /// tree, but the initial-lnL, move and sync-event counters restart at
    /// the last recovery point, and the interrupted round's smoothing and
    /// candidate evaluations are re-executed.
    pub recoveries: Vec<WorkerRecovery>,
}

/// [`tree_search`] with mid-run rescheduling: after every search round the
/// executor's live trace is shown to the rescheduler, and a triggered
/// decision migrates pattern→worker ownership before the next round — the
/// search continues on the same tree with bit-identical likelihood
/// semantics.
///
/// The rescheduler is consulted after *every* round, including the last one
/// (see `optimize_model_parameters_adaptive` for why that is deliberate).
/// Worker deaths are recovered exactly as in the adaptive optimizer: up to
/// `config.search_optimizer.max_worker_recoveries` deaths are absorbed by
/// rebuilding the workers and resuming the search on the current tree.
///
/// # Errors
///
/// [`OptimizeError::Sched`] with [`SchedError::PatternCountMismatch`](phylo_sched::SchedError::PatternCountMismatch) if
/// `base_costs` covers a different number of patterns than the kernel's
/// dataset, or with [`SchedError::NoMeasurements`](phylo_sched::SchedError::NoMeasurements) if the search finished
/// without the executor recording a single trace region (the measurement
/// path is not enabled, so rescheduling could never have triggered);
/// [`OptimizeError::Kernel`] when the engine fails beyond the recovery
/// budget.
pub fn tree_search_adaptive<E>(
    kernel: &mut LikelihoodKernel<E>,
    config: &SearchConfig,
    rescheduler: &mut Rescheduler,
    base_costs: &PatternCosts,
) -> Result<AdaptiveSearchResult, OptimizeError>
where
    E: Executor + Reassignable,
{
    validate_base_costs(kernel, base_costs)?;
    let mask_aware = rescheduler.policy().mask_aware;
    let mut events = Vec::new();
    let mut recoveries = Vec::new();
    let result = with_worker_recovery(
        kernel,
        config.search_optimizer.max_worker_recoveries,
        &mut recoveries,
        |kernel| {
            tree_search_with_hook(kernel, config, |kernel, round, point| {
                let event = match point {
                    HookPoint::WithinRound if !mask_aware => None,
                    HookPoint::WithinRound => {
                        reschedule_mid_round(kernel, rescheduler, base_costs, round)?
                    }
                    HookPoint::RoundEnd => {
                        reschedule_if_needed(kernel, rescheduler, base_costs, round)?
                    }
                };
                if let Some(event) = event {
                    events.push(event);
                }
                Ok(())
            })
        },
    )?;
    ensure_measurements_happened(kernel, &events)?;
    Ok(AdaptiveSearchResult {
        result,
        events,
        recoveries,
    })
}

/// [`tree_search`] with worker-death recovery but without mid-run
/// rescheduling: up to `config.search_optimizer.max_worker_recoveries`
/// worker deaths are absorbed by rebuilding the workers and resuming the
/// search on the current tree. Unlike [`tree_search_adaptive`] this places
/// no requirement on the executor's measurement path.
///
/// # Errors
///
/// [`OptimizeError::Kernel`] when the engine fails beyond the recovery
/// budget (or for a non-recoverable error), [`OptimizeError::Sched`] if a
/// recovery rebuild itself fails.
pub fn tree_search_resilient<E>(
    kernel: &mut LikelihoodKernel<E>,
    config: &SearchConfig,
) -> Result<(SearchResult, Vec<WorkerRecovery>), OptimizeError>
where
    E: Executor + Reassignable,
{
    let mut recoveries = Vec::new();
    let result = with_worker_recovery(
        kernel,
        config.search_optimizer.max_worker_recoveries,
        &mut recoveries,
        |kernel| tree_search_with_hook(kernel, config, |_, _, _| Ok(())),
    )?;
    Ok((result, recoveries))
}

/// The search loop with a caller-supplied hook invoked at the two
/// rescheduling points of each round: [`HookPoint::WithinRound`] after the
/// SPR sweep (the local branch optimizations just recorded the round's
/// convergence-mask shape) and [`HookPoint::RoundEnd`] at the end of the
/// round, before the no-improvement break. The hook may mutate the kernel
/// as long as it preserves the likelihood.
fn tree_search_with_hook<E, F>(
    kernel: &mut LikelihoodKernel<E>,
    config: &SearchConfig,
    mut hook: F,
) -> Result<SearchResult, KernelError>
where
    E: Executor,
    F: FnMut(&mut LikelihoodKernel<E>, usize, HookPoint) -> Result<(), KernelError>,
{
    let sync_before = kernel.sync_events();

    // Initial smoothing of the starting tree, as RAxML does before searching.
    let (mut best_lnl, _) = optimize_all_branches(kernel, None, &config.search_optimizer)?;
    let initial = best_lnl;

    let mut evaluated = 0u64;
    let mut accepted = 0u64;
    let mut rounds = 0usize;

    for _round in 0..config.max_rounds {
        rounds += 1;
        let mut improved_this_round = false;

        let internal_nodes: Vec<_> = kernel.tree().internal_nodes().collect();
        for node in internal_nodes {
            // Try pruning each of the node's three subtrees in turn.
            let neighbor_list: Vec<_> = kernel
                .tree()
                .neighbors(node)
                .iter()
                .map(|&(n, _)| n)
                .collect();
            for subtree in neighbor_list {
                let moves: Vec<SprMove> =
                    candidate_moves(kernel.tree(), node, subtree, config.spr_radius);
                for mv in moves {
                    let Ok(application) = kernel.apply_spr(mv) else {
                        continue;
                    };
                    // Local branch-length optimization around the insertion
                    // point (3 branches), as in lazy SPR.
                    let local = LikelihoodKernel::<E>::inserted_branches(&application);
                    let (lnl, _) =
                        optimize_all_branches(kernel, Some(&local), &config.search_optimizer)?;
                    evaluated += 1;
                    if lnl > best_lnl + config.acceptance_epsilon {
                        best_lnl = lnl;
                        accepted += 1;
                        improved_this_round = true;
                        // Keep the move; continue searching from the new tree.
                        break;
                    } else {
                        kernel.undo_spr(&application);
                    }
                }
            }
        }

        hook(kernel, rounds, HookPoint::WithinRound)?;

        if config.optimize_model_between_rounds {
            let report = optimize_model_parameters(kernel, &config.model_optimizer)?;
            best_lnl = report.final_log_likelihood;
        }

        // Search rounds share the optimizer-round event: the timeline shows
        // the likelihood staircase of the whole run, inner model rounds and
        // outer SPR rounds alike (timestamps keep them apart).
        kernel.telemetry().optimizer_round(rounds, best_lnl);
        hook(kernel, rounds, HookPoint::RoundEnd)?;
        if !improved_this_round {
            break;
        }
    }

    Ok(SearchResult {
        initial_log_likelihood: initial,
        final_log_likelihood: best_lnl,
        evaluated_moves: evaluated,
        accepted_moves: accepted,
        rounds,
        sync_events: kernel.sync_events() - sync_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_kernel::SequentialKernel;
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_seqgen::datasets::paper_simulated;
    use phylo_tree::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    /// Builds an engine whose starting tree is a *random* topology, unrelated
    /// to the tree the data were simulated on.
    fn kernel_with_random_start(seed: u64) -> (SequentialKernel, phylo_tree::Tree) {
        let ds = paper_simulated(8, 400, 100, seed).generate();
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1000));
        let start = random_tree(&ds.patterns.taxa.clone(), &mut rng);
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let k = SequentialKernel::build(Arc::clone(&ds.patterns), start, models).unwrap();
        (k, ds.tree)
    }

    fn shared_bipartitions(a: &phylo_tree::Tree, b: &phylo_tree::Tree) -> usize {
        let ba = a.bipartitions();
        b.bipartitions().iter().filter(|s| ba.contains(s)).count()
    }

    #[test]
    fn search_improves_the_likelihood() {
        let (mut k, _true_tree) = kernel_with_random_start(1);
        let mut config = SearchConfig::new(ParallelScheme::New);
        config.max_rounds = 2;
        config.spr_radius = 3;
        config.optimize_model_between_rounds = false;
        let result = tree_search(&mut k, &config).unwrap();
        assert!(
            result.final_log_likelihood > result.initial_log_likelihood,
            "search must improve lnL: {} -> {}",
            result.initial_log_likelihood,
            result.final_log_likelihood
        );
        assert!(result.evaluated_moves > 0);
        assert!(result.sync_events > 0);
    }

    #[test]
    fn search_recovers_most_of_the_true_topology() {
        let (mut k, true_tree) = kernel_with_random_start(2);
        let start_shared = shared_bipartitions(k.tree(), &true_tree);
        let mut config = SearchConfig::new(ParallelScheme::New);
        config.max_rounds = 3;
        config.spr_radius = 6;
        config.optimize_model_between_rounds = false;
        let result = tree_search(&mut k, &config).unwrap();
        let end_shared = shared_bipartitions(k.tree(), &true_tree);
        assert!(
            end_shared >= start_shared,
            "search must not move away from the generating topology ({start_shared} -> {end_shared})"
        );
        assert!(
            result.accepted_moves > 0,
            "expected at least one accepted move"
        );
        // With 400 informative columns on 8 taxa a tree close to the
        // generating topology should be found (first-improvement hill climbing
        // may stop in a nearby local optimum, so we require three quarters of
        // the bipartitions rather than all of them).
        let total = true_tree.bipartitions().len();
        assert!(
            end_shared as f64 >= 0.75 * total as f64,
            "recovered only {end_shared}/{total} bipartitions"
        );
    }

    #[test]
    fn adaptive_search_migrates_ownership_and_preserves_the_likelihood() {
        use phylo_kernel::cost::TraceUnit;
        use phylo_parallel::{schedule, Cyclic, TracingExecutor};
        use phylo_sched::ReschedulePolicy;

        // 7 workers over 64-pattern partitions: uneven cyclic shares give a
        // real measured FLOP imbalance for the policy to act on.
        let ds = phylo_seqgen::datasets::mixed_dna_protein(6, 3, 2, 64, 91).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let costs = PatternCosts::analytic(&ds.patterns, &cats);
        let assignment = schedule(&ds.patterns, &cats, 7, &Cyclic).unwrap();
        let exec = TracingExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut kernel =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();

        let mut config = SearchConfig::new(ParallelScheme::New);
        config.max_rounds = 2;
        config.spr_radius = 2;
        config.optimize_model_between_rounds = false;
        let mut rescheduler = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 1.0001,
            min_regions: 8,
            unit: TraceUnit::Flops,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        });
        let adaptive =
            tree_search_adaptive(&mut kernel, &config, &mut rescheduler, &costs).unwrap();
        assert!(
            !adaptive.events.is_empty(),
            "the low threshold must trigger a mid-search migration"
        );
        for event in &adaptive.events {
            assert!(
                event.log_likelihood_drift() < 1e-8,
                "migration drifted the likelihood by {}",
                event.log_likelihood_drift()
            );
        }
        assert!(adaptive.result.final_log_likelihood >= adaptive.result.initial_log_likelihood);
        assert_eq!(kernel.executor_mut().assignment().strategy(), "speed-lpt");
    }

    #[test]
    fn schemes_produce_comparable_final_trees() {
        let (mut k_old, _) = kernel_with_random_start(3);
        let (mut k_new, _) = kernel_with_random_start(3);
        let mut cfg_old = SearchConfig::new(ParallelScheme::Old);
        let mut cfg_new = SearchConfig::new(ParallelScheme::New);
        for cfg in [&mut cfg_old, &mut cfg_new] {
            cfg.max_rounds = 1;
            cfg.spr_radius = 3;
            cfg.optimize_model_between_rounds = false;
        }
        let r_old = tree_search(&mut k_old, &cfg_old).unwrap();
        let r_new = tree_search(&mut k_new, &cfg_new).unwrap();
        let rel = (r_old.final_log_likelihood - r_new.final_log_likelihood).abs()
            / r_old.final_log_likelihood.abs();
        assert!(
            rel < 5e-3,
            "schemes should find similar trees: {} vs {}",
            r_old.final_log_likelihood,
            r_new.final_log_likelihood
        );
        assert!(
            r_old.sync_events > r_new.sync_events,
            "oldPAR search must synchronize more: {} vs {}",
            r_old.sync_events,
            r_new.sync_events
        );
    }
}
