//! Mid-run rescheduling from live measurements.
//!
//! A schedule built up front — even a cost-aware one — cannot know how fast
//! each worker actually runs: cores get throttled, co-scheduled or NUMA-
//! penalized, and the analytic cost model mis-ranks some patterns. The
//! [`Rescheduler`] closes the loop: it watches the *live* [`WorkTrace`] a
//! timed executor accumulates, and once the measured per-worker imbalance
//! crosses a threshold (and enough regions have been observed to trust the
//! measurement), it produces a fresh [`Assignment`] via the speed-aware LPT
//! strategy. The driver then migrates pattern→worker ownership by rebuilding
//! the executor's worker slices — the [`Reassignable`] capability — and the
//! run continues with bit-identical likelihood semantics (only summation
//! order changes, so log likelihoods agree to ≤ 1e-8).

use crate::assignment::{worker_imbalance, Assignment};
use crate::cost::PatternCosts;
use crate::error::SchedError;
use crate::strategy::{ScheduleStrategy, SpeedAwareLpt};
use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::{TraceUnit, WorkTrace};

/// An execution backend whose pattern→worker ownership can be migrated
/// mid-run.
///
/// Implemented by the timed `ThreadedExecutor` and the virtual
/// `TracingExecutor` in `phylo-parallel`. After [`Reassignable::reassign`]
/// the workers own fresh (empty) CLV buffers, so the caller **must**
/// invalidate the master-side CLV validity cache before the next likelihood
/// evaluation.
pub trait Reassignable {
    /// The assignment the current workers were built from.
    fn assignment(&self) -> &Assignment;

    /// The live trace accumulated since construction or the last
    /// [`Reassignable::take_trace`]/[`Reassignable::reassign`].
    fn live_trace(&self) -> &WorkTrace;

    /// Takes the accumulated trace, leaving an empty one behind.
    fn take_trace(&mut self) -> WorkTrace;

    /// Rebuilds the worker slices under a new assignment and resets the
    /// trace (the old epoch measured the old ownership).
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for
    /// a different dataset.
    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError>;
}

/// When the [`Rescheduler`] acts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReschedulePolicy {
    /// Minimum measured imbalance (max/mean per-worker total, 1.0 = perfect)
    /// before a reschedule is considered worthwhile.
    pub imbalance_threshold: f64,
    /// Minimum number of recorded regions before the measurement is trusted
    /// (and between consecutive decisions, since a reschedule resets the
    /// trace epoch).
    pub min_regions: usize,
    /// Which per-worker measurement drives the decision. Real runs use
    /// [`TraceUnit::Seconds`]; virtual (tracing) runs use
    /// [`TraceUnit::Flops`].
    pub unit: TraceUnit,
    /// Upper bound on the number of reschedules per run (each one pays a
    /// full CLV recomputation).
    pub max_reschedules: usize,
}

impl Default for ReschedulePolicy {
    fn default() -> Self {
        Self {
            imbalance_threshold: 1.15,
            min_regions: 32,
            unit: TraceUnit::Seconds,
            max_reschedules: 2,
        }
    }
}

/// A positive decision: the new assignment plus the measurement that
/// justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct RescheduleDecision {
    /// The fresh assignment to migrate to.
    pub assignment: Assignment,
    /// Measured per-worker totals (in the policy's unit) that triggered the
    /// decision.
    pub measured: Vec<f64>,
    /// Measured imbalance (max/mean) of those totals.
    pub measured_imbalance: f64,
    /// Estimated per-worker speeds the new assignment packs against.
    pub speeds: Vec<f64>,
}

/// Decides, from a live trace, whether to migrate pattern ownership — and to
/// what.
#[derive(Debug, Clone, PartialEq)]
pub struct Rescheduler {
    policy: ReschedulePolicy,
    decisions: usize,
}

impl Rescheduler {
    /// A rescheduler with the given policy.
    pub fn new(policy: ReschedulePolicy) -> Self {
        Self {
            policy,
            decisions: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ReschedulePolicy {
        &self.policy
    }

    /// Number of positive decisions made so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Considers the live trace of a run under `current`. Returns
    /// `Ok(None)` when the policy says to stay put (too few regions,
    /// imbalance under threshold, decision budget exhausted, or the
    /// re-pack reproduces the current owner map).
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace and `current`
    /// disagree on the worker count,
    /// [`SchedError::PatternCountMismatch`] if `base` covers a different
    /// number of patterns than `current`.
    pub fn consider(
        &mut self,
        current: &Assignment,
        trace: &WorkTrace,
        base: &PatternCosts,
    ) -> Result<Option<RescheduleDecision>, SchedError> {
        if self.decisions >= self.policy.max_reschedules {
            return Ok(None);
        }
        if trace.sync_events() < self.policy.min_regions {
            return Ok(None);
        }
        let measured = trace.per_worker_total_in(self.policy.unit);
        let measured_imbalance = worker_imbalance(&measured);
        if measured_imbalance <= self.policy.imbalance_threshold {
            return Ok(None);
        }
        let strategy = SpeedAwareLpt::from_trace(current, trace, self.policy.unit, base)?;
        let assignment = strategy.assign(base, current.worker_count())?;
        if assignment.owner() == current.owner() {
            return Ok(None);
        }
        self.decisions += 1;
        Ok(Some(RescheduleDecision {
            assignment,
            measured,
            measured_imbalance,
            speeds: strategy.speeds().to_vec(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Cyclic;
    use phylo_kernel::cost::{OpKind, RegionRecord};

    fn skewed_trace(workers: usize, regions: usize, skew: f64) -> WorkTrace {
        let mut t = WorkTrace::new(workers);
        for _ in 0..regions {
            let mut r = RegionRecord::new(OpKind::Newview, workers);
            r.seconds_per_worker = vec![1.0; workers];
            r.seconds_per_worker[0] = skew;
            t.regions.push(r);
        }
        t
    }

    fn policy() -> ReschedulePolicy {
        ReschedulePolicy {
            imbalance_threshold: 1.2,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
        }
    }

    #[test]
    fn too_few_regions_means_no_decision() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 2, 5.0);
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
        assert_eq!(r.decisions(), 0);
    }

    #[test]
    fn balanced_trace_means_no_decision() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 10, 1.0);
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }

    #[test]
    fn skewed_trace_triggers_a_speed_aware_repack() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 10, 4.0);
        let decision = r.consider(&prior, &trace, &costs).unwrap().unwrap();
        assert!(decision.measured_imbalance > 2.0);
        let counts = decision.assignment.patterns_per_worker();
        assert!(
            counts[0] < counts[1],
            "slow worker must shed patterns: {counts:?}"
        );
        assert_eq!(r.decisions(), 1);
        // The budget (max_reschedules = 1) is now exhausted.
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }

    #[test]
    fn mismatched_shapes_are_errors() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(3, 10, 4.0);
        assert!(matches!(
            r.consider(&prior, &trace, &costs).unwrap_err(),
            SchedError::TraceWorkerMismatch { .. }
        ));
        let short = PatternCosts::uniform(7);
        assert!(matches!(
            r.consider(&prior, &skewed_trace(4, 10, 4.0), &short)
                .unwrap_err(),
            SchedError::PatternCountMismatch { .. }
        ));
    }

    #[test]
    fn an_untimed_trace_never_triggers() {
        // A trace with only FLOP data has zero second totals → imbalance is
        // 1.0 by convention → no decision under the seconds unit.
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        for _ in 0..10 {
            let mut reg = RegionRecord::new(OpKind::Newview, 4);
            reg.flops_per_worker = vec![40.0, 10.0, 10.0, 10.0];
            trace.regions.push(reg);
        }
        let mut r = Rescheduler::new(policy());
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }
}
