//! Mid-run rescheduling from live measurements.
//!
//! A schedule built up front — even a cost-aware one — cannot know how fast
//! each worker actually runs: cores get throttled, co-scheduled or NUMA-
//! penalized, and the analytic cost model mis-ranks some patterns. The
//! [`Rescheduler`] closes the loop: it watches the *live* [`WorkTrace`] a
//! timed executor accumulates, and once the measured per-worker imbalance
//! crosses a threshold (and enough regions have been observed to trust the
//! measurement), it produces a fresh [`Assignment`] via the speed-aware LPT
//! strategy. The driver then migrates pattern→worker ownership by rebuilding
//! the executor's worker slices — the [`Reassignable`] capability — and the
//! run continues with bit-identical likelihood semantics (only summation
//! order changes, so log likelihoods agree to ≤ 1e-8).

use crate::assignment::{worker_imbalance, Assignment};
use crate::cost::PatternCosts;
use crate::error::SchedError;
use crate::strategy::{ScheduleStrategy, SpeedAwareLpt};
use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::{TraceUnit, WorkTrace};

/// An execution backend whose pattern→worker ownership can be migrated
/// mid-run.
///
/// Implemented by the timed `ThreadedExecutor` and the virtual
/// `TracingExecutor` in `phylo-parallel`. After [`Reassignable::reassign`]
/// the workers own fresh (empty) CLV buffers, so the caller **must**
/// invalidate the master-side CLV validity cache before the next likelihood
/// evaluation.
pub trait Reassignable {
    /// The assignment the current workers were built from.
    fn assignment(&self) -> &Assignment;

    /// The live trace accumulated since construction or the last
    /// [`Reassignable::take_trace`]/[`Reassignable::reassign`].
    fn live_trace(&self) -> &WorkTrace;

    /// Takes the accumulated trace, leaving an empty one behind.
    fn take_trace(&mut self) -> WorkTrace;

    /// Rebuilds the worker slices under a new assignment and resets the
    /// trace (the old epoch measured the old ownership).
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for
    /// a different dataset.
    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError>;
}

/// When the [`Rescheduler`] acts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReschedulePolicy {
    /// Minimum measured imbalance (max/mean per-worker total, 1.0 = perfect)
    /// before a reschedule is considered worthwhile.
    pub imbalance_threshold: f64,
    /// Minimum number of recorded regions before the measurement is trusted
    /// (and between consecutive decisions, since a reschedule resets the
    /// trace epoch). The mask-aware path also uses it as the width of the
    /// recent-region window it measures over.
    pub min_regions: usize,
    /// Which per-worker measurement drives the decision. Real runs use
    /// [`TraceUnit::Seconds`]; virtual (tracing) runs use
    /// [`TraceUnit::Flops`].
    pub unit: TraceUnit,
    /// Upper bound on the number of reschedules per run (each one pays a
    /// full CLV recomputation).
    pub max_reschedules: usize,
    /// React to the convergence-mask shape *within* a driver round: the
    /// decision is driven by the **live-cost imbalance** of the recent
    /// *masked* regions (not the whole epoch's total-cost imbalance), and a
    /// triggered repack levels every partition individually across the
    /// workers — live partitions first — so the live phase, later mask
    /// shapes and the full mask all come out balanced. Drivers consult a
    /// mask-aware rescheduler between branches, not only between rounds.
    pub mask_aware: bool,
    /// Per-region decay of the mask-aware measurement window: the most
    /// recent masked region weighs `1`, the one before it `mask_decay`, then
    /// `mask_decay²`, … Both the per-worker live-cost totals and the
    /// partition-liveness vote use these weights, so the rescheduler tracks
    /// the *current* convergence-mask shape instead of the trailing-window
    /// union (where one stale region kept a long-dead partition "live" for a
    /// whole window). `1.0` reproduces the legacy equal-weight union.
    pub mask_decay: f64,
}

/// A partition stays in the mask-aware live set while the decayed weight of
/// the window regions whose mask included it is at least this fraction of
/// the window's total decayed weight (see
/// [`WorkTrace::masked_window_decayed_active_partitions`]).
pub const MASK_LIVENESS_CUTOFF: f64 = 0.05;

impl Default for ReschedulePolicy {
    fn default() -> Self {
        Self {
            imbalance_threshold: 1.15,
            min_regions: 32,
            unit: TraceUnit::Seconds,
            max_reschedules: 2,
            mask_aware: false,
            mask_decay: 0.85,
        }
    }
}

/// A positive decision: the new assignment plus the measurement that
/// justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct RescheduleDecision {
    /// The fresh assignment to migrate to.
    pub assignment: Assignment,
    /// Measured per-worker totals (in the policy's unit) that triggered the
    /// decision.
    pub measured: Vec<f64>,
    /// Measured imbalance (max/mean) of those totals.
    pub measured_imbalance: f64,
    /// Estimated per-worker speeds the new assignment packs against.
    pub speeds: Vec<f64>,
}

/// Decides, from a live trace, whether to migrate pattern ownership — and to
/// what.
#[derive(Debug, Clone)]
pub struct Rescheduler {
    policy: ReschedulePolicy,
    decisions: usize,
    telemetry: phylo_telemetry::Telemetry,
}

impl Rescheduler {
    /// A rescheduler with the given policy.
    pub fn new(policy: ReschedulePolicy) -> Self {
        Self {
            policy,
            decisions: 0,
            telemetry: phylo_telemetry::Telemetry::disabled(),
        }
    }

    /// A rescheduler that counts every [`Rescheduler::consider`] /
    /// [`Rescheduler::consider_masked`] call on the given recorder
    /// (`reschedules_considered`); the positive decisions themselves are
    /// recorded by the driver, which knows the optimizer round they fall in.
    pub fn with_telemetry(
        policy: ReschedulePolicy,
        telemetry: &phylo_telemetry::Telemetry,
    ) -> Self {
        Self {
            policy,
            decisions: 0,
            telemetry: telemetry.clone(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ReschedulePolicy {
        &self.policy
    }

    /// Number of positive decisions made so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Considers the live trace of a run under `current`. Returns
    /// `Ok(None)` when the policy says to stay put (too few regions,
    /// imbalance under threshold, decision budget exhausted, or the
    /// re-pack reproduces the current owner map).
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace and `current`
    /// disagree on the worker count,
    /// [`SchedError::PatternCountMismatch`] if `base` covers a different
    /// number of patterns than `current`.
    pub fn consider(
        &mut self,
        current: &Assignment,
        trace: &WorkTrace,
        base: &PatternCosts,
    ) -> Result<Option<RescheduleDecision>, SchedError> {
        self.telemetry.reschedule_considered();
        if self.decisions >= self.policy.max_reschedules {
            return Ok(None);
        }
        if trace.sync_events() < self.policy.min_regions {
            return Ok(None);
        }
        let measured = trace.per_worker_total_in(self.policy.unit);
        let measured_imbalance = worker_imbalance(&measured);
        if measured_imbalance <= self.policy.imbalance_threshold {
            return Ok(None);
        }
        let strategy = SpeedAwareLpt::from_trace(current, trace, self.policy.unit, base)?;
        let assignment = strategy.assign(base, current.worker_count())?;
        if assignment.owner() == current.owner() {
            return Ok(None);
        }
        self.decisions += 1;
        Ok(Some(RescheduleDecision {
            assignment,
            measured,
            measured_imbalance,
            speeds: strategy.speeds().to_vec(),
        }))
    }

    /// The mask-aware counterpart of [`Rescheduler::consider`], driven by
    /// the *live-cost* imbalance: the measurement window is the last
    /// [`ReschedulePolicy::min_regions`] **masked** regions (partial
    /// convergence masks — full-mask regions balance almost any schedule
    /// and would dilute the signal), decay-weighted by recency
    /// ([`ReschedulePolicy::mask_decay`]) so the current mask shape
    /// dominates; the same decayed weights vote on which partitions are
    /// still live (cutoff [`MASK_LIVENESS_CUTOFF`]). When the window's per-worker imbalance
    /// crosses the threshold, every partition is re-levelled individually
    /// across the workers — live partitions first, assuming uniform worker
    /// speeds — which balances the live phase, later mask shapes and the
    /// full mask at once.
    ///
    /// `ranges` gives each partition's global pattern range (the same tiling
    /// [`PartitionAwareLpt`](crate::strategy::PartitionAwareLpt) consumes).
    /// Returns `Ok(None)` when the policy says to stay put, exactly like
    /// [`Rescheduler::consider`].
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace and `current`
    /// disagree on the worker count,
    /// [`SchedError::PatternCountMismatch`] if `base` or `ranges` cover a
    /// different number of patterns than `current`,
    /// [`SchedError::InvalidPartitionRanges`] if the ranges do not tile the
    /// index space.
    pub fn consider_masked(
        &mut self,
        current: &Assignment,
        trace: &WorkTrace,
        base: &PatternCosts,
        ranges: &[std::ops::Range<usize>],
    ) -> Result<Option<RescheduleDecision>, SchedError> {
        self.telemetry.reschedule_considered();
        if trace.workers != current.worker_count() {
            return Err(SchedError::TraceWorkerMismatch {
                trace_workers: trace.workers,
                assignment_workers: current.worker_count(),
            });
        }
        if base.pattern_count() != current.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: current.pattern_count(),
                got: base.pattern_count(),
            });
        }
        crate::strategy::check_partition_ranges(ranges)?;
        let covered = ranges.last().map_or(0, |r| r.end);
        if covered != current.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: current.pattern_count(),
                got: covered,
            });
        }
        if self.decisions >= self.policy.max_reschedules {
            return Ok(None);
        }
        // The live measurement is taken over *masked* regions only: full-
        // mask regions balance almost any schedule and would dilute the
        // phase imbalance the mask-aware policy is after.
        let window = self.policy.min_regions;
        if trace.masked_region_count() < window {
            return Ok(None);
        }
        let decay = self.policy.mask_decay;
        let measured =
            trace.masked_window_decayed_per_worker_total_in(self.policy.unit, window, decay);
        let measured_imbalance = worker_imbalance(&measured);
        if measured_imbalance <= self.policy.imbalance_threshold {
            return Ok(None);
        }
        let active = trace
            .masked_window_decayed_active_partitions(window, decay, MASK_LIVENESS_CUTOFF)
            .filter(|a| a.len() == ranges.len())
            .unwrap_or_else(|| vec![true; ranges.len()]);
        let any_live = ranges
            .iter()
            .enumerate()
            .any(|(p, r)| active[p] && !r.is_empty());
        if !any_live {
            return Ok(None);
        }

        // Re-pack *every* partition with the per-partition levelling of
        // `PartitionAwareLpt` (the shared `level_partition` core), live
        // partitions first. Levelling each partition individually onto the
        // currently least-loaded workers rotates the per-partition surpluses
        // across different workers, so every mask shape — the live window's,
        // later phases', and the full mask — comes out balanced at once.
        // (Moving only the live patterns cannot do that: whenever the full
        // mask is balanced *because* the partitions' skews cancel, any live
        // placement that fixes the live phase must un-balance the totals
        // unless the dead patterns move too. The executor rebuilds every
        // worker slice on migration anyway, so moving everything costs
        // nothing extra.) The pack assumes uniform worker speeds: the masked
        // window mixes different mask shapes, which makes per-worker speed
        // ratios estimated from it unreliable (a worker whose live-union
        // patterns were inactive in most window regions measures little and
        // would be mistaken for a fast core). Worker-intrinsic slowness is
        // the *plain* policy's business ([`Rescheduler::consider`] via
        // `SpeedAwareLpt`).
        let worker_count = current.worker_count();
        let mut owner = current.owner().to_vec();
        let mut loads = vec![0.0f64; worker_count];
        let part_cost =
            |r: &std::ops::Range<usize>| -> f64 { r.clone().map(|g| base.cost(g)).sum() };
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by(|&a, &b| {
            // Live before dead; within each class, heaviest first.
            active[b]
                .cmp(&active[a])
                .then(part_cost(&ranges[b]).total_cmp(&part_cost(&ranges[a])))
                .then(a.cmp(&b))
        });
        for p in order {
            crate::strategy::level_partition(ranges[p].clone(), base, &mut loads, &mut owner);
        }
        if owner == current.owner() {
            return Ok(None);
        }
        let assignment = Assignment::new("mask-aware-lpt", owner, worker_count, base)?;
        self.decisions += 1;
        Ok(Some(RescheduleDecision {
            assignment,
            measured,
            measured_imbalance,
            // The mask-aware pack is speed-oblivious by design (see above).
            speeds: vec![1.0; worker_count],
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Cyclic;
    use phylo_kernel::cost::{OpKind, RegionRecord};

    fn skewed_trace(workers: usize, regions: usize, skew: f64) -> WorkTrace {
        let mut t = WorkTrace::new(workers);
        for _ in 0..regions {
            let mut r = RegionRecord::new(OpKind::Newview, workers);
            r.seconds_per_worker = vec![1.0; workers];
            r.seconds_per_worker[0] = skew;
            t.regions.push(r);
        }
        t
    }

    fn policy() -> ReschedulePolicy {
        ReschedulePolicy {
            imbalance_threshold: 1.2,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        }
    }

    #[test]
    fn too_few_regions_means_no_decision() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 2, 5.0);
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
        assert_eq!(r.decisions(), 0);
    }

    #[test]
    fn balanced_trace_means_no_decision() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 10, 1.0);
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }

    #[test]
    fn skewed_trace_triggers_a_speed_aware_repack() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(4, 10, 4.0);
        let decision = r.consider(&prior, &trace, &costs).unwrap().unwrap();
        assert!(decision.measured_imbalance > 2.0);
        let counts = decision.assignment.patterns_per_worker();
        assert!(
            counts[0] < counts[1],
            "slow worker must shed patterns: {counts:?}"
        );
        assert_eq!(r.decisions(), 1);
        // The budget (max_reschedules = 1) is now exhausted.
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }

    #[test]
    fn mismatched_shapes_are_errors() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut r = Rescheduler::new(policy());
        let trace = skewed_trace(3, 10, 4.0);
        assert!(matches!(
            r.consider(&prior, &trace, &costs).unwrap_err(),
            SchedError::TraceWorkerMismatch { .. }
        ));
        let short = PatternCosts::uniform(7);
        assert!(matches!(
            r.consider(&prior, &skewed_trace(4, 10, 4.0), &short)
                .unwrap_err(),
            SchedError::PatternCountMismatch { .. }
        ));
    }

    /// A trace whose recent window shows all live work of one partition on
    /// worker 0: the early (full-mask, balanced) regions must not dilute the
    /// live measurement.
    fn staggered_trace(workers: usize) -> WorkTrace {
        let mut t = WorkTrace::new(workers);
        for _ in 0..8 {
            let mut r = RegionRecord::new(OpKind::Newview, workers);
            r.seconds_per_worker = vec![1.0; workers];
            r.active_partitions = vec![true, true];
            t.regions.push(r);
        }
        for _ in 0..4 {
            let mut r = RegionRecord::new(OpKind::Derivatives, workers);
            // Only partition 1 is live, and all of its patterns sit on
            // worker 0 under the prior placement.
            r.seconds_per_worker = vec![1.0, 0.0, 0.0, 0.0];
            r.active_partitions = vec![false, true];
            t.regions.push(r);
        }
        t
    }

    #[test]
    fn mask_aware_triggers_on_live_imbalance_invisible_to_totals() {
        let costs = PatternCosts::uniform(40);
        // Partition 1 = patterns 20..40, all owned by worker 0.
        let owner: Vec<usize> = (0..40).map(|g| if g < 20 { g % 4 } else { 0 }).collect();
        let prior = Assignment::new("manual", owner, 4, &costs).unwrap();
        let trace = staggered_trace(4);
        let ranges = [0..20, 20..40];

        // The whole-epoch totals are mildly imbalanced (12s vs 8s = 1.33);
        // the live window is maximally imbalanced (4.0).
        let mut masked = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 2.0,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: true,
            mask_decay: 0.85,
        });
        let decision = masked
            .consider_masked(&prior, &trace, &costs, &ranges)
            .unwrap()
            .expect("live imbalance 4.0 crosses the 2.0 threshold");
        assert!(decision.measured_imbalance > 3.9);
        // The repack spreads partition 1's patterns off worker 0...
        let live_counts: Vec<usize> = (0..4)
            .map(|w| {
                (20..40)
                    .filter(|&g| decision.assignment.worker_of(g) == w)
                    .count()
            })
            .collect();
        assert!(
            live_counts[0] < 20,
            "live patterns must leave worker 0: {live_counts:?}"
        );
        // The repack levels per partition, so each worker's share of each
        // partition stays one contiguous run and the totals stay balanced.
        assert!(decision.assignment.partition_contiguity(&ranges));
        assert!(decision.assignment.imbalance() < 1.2);
        assert_eq!(decision.assignment.strategy(), "mask-aware-lpt");

        // The plain (total-cost) rescheduler with the same threshold sees
        // only the diluted 1.33 and stays put.
        let mut plain = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 2.0,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: false,
            mask_decay: 0.85,
        });
        assert_eq!(plain.consider(&prior, &trace, &costs).unwrap(), None);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn mask_aware_validates_ranges_and_shapes() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let trace = staggered_trace(4);
        let mut r = Rescheduler::new(ReschedulePolicy {
            mask_aware: true,
            ..policy()
        });
        assert!(matches!(
            r.consider_masked(&prior, &trace, &costs, &[5..40])
                .unwrap_err(),
            SchedError::InvalidPartitionRanges { index: 0 }
        ));
        assert!(matches!(
            r.consider_masked(&prior, &trace, &costs, &[0..20, 20..39])
                .unwrap_err(),
            SchedError::PatternCountMismatch { .. }
        ));
        let short_trace = staggered_trace(3);
        assert!(matches!(
            r.consider_masked(&prior, &short_trace, &costs, &[0..20, 20..40])
                .unwrap_err(),
            SchedError::TraceWorkerMismatch { .. }
        ));
    }

    #[test]
    fn mask_aware_respects_budget_and_thresholds() {
        let costs = PatternCosts::uniform(40);
        let owner: Vec<usize> = (0..40).map(|g| if g < 20 { g % 4 } else { 0 }).collect();
        let prior = Assignment::new("manual", owner, 4, &costs).unwrap();
        let ranges = [0..20, 20..40];
        let trace = staggered_trace(4);
        let mut r = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 2.0,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: true,
            mask_decay: 0.85,
        });
        assert!(r
            .consider_masked(&prior, &trace, &costs, &ranges)
            .unwrap()
            .is_some());
        // Budget exhausted.
        assert_eq!(
            r.consider_masked(&prior, &trace, &costs, &ranges).unwrap(),
            None
        );
        // Too few regions.
        let mut fresh = Rescheduler::new(ReschedulePolicy {
            imbalance_threshold: 2.0,
            min_regions: 64,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: true,
            mask_decay: 0.85,
        });
        assert_eq!(
            fresh
                .consider_masked(&prior, &trace, &costs, &ranges)
                .unwrap(),
            None
        );
    }

    /// Two old masked regions hammer worker 0, two recent ones are balanced:
    /// the skew is stale. The equal-weight window (`mask_decay = 1.0`) still
    /// sees imbalance 2.5 and migrates; a strongly decayed window knows the
    /// current shape is fine and stays put.
    #[test]
    fn decay_discounts_stale_skew_the_union_window_acts_on() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let ranges = [0..20, 20..40];
        let mut trace = WorkTrace::new(4);
        for _ in 0..2 {
            let mut r = RegionRecord::new(OpKind::Derivatives, 4);
            r.seconds_per_worker = vec![4.0, 0.0, 0.0, 0.0];
            r.active_partitions = vec![true, false];
            trace.regions.push(r);
        }
        for _ in 0..2 {
            let mut r = RegionRecord::new(OpKind::Derivatives, 4);
            r.seconds_per_worker = vec![1.0, 1.0, 1.0, 1.0];
            r.active_partitions = vec![false, true];
            trace.regions.push(r);
        }
        let base = ReschedulePolicy {
            imbalance_threshold: 2.0,
            min_regions: 4,
            unit: TraceUnit::Seconds,
            max_reschedules: 1,
            mask_aware: true,
            mask_decay: 1.0,
        };
        let mut legacy = Rescheduler::new(base);
        assert!(
            legacy
                .consider_masked(&prior, &trace, &costs, &ranges)
                .unwrap()
                .is_some(),
            "equal weights see the stale 2.5 imbalance"
        );
        let mut decayed = Rescheduler::new(ReschedulePolicy {
            mask_decay: 0.1,
            ..base
        });
        assert_eq!(
            decayed
                .consider_masked(&prior, &trace, &costs, &ranges)
                .unwrap(),
            None,
            "decay discounts the stale skew; the current shape is balanced"
        );
    }

    #[test]
    fn an_untimed_trace_never_triggers() {
        // A trace with only FLOP data has zero second totals → imbalance is
        // 1.0 by convention → no decision under the seconds unit.
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        for _ in 0..10 {
            let mut reg = RegionRecord::new(OpKind::Newview, 4);
            reg.flops_per_worker = vec![40.0, 10.0, 10.0, 10.0];
            trace.regions.push(reg);
        }
        let mut r = Rescheduler::new(policy());
        assert_eq!(r.consider(&prior, &trace, &costs).unwrap(), None);
    }
}
