//! `phylo-sched` — pluggable, cost-aware scheduling of alignment patterns
//! onto workers.
//!
//! The paper's parallelization distributes the `m′` global alignment patterns
//! over `T` worker threads and pays one barrier per parallel region, so the
//! region's wall-clock time is set by the *most loaded* worker. Which patterns
//! land on which worker is therefore the load-balance lever, and this crate
//! turns that decision into a first-class, pluggable subsystem:
//!
//! * [`PatternCosts`] — a per-pattern cost vector. [`PatternCosts::analytic`]
//!   derives it from the kernel's analytic cost model
//!   ([`phylo_kernel::cost`]): a 20-state protein pattern costs ≈25× a DNA
//!   pattern in `newview`, which is exactly why pattern *counts* alone are a
//!   poor balance proxy for mixed DNA/protein inputs.
//! * [`Assignment`] — an explicit pattern→worker map with the per-worker
//!   predicted cost, plus the imbalance metrics
//!   ([`Assignment::imbalance`], [`Assignment::max_cost`],
//!   [`Assignment::mean_cost`]) that `phylo-perfmodel` and `phylo-bench`
//!   consume.
//! * [`ScheduleStrategy`] — the strategy trait, with six implementations:
//!   [`Cyclic`] and [`Block`] (the paper's two schemes, reproduced bit-for-bit
//!   through the new interface), [`WeightedLpt`] (longest-processing-time
//!   greedy bin-packing over the analytic costs), [`PartitionAwareLpt`]
//!   (cost-levelled *and* cache-local: every worker's share of every
//!   partition is one contiguous run — see
//!   [`Assignment::partition_contiguity`]), [`TraceAdaptive`] (rebalances
//!   from a measured [`WorkTrace`](phylo_kernel::cost::WorkTrace) after a
//!   warm-up run) and [`SpeedAwareLpt`] (LPT onto workers of unequal
//!   measured speed).
//! * [`Rescheduler`] — mid-run rescheduling from live measurements, with an
//!   optional *mask-aware* mode ([`ReschedulePolicy::mask_aware`]) that
//!   reacts to the convergence-mask shape *within* a driver round: it
//!   triggers on the live-cost imbalance of the recent partial-mask regions
//!   and re-levels every partition across the workers.
//!
//! The parallel backends in `phylo-parallel` consume an [`Assignment`] when
//! building their per-worker slices; see `phylo_parallel::build_workers`.
//!
//! ```
//! use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
//! use phylo_sched::{Cyclic, PatternCosts, ScheduleStrategy, WeightedLpt};
//!
//! let aln = Alignment::new(vec![
//!     ("t1".into(), "ACGTACGTAC".into()),
//!     ("t2".into(), "ACGAACGAAC".into()),
//! ]).unwrap();
//! let ps = PartitionSet::equal_length(DataType::Dna, 10, 5);
//! let patterns = PartitionedPatterns::compile(&aln, &ps).unwrap();
//! let costs = PatternCosts::analytic(&patterns, &[4, 4]);
//!
//! let cyclic = Cyclic.assign(&costs, 2).unwrap();
//! let lpt = WeightedLpt.assign(&costs, 2).unwrap();
//! assert!(lpt.max_cost() <= cyclic.max_cost() + 1e-9);
//! ```

#![forbid(unsafe_code)]

pub mod assignment;
pub mod cost;
pub mod error;
pub mod reschedule;
pub mod strategy;

pub use assignment::{worker_imbalance, Assignment};
pub use cost::PatternCosts;
pub use error::SchedError;
pub use reschedule::{Reassignable, RescheduleDecision, ReschedulePolicy, Rescheduler};
pub use strategy::{
    Block, Cyclic, PartitionAwareLpt, ScheduleStrategy, SpeedAwareLpt, TraceAdaptive, WeightedLpt,
};
