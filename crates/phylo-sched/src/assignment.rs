//! The explicit pattern→worker assignment a strategy produces.

use crate::cost::PatternCosts;
use crate::error::SchedError;

/// Imbalance of a per-worker cost vector: max over mean, `1.0` for perfect
/// balance (and, by convention, for an all-zero or empty vector). The shared
/// definition behind every predicted and measured imbalance in the workspace.
pub fn worker_imbalance(costs: &[f64]) -> f64 {
    if costs.is_empty() {
        return 1.0;
    }
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    costs.iter().cloned().fold(0.0, f64::max) / mean
}

/// A complete schedule: which worker owns each global pattern, plus the
/// per-worker predicted cost under the cost model the schedule was built with.
///
/// Under the barrier-per-region execution model a region's wall-clock time is
/// `max_w cost_w`, so [`Assignment::imbalance`] (max over mean) is the factor
/// by which the schedule is slower than a perfectly balanced one with the
/// same total work.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    strategy: String,
    worker_count: usize,
    owner: Vec<usize>,
    predicted_cost: Vec<f64>,
}

impl Assignment {
    /// Validates and builds an assignment from an owner map (global pattern →
    /// worker), computing the per-worker predicted cost from `costs`.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoWorkers`] for `worker_count == 0`,
    /// [`SchedError::EmptyWorkload`] for an empty owner map,
    /// [`SchedError::PatternCountMismatch`] if `owner` and `costs` disagree,
    /// [`SchedError::WorkerOutOfRange`] if an owner is `>= worker_count`.
    pub fn new(
        strategy: impl Into<String>,
        owner: Vec<usize>,
        worker_count: usize,
        costs: &PatternCosts,
    ) -> Result<Self, SchedError> {
        if worker_count == 0 {
            return Err(SchedError::NoWorkers);
        }
        if owner.is_empty() {
            return Err(SchedError::EmptyWorkload);
        }
        if owner.len() != costs.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: costs.pattern_count(),
                got: owner.len(),
            });
        }
        let mut predicted_cost = vec![0.0; worker_count];
        for (g, &w) in owner.iter().enumerate() {
            if w >= worker_count {
                return Err(SchedError::WorkerOutOfRange {
                    pattern: g,
                    worker: w,
                    worker_count,
                });
            }
            predicted_cost[w] += costs.cost(g);
        }
        Ok(Self {
            strategy: strategy.into(),
            worker_count,
            owner,
            predicted_cost,
        })
    }

    /// Name of the strategy that produced this assignment (diagnostics).
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Number of workers the patterns are distributed over.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Number of patterns covered.
    pub fn pattern_count(&self) -> usize {
        self.owner.len()
    }

    /// The owner map: `owner()[g]` is the worker that owns global pattern `g`.
    pub fn owner(&self) -> &[usize] {
        &self.owner
    }

    /// Worker owning global pattern `g`.
    #[inline]
    pub fn worker_of(&self, g: usize) -> usize {
        self.owner[g]
    }

    /// Global pattern indices owned by `worker`, ascending.
    pub fn patterns_of(&self, worker: usize) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter_map(|(g, &w)| (w == worker).then_some(g))
            .collect()
    }

    /// Number of patterns each worker owns.
    pub fn patterns_per_worker(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.worker_count];
        for &w in &self.owner {
            counts[w] += 1;
        }
        counts
    }

    /// Predicted cost per worker under the cost model the schedule was built
    /// with.
    pub fn predicted_cost(&self) -> &[f64] {
        &self.predicted_cost
    }

    /// The most loaded worker's predicted cost — the predicted critical path
    /// of one full-width parallel region.
    pub fn max_cost(&self) -> f64 {
        self.predicted_cost.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean predicted cost per worker.
    pub fn mean_cost(&self) -> f64 {
        self.predicted_cost.iter().sum::<f64>() / self.worker_count as f64
    }

    /// Predicted imbalance: max over mean worker cost. `1.0` is perfect
    /// balance; `2.0` means the critical path is twice the average, i.e. half
    /// the machine idles.
    pub fn imbalance(&self) -> f64 {
        worker_imbalance(&self.predicted_cost)
    }

    /// Predicted parallel efficiency: mean over max worker cost, in `(0, 1]`
    /// (the reciprocal of [`Assignment::imbalance`]; same convention as
    /// `RegionRecord::balance` in the kernel's trace records).
    pub fn balance(&self) -> f64 {
        1.0 / self.imbalance()
    }

    /// Number of *maximal runs of consecutive global pattern indices* each
    /// worker owns — the cache-locality metric of a schedule. A worker whose
    /// patterns form one contiguous block scans memory linearly; `k` runs mean
    /// `k` strided jumps per parallel region. `Block` yields one run per
    /// worker, `Cyclic` roughly `patterns / workers` runs, and the
    /// partition-aware strategies at most one run per partition per worker.
    pub fn contiguous_runs_per_worker(&self) -> Vec<usize> {
        let mut runs = vec![0usize; self.worker_count];
        for (g, &w) in self.owner.iter().enumerate() {
            if g == 0 || self.owner[g - 1] != w {
                runs[w] += 1;
            }
        }
        runs
    }

    /// Checks the partition-contiguity invariant: within every given
    /// partition (a range of global pattern indices), each worker's share is
    /// a single contiguous run (possibly empty). This is the invariant
    /// [`PartitionAwareLpt`] guarantees and the property tests verify.
    ///
    /// [`PartitionAwareLpt`]: crate::strategy::PartitionAwareLpt
    ///
    /// # Panics
    ///
    /// Panics if a range reaches outside `0..pattern_count()` — the ranges
    /// must describe the same dataset the assignment was built for.
    pub fn partition_contiguity(&self, partitions: &[std::ops::Range<usize>]) -> bool {
        for range in partitions {
            // A worker may open one run; once its run closes (another worker
            // takes over), seeing it again means a second run.
            let mut closed = vec![false; self.worker_count];
            let mut prev: Option<usize> = None;
            for g in range.clone() {
                let w = self.owner[g];
                if prev != Some(w) {
                    if closed[w] {
                        return false;
                    }
                    if let Some(p) = prev {
                        closed[p] = true;
                    }
                    prev = Some(w);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_inputs() {
        let costs = PatternCosts::uniform(4);
        assert_eq!(
            Assignment::new("x", vec![0, 1, 0, 1], 0, &costs),
            Err(SchedError::NoWorkers)
        );
        assert_eq!(
            Assignment::new("x", vec![], 2, &PatternCosts::uniform(0)),
            Err(SchedError::EmptyWorkload)
        );
        assert_eq!(
            Assignment::new("x", vec![0, 1], 2, &costs),
            Err(SchedError::PatternCountMismatch {
                expected: 4,
                got: 2
            })
        );
        assert_eq!(
            Assignment::new("x", vec![0, 1, 2, 0], 2, &costs),
            Err(SchedError::WorkerOutOfRange {
                pattern: 2,
                worker: 2,
                worker_count: 2
            })
        );
    }

    #[test]
    fn per_worker_costs_and_metrics() {
        let costs = PatternCosts::from_costs(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let a = Assignment::new("manual", vec![0, 0, 1, 1], 2, &costs).unwrap();
        assert_eq!(a.predicted_cost(), &[3.0, 7.0]);
        assert_eq!(a.max_cost(), 7.0);
        assert_eq!(a.mean_cost(), 5.0);
        assert!((a.imbalance() - 1.4).abs() < 1e-12);
        assert!((a.balance() - 1.0 / 1.4).abs() < 1e-12);
        assert_eq!(a.patterns_of(1), vec![2, 3]);
        assert_eq!(a.patterns_per_worker(), vec![2, 2]);
        assert_eq!(a.worker_of(3), 1);
        assert_eq!(a.strategy(), "manual");
    }

    #[test]
    fn idle_workers_are_allowed_and_show_in_imbalance() {
        let costs = PatternCosts::uniform(2);
        let a = Assignment::new("skewed", vec![0, 0], 4, &costs).unwrap();
        assert_eq!(a.patterns_per_worker(), vec![2, 0, 0, 0]);
        assert_eq!(a.imbalance(), 4.0);
    }

    #[test]
    fn contiguous_runs_count_maximal_runs() {
        let costs = PatternCosts::uniform(6);
        // Worker 0 owns {0, 1, 4}, worker 1 owns {2, 3, 5}.
        let a = Assignment::new("x", vec![0, 0, 1, 1, 0, 1], 2, &costs).unwrap();
        assert_eq!(a.contiguous_runs_per_worker(), vec![2, 2]);
        let block = Assignment::new("x", vec![0, 0, 0, 1, 1, 1], 2, &costs).unwrap();
        assert_eq!(block.contiguous_runs_per_worker(), vec![1, 1]);
        let cyclic = Assignment::new("x", vec![0, 1, 0, 1, 0, 1], 2, &costs).unwrap();
        assert_eq!(cyclic.contiguous_runs_per_worker(), vec![3, 3]);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn partition_contiguity_detects_split_runs() {
        let costs = PatternCosts::uniform(6);
        let ranges = [0..3, 3..6];
        // Contiguous within each partition.
        let good = Assignment::new("x", vec![0, 0, 1, 1, 1, 0], 2, &costs).unwrap();
        assert!(good.partition_contiguity(&ranges));
        // Worker 0's share of partition 0 is {0, 2}: split.
        let bad = Assignment::new("x", vec![0, 1, 0, 1, 1, 1], 2, &costs).unwrap();
        assert!(!bad.partition_contiguity(&ranges));
        // Cyclic over one big partition: split for both workers.
        let cyclic = Assignment::new("x", vec![0, 1, 0, 1, 0, 1], 2, &costs).unwrap();
        assert!(!cyclic.partition_contiguity(&[(0..6)]));
        // ...but trivially contiguous when every partition is one pattern.
        assert!(cyclic.partition_contiguity(&[0..1, 1..2, 2..3, 3..4, 4..5, 5..6]));
    }
}
