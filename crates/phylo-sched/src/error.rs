//! Error type for the scheduling subsystem.
//!
//! The pre-subsystem code path panicked on degenerate inputs (a bare
//! `assert!(worker_count > 0)` in `build_workers`); every such condition is
//! now a documented, recoverable error.

/// Why a schedule could not be produced or applied.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A per-pattern cost is NaN, infinite or negative. Such costs would make
    /// the greedy pack order arbitrary (comparisons with NaN are
    /// unordered), so they are rejected at construction.
    InvalidCost {
        /// Global pattern index carrying the bad cost.
        pattern: usize,
        /// The offending value.
        value: f64,
    },
    /// A measured per-worker speed is NaN, infinite or non-positive.
    InvalidSpeed {
        /// Worker index carrying the bad speed.
        worker: usize,
        /// The offending value.
        value: f64,
    },
    /// The partition ranges handed to a partition-aware strategy do not tile
    /// the global pattern index space: they must start at 0, be consecutive
    /// (each range starts where the previous one ended) and ascending.
    InvalidPartitionRanges {
        /// Index of the first offending range.
        index: usize,
    },
    /// A schedule for zero workers was requested.
    NoWorkers,
    /// The workload has no patterns to distribute.
    EmptyWorkload,
    /// An owner map's length does not match the workload's pattern count.
    PatternCountMismatch {
        /// Patterns in the workload.
        expected: usize,
        /// Entries in the owner map.
        got: usize,
    },
    /// An owner map names a worker outside `0..worker_count`.
    WorkerOutOfRange {
        /// Global pattern index with the bad owner.
        pattern: usize,
        /// The out-of-range worker index.
        worker: usize,
        /// Number of workers the assignment was built for.
        worker_count: usize,
    },
    /// An artificial worker skew names a worker outside the executor's
    /// range; a silently unskewed experiment would be worse than an error.
    SkewWorkerOutOfRange {
        /// The configured skew's worker index.
        worker: usize,
        /// Number of workers the executor actually has.
        worker_count: usize,
    },
    /// An adaptive driver ran to completion without the executor recording a
    /// single trace region — the measurement path is not enabled (e.g. a
    /// `ThreadedExecutor` built without `ExecutorOptions { timed: true }`),
    /// so mid-run rescheduling silently could never trigger.
    NoMeasurements,
    /// A measured trace was recorded for a different worker count than the
    /// assignment it is supposed to correct.
    TraceWorkerMismatch {
        /// Workers in the measured trace.
        trace_workers: usize,
        /// Workers in the prior assignment.
        assignment_workers: usize,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidCost { pattern, value } => write!(
                f,
                "pattern {pattern} has invalid cost {value}; costs must be finite and non-negative"
            ),
            Self::InvalidSpeed { worker, value } => write!(
                f,
                "worker {worker} has invalid speed {value}; speeds must be finite and positive"
            ),
            Self::InvalidPartitionRanges { index } => write!(
                f,
                "partition range {index} does not tile the global pattern index space \
                 (ranges must start at 0 and be consecutive)"
            ),
            Self::NoWorkers => write!(f, "at least one worker is required"),
            Self::SkewWorkerOutOfRange {
                worker,
                worker_count,
            } => write!(
                f,
                "worker skew targets worker {worker}, outside 0..{worker_count}"
            ),
            Self::NoMeasurements => write!(
                f,
                "the executor recorded no trace regions; build it with timing enabled \
                 (e.g. ExecutorOptions {{ timed: true }}) to drive adaptive rescheduling"
            ),
            Self::EmptyWorkload => write!(f, "the workload contains no patterns"),
            Self::PatternCountMismatch { expected, got } => {
                write!(f, "owner map covers {got} patterns but the workload has {expected}")
            }
            Self::WorkerOutOfRange { pattern, worker, worker_count } => write!(
                f,
                "pattern {pattern} is assigned to worker {worker}, outside 0..{worker_count}"
            ),
            Self::TraceWorkerMismatch { trace_workers, assignment_workers } => write!(
                f,
                "trace was recorded for {trace_workers} workers but the assignment has {assignment_workers}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_parameters() {
        let text = SchedError::PatternCountMismatch {
            expected: 10,
            got: 7,
        }
        .to_string();
        assert!(text.contains("10") && text.contains('7'), "{text}");
        let text = SchedError::WorkerOutOfRange {
            pattern: 3,
            worker: 9,
            worker_count: 4,
        }
        .to_string();
        assert!(
            text.contains("pattern 3") && text.contains("0..4"),
            "{text}"
        );
        assert!(!SchedError::NoWorkers.to_string().is_empty());
        assert!(!SchedError::EmptyWorkload.to_string().is_empty());
        let text = SchedError::InvalidCost {
            pattern: 5,
            value: f64::NAN,
        }
        .to_string();
        assert!(text.contains("pattern 5") && text.contains("NaN"), "{text}");
        let text = SchedError::InvalidSpeed {
            worker: 2,
            value: -1.0,
        }
        .to_string();
        assert!(text.contains("worker 2") && text.contains("-1"), "{text}");
    }
}
