//! Per-pattern cost vectors.
//!
//! A scheduling strategy only needs one thing from the workload: how expensive
//! each global pattern is relative to the others. [`PatternCosts::analytic`]
//! derives that from the kernel's analytic cost model — `newview` dominates
//! every likelihood workload (it is the only primitive executed once per
//! traversal node rather than once per region), so its per-pattern FLOP count
//! is the natural weight. The absolute scale cancels in every balance metric;
//! only the ratios matter, and those are exactly the paper's argument: a
//! 20-state protein pattern weighs ≈25× a 4-state DNA pattern.

use crate::error::SchedError;
use phylo_data::{CompressedPartition, PartitionedPatterns};
use phylo_kernel::cost::{newview_flops, newview_flops_blocked, newview_flops_tabled};

/// The scheduler's view of a workload: one relative cost per global pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternCosts {
    costs: Vec<f64>,
}

impl PatternCosts {
    /// Analytic costs for a compiled dataset: pattern `g` of a partition with
    /// `s` states and `c` rate categories weighs `newview_flops(s, c)`.
    ///
    /// `categories` gives the number of Γ rate categories per partition (same
    /// order as the dataset's partitions).
    ///
    /// # Panics
    ///
    /// Panics if `categories.len()` differs from the partition count.
    pub fn analytic(patterns: &PartitionedPatterns, categories: &[usize]) -> Self {
        assert_eq!(
            categories.len(),
            patterns.partition_count(),
            "one category count per partition required"
        );
        Self::per_partition(patterns, |pi, part| {
            newview_flops(part.states(), categories[pi])
        })
        .expect("analytic flops are finite and non-negative")
    }

    /// Costs that are uniform within each partition: `per_pattern(pi, part)`
    /// is the weight of every pattern of partition `pi`, concatenated in the
    /// dataset's compile order — the one place that encodes the
    /// "global pattern index = partitions concatenated" invariant every
    /// [`crate::Assignment`] relies on.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidCost`] if a produced weight is NaN, negative or
    /// infinite.
    pub fn per_partition<F>(
        patterns: &PartitionedPatterns,
        per_pattern: F,
    ) -> Result<Self, SchedError>
    where
        F: Fn(usize, &CompressedPartition) -> f64,
    {
        let mut costs = Vec::with_capacity(patterns.total_patterns());
        for (pi, part) in patterns.partitions.iter().enumerate() {
            let value = per_pattern(pi, part);
            if !value.is_finite() || value < 0.0 {
                return Err(SchedError::InvalidCost {
                    pattern: costs.len(),
                    value,
                });
            }
            costs.extend(std::iter::repeat_n(value, part.pattern_count()));
        }
        Ok(Self { costs })
    }

    /// Analytic costs under the **shared-table kernel**
    /// (`phylo_kernel::tables`): tip children are table lookups instead of
    /// inner products, so the per-pattern weight is
    /// `newview_flops_tabled(s, c)` and the protein/DNA ratio drops from
    /// ≈23.8 to 21. Use this when the engine runs with shared tables enabled
    /// (the default) — packing against the per-call ratio would
    /// systematically over-weigh protein patterns.
    ///
    /// # Panics
    ///
    /// Panics if `categories.len()` differs from the partition count.
    pub fn analytic_tabled(patterns: &PartitionedPatterns, categories: &[usize]) -> Self {
        assert_eq!(
            categories.len(),
            patterns.partition_count(),
            "one category count per partition required"
        );
        Self::per_partition(patterns, |pi, part| {
            newview_flops_tabled(part.states(), categories[pi])
        })
        .expect("analytic flops are finite and non-negative")
    }

    /// Analytic costs under the **cache-blocked kernel**
    /// (`phylo_kernel::blocked`, the engine's default dispatch): the packed
    /// inner loops shrink the arithmetic term of both state widths by the
    /// SIMD lane count while the fixed per-(pattern, category) overhead
    /// stays scalar, so the per-pattern weight is
    /// `newview_flops_blocked(s, c)` and the protein/DNA ratio collapses
    /// from the tabled 21 to 6 (`kernel_tables` gates this model against
    /// the measured ratio). Use this when the engine runs shared tables with
    /// the blocked dispatch — packing a blocked run against the tabled ratio
    /// would over-weigh protein partitions by ≈3.5×.
    ///
    /// # Panics
    ///
    /// Panics if `categories.len()` differs from the partition count.
    pub fn analytic_blocked(patterns: &PartitionedPatterns, categories: &[usize]) -> Self {
        assert_eq!(
            categories.len(),
            patterns.partition_count(),
            "one category count per partition required"
        );
        Self::per_partition(patterns, |pi, part| {
            newview_flops_blocked(part.states(), categories[pi])
        })
        .expect("analytic flops are finite and non-negative")
    }

    /// Uniform costs (every pattern weighs 1): what the paper's original
    /// count-based schemes implicitly assume.
    pub fn uniform(pattern_count: usize) -> Self {
        Self {
            costs: vec![1.0; pattern_count],
        }
    }

    /// Explicit per-pattern costs (used by [`TraceAdaptive`] and by tests).
    ///
    /// [`TraceAdaptive`]: crate::strategy::TraceAdaptive
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidCost`] if any cost is NaN, infinite or negative.
    /// (Such costs used to be accepted and then made the greedy pack order
    /// of the LPT strategies effectively arbitrary — comparisons with NaN
    /// are unordered.)
    pub fn from_costs(costs: Vec<f64>) -> Result<Self, SchedError> {
        for (pattern, &value) in costs.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(SchedError::InvalidCost { pattern, value });
            }
        }
        Ok(Self { costs })
    }

    /// Number of patterns in the workload.
    pub fn pattern_count(&self) -> usize {
        self.costs.len()
    }

    /// Cost of global pattern `g`.
    #[inline]
    pub fn cost(&self, g: usize) -> f64 {
        self.costs[g]
    }

    /// All costs, indexed by global pattern.
    pub fn as_slice(&self) -> &[f64] {
        &self.costs
    }

    /// Sum of all pattern costs.
    pub fn total(&self) -> f64 {
        self.costs.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, Partition, PartitionSet, PartitionedPatterns};

    fn mixed_patterns() -> PartitionedPatterns {
        // DNA characters are valid amino-acid codes, so one alignment can
        // carry both partition types.
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGT".into()),
            ("t2".into(), "ACGAACGAACGAACGA".into()),
            ("t3".into(), "ACCTACGAACCTACGA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("dna", DataType::Dna, 0..8),
            Partition::contiguous("prot", DataType::Protein, 8..16),
        ])
        .unwrap();
        PartitionedPatterns::compile(&aln, &ps).unwrap()
    }

    #[test]
    fn analytic_costs_weigh_protein_about_25x_dna() {
        let pp = mixed_patterns();
        let costs = PatternCosts::analytic(&pp, &[4, 4]);
        assert_eq!(costs.pattern_count(), pp.total_patterns());
        let dna = costs.cost(0);
        let protein = costs.cost(pp.global_offset(1));
        let ratio = protein / dna;
        assert!(
            (20.0..30.0).contains(&ratio),
            "protein/DNA ratio {ratio} should be ≈25"
        );
    }

    #[test]
    fn tabled_costs_recalibrate_the_protein_dna_ratio() {
        let pp = mixed_patterns();
        let costs = PatternCosts::analytic_tabled(&pp, &[4, 4]);
        assert_eq!(costs.pattern_count(), pp.total_patterns());
        let dna = costs.cost(0);
        let protein = costs.cost(pp.global_offset(1));
        let ratio = protein / dna;
        // Tip lookups flatten the per-state gap: exactly
        // (2·20+2)/(2·4+2) · 5 = 21 under the tabled model.
        assert!(
            (ratio - 21.0).abs() < 1e-12,
            "tabled protein/DNA ratio {ratio} should be 21"
        );
        // And the tabled weights are strictly below the per-call weights.
        let per_call = PatternCosts::analytic(&pp, &[4, 4]);
        assert!(costs.cost(0) < per_call.cost(0));
        let g = pp.global_offset(1);
        assert!(costs.cost(g) < per_call.cost(g));
    }

    #[test]
    fn analytic_costs_scale_with_categories() {
        let pp = mixed_patterns();
        let four = PatternCosts::analytic(&pp, &[4, 4]);
        let eight = PatternCosts::analytic(&pp, &[8, 4]);
        assert!((eight.cost(0) / four.cost(0) - 2.0).abs() < 1e-12);
        // Protein partition categories unchanged.
        let g = pp.global_offset(1);
        assert_eq!(four.cost(g), eight.cost(g));
    }

    #[test]
    fn uniform_costs_are_flat() {
        let costs = PatternCosts::uniform(5);
        assert_eq!(costs.pattern_count(), 5);
        assert_eq!(costs.total(), 5.0);
        assert!(costs.as_slice().iter().all(|&c| c == 1.0));
    }

    #[test]
    fn from_costs_rejects_nan_negative_and_infinite() {
        assert!(matches!(
            PatternCosts::from_costs(vec![1.0, f64::NAN]),
            Err(SchedError::InvalidCost { pattern: 1, .. })
        ));
        assert!(matches!(
            PatternCosts::from_costs(vec![-0.5]),
            Err(SchedError::InvalidCost {
                pattern: 0,
                value: v
            }) if v == -0.5
        ));
        assert!(matches!(
            PatternCosts::from_costs(vec![f64::INFINITY, 1.0]),
            Err(SchedError::InvalidCost { pattern: 0, .. })
        ));
        // Zero is a legal cost (an all-gap pattern has no work).
        let ok = PatternCosts::from_costs(vec![0.0, 2.0]).unwrap();
        assert_eq!(ok.total(), 2.0);
    }
}
