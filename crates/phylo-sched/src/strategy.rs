//! Scheduling strategies: from the paper's two fixed schemes to cost-aware
//! and measurement-driven assignment.

use crate::assignment::Assignment;
use crate::cost::PatternCosts;
use crate::error::SchedError;
use phylo_kernel::cost::WorkTrace;

/// Produces a pattern→worker [`Assignment`] for a costed workload.
///
/// Implementations must be deterministic: the same costs and worker count
/// always yield the same assignment, so that parallel runs are reproducible
/// and their traces comparable.
pub trait ScheduleStrategy {
    /// Human-readable strategy name (used in reports and diagnostics).
    fn name(&self) -> &str;

    /// Builds the assignment.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoWorkers`] for `worker_count == 0` and
    /// [`SchedError::EmptyWorkload`] for a workload without patterns;
    /// strategies with extra inputs may add their own conditions.
    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError>;
}

fn check_inputs(costs: &PatternCosts, worker_count: usize) -> Result<(), SchedError> {
    if worker_count == 0 {
        return Err(SchedError::NoWorkers);
    }
    if costs.pattern_count() == 0 {
        return Err(SchedError::EmptyWorkload);
    }
    Ok(())
}

/// The paper's scheme: global pattern `g` goes to worker `g mod T`.
///
/// Cost-oblivious, but mixes patterns of all partitions onto every worker,
/// which already balances mixed DNA/protein inputs well when partitions are
/// long relative to the worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cyclic;

impl ScheduleStrategy for Cyclic {
    fn name(&self) -> &str {
        "cyclic"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        let owner: Vec<usize> = (0..costs.pattern_count())
            .map(|g| g % worker_count)
            .collect();
        Assignment::new(self.name(), owner, worker_count, costs)
    }
}

/// The contiguous alternative the paper argues against: the global pattern
/// index space is cut into `T` equal-length blocks.
///
/// Keeps each worker's patterns contiguous (cache-friendly), but a block can
/// land entirely inside one expensive partition — the pathological case for
/// mixed DNA/protein inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Block;

impl ScheduleStrategy for Block {
    fn name(&self) -> &str {
        "block"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        let total = costs.pattern_count();
        let chunk = total.div_ceil(worker_count).max(1);
        let owner: Vec<usize> = (0..total)
            .map(|g| (g / chunk).min(worker_count - 1))
            .collect();
        Assignment::new(self.name(), owner, worker_count, costs)
    }
}

/// Longest-processing-time greedy bin-packing over the per-pattern costs.
///
/// Patterns are placed in order of decreasing cost, each onto the currently
/// least-loaded worker. With the analytic cost model this makes a 20-state
/// protein pattern count ≈25× a DNA pattern, so mixed workloads balance by
/// predicted *work*, not by pattern count. LPT's classical guarantee bounds
/// the makespan within 4/3 of optimal; on phylogenomic inputs (many patterns
/// per worker) it is near-perfect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedLpt;

/// Shared LPT core: deterministic (cost-descending, index-ascending order;
/// ties between workers go to the lowest index).
fn lpt_assign(
    name: &str,
    costs: &PatternCosts,
    worker_count: usize,
) -> Result<Assignment, SchedError> {
    check_inputs(costs, worker_count)?;
    let mut order: Vec<usize> = (0..costs.pattern_count()).collect();
    order.sort_by(|&a, &b| {
        costs
            .cost(b)
            .partial_cmp(&costs.cost(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0f64; worker_count];
    let mut owner = vec![0usize; costs.pattern_count()];
    for g in order {
        let mut best = 0usize;
        for w in 1..worker_count {
            if load[w] < load[best] {
                best = w;
            }
        }
        owner[g] = best;
        load[best] += costs.cost(g);
    }
    Assignment::new(name, owner, worker_count, costs)
}

impl ScheduleStrategy for WeightedLpt {
    fn name(&self) -> &str {
        "weighted-lpt"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        lpt_assign(self.name(), costs, worker_count)
    }
}

/// Measurement-driven rebalancing: corrects the cost model with a measured
/// [`WorkTrace`] from a warm-up run under a prior assignment, then re-packs
/// with LPT.
///
/// The analytic model captures the state-count and category ratios but not
/// platform effects (cache behaviour, SIMD width, scaling-event frequency).
/// After a warm-up run, the per-worker ratio `measured / predicted` is a
/// direct observation of how much the model under- or over-estimates the
/// patterns that worker owns; scaling each pattern's cost by its owner's
/// ratio and re-packing moves work off the workers that measured hot.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAdaptive {
    prior: Assignment,
    measured: Vec<f64>,
}

impl TraceAdaptive {
    /// Builds the strategy from the warm-up run's assignment and its measured
    /// trace.
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace was recorded for a
    /// different worker count than `prior` distributes over.
    pub fn new(prior: Assignment, trace: &WorkTrace) -> Result<Self, SchedError> {
        if trace.workers != prior.worker_count() {
            return Err(SchedError::TraceWorkerMismatch {
                trace_workers: trace.workers,
                assignment_workers: prior.worker_count(),
            });
        }
        Ok(Self {
            prior,
            measured: trace.flops_per_worker_total(),
        })
    }

    /// The prior (warm-up) assignment.
    pub fn prior(&self) -> &Assignment {
        &self.prior
    }

    /// Total measured cost per worker of the warm-up run.
    pub fn measured(&self) -> &[f64] {
        &self.measured
    }

    /// Measured imbalance (max over mean worker cost) of the warm-up run —
    /// the baseline a rebalanced schedule has to beat.
    pub fn measured_imbalance(&self) -> f64 {
        crate::assignment::worker_imbalance(&self.measured)
    }

    /// Per-pattern costs corrected by the measured trace: pattern `g`'s base
    /// cost is scaled by `measured[w] / predicted[w]` of its prior owner `w`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if `base` covers a different
    /// number of patterns than the prior assignment.
    pub fn corrected_costs(&self, base: &PatternCosts) -> Result<PatternCosts, SchedError> {
        if base.pattern_count() != self.prior.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: self.prior.pattern_count(),
                got: base.pattern_count(),
            });
        }
        // Predicted per-worker cost of the prior owner map under `base`.
        let mut predicted = vec![0.0f64; self.prior.worker_count()];
        for (g, &w) in self.prior.owner().iter().enumerate() {
            predicted[w] += base.cost(g);
        }
        let factor: Vec<f64> = self
            .measured
            .iter()
            .zip(&predicted)
            .map(|(&m, &p)| if p > 0.0 && m > 0.0 { m / p } else { 1.0 })
            .collect();
        let corrected: Vec<f64> = base
            .as_slice()
            .iter()
            .enumerate()
            .map(|(g, &c)| c * factor[self.prior.worker_of(g)])
            .collect();
        Ok(PatternCosts::from_costs(corrected))
    }
}

impl ScheduleStrategy for TraceAdaptive {
    fn name(&self) -> &str {
        "trace-adaptive"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        let corrected = self.corrected_costs(costs)?;
        lpt_assign(self.name(), &corrected, worker_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, Partition, PartitionSet, PartitionedPatterns};
    use phylo_kernel::cost::{OpKind, RegionRecord};

    /// A mixed DNA/protein workload: DNA characters double as amino-acid
    /// codes, so one alignment carries both partition types. The protein
    /// partition's patterns weigh ≈25× the DNA ones under the analytic model.
    fn mixed_fixture() -> (PartitionedPatterns, PatternCosts) {
        let make_row = |stride: usize| -> String {
            (0..60)
                .map(|i| ['A', 'C', 'G', 'T'][(i / stride.max(1)) % 4])
                .collect()
        };
        let aln = Alignment::new(vec![
            ("t1".into(), make_row(1)),
            ("t2".into(), make_row(2)),
            ("t3".into(), make_row(3)),
            ("t4".into(), make_row(5)),
        ])
        .unwrap();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("dna0", DataType::Dna, 0..20),
            Partition::contiguous("dna1", DataType::Dna, 20..40),
            Partition::contiguous("prot", DataType::Protein, 40..60),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let costs = PatternCosts::analytic(&pp, &[4, 4, 4]);
        (pp, costs)
    }

    fn all_strategies() -> Vec<Box<dyn ScheduleStrategy>> {
        let (_, costs) = mixed_fixture();
        let prior = Cyclic.assign(&costs, 3).unwrap();
        let mut trace = WorkTrace::new(3);
        let mut region = RegionRecord::new(OpKind::Newview, 3);
        region.flops_per_worker = prior.predicted_cost().to_vec();
        trace.regions.push(region);
        vec![
            Box::new(Cyclic),
            Box::new(Block),
            Box::new(WeightedLpt),
            Box::new(TraceAdaptive::new(prior, &trace).unwrap()),
        ]
    }

    #[test]
    fn every_strategy_covers_each_pattern_exactly_once() {
        let (pp, costs) = mixed_fixture();
        for strategy in all_strategies() {
            for workers in [1usize, 2, 3, 7] {
                let a = strategy.assign(&costs, workers).unwrap();
                assert_eq!(
                    a.pattern_count(),
                    pp.total_patterns(),
                    "{}",
                    strategy.name()
                );
                assert_eq!(a.worker_count(), workers);
                // The owner map covers each pattern exactly once by
                // construction; check the per-worker views partition it.
                let mut seen: Vec<usize> = (0..workers).flat_map(|w| a.patterns_of(w)).collect();
                seen.sort_unstable();
                let expected: Vec<usize> = (0..pp.total_patterns()).collect();
                assert_eq!(
                    seen,
                    expected,
                    "{} with {} workers",
                    strategy.name(),
                    workers
                );
            }
        }
    }

    #[test]
    fn every_strategy_is_deterministic() {
        let (_, costs) = mixed_fixture();
        for strategy in all_strategies() {
            let a = strategy.assign(&costs, 3).unwrap();
            let b = strategy.assign(&costs, 3).unwrap();
            assert_eq!(a, b, "{} must be deterministic", strategy.name());
        }
    }

    #[test]
    fn every_strategy_rejects_degenerate_inputs() {
        let (_, costs) = mixed_fixture();
        for strategy in all_strategies() {
            assert_eq!(
                strategy.assign(&costs, 0).unwrap_err(),
                SchedError::NoWorkers,
                "{}",
                strategy.name()
            );
        }
        // Strategies without a prior reject empty workloads outright.
        let empty = PatternCosts::uniform(0);
        assert_eq!(
            Cyclic.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
        assert_eq!(
            Block.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
        assert_eq!(
            WeightedLpt.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
    }

    #[test]
    fn cyclic_and_block_match_the_papers_owner_maps() {
        let (pp, costs) = mixed_fixture();
        let n = pp.total_patterns();
        for workers in [1usize, 2, 3, 5] {
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            for g in 0..n {
                assert_eq!(cyclic.worker_of(g), g % workers);
            }
            let block = Block.assign(&costs, workers).unwrap();
            let chunk = n.div_ceil(workers).max(1);
            for g in 0..n {
                assert_eq!(block.worker_of(g), (g / chunk).min(workers - 1));
            }
        }
    }

    #[test]
    fn weighted_lpt_beats_count_based_schemes_on_mixed_input() {
        let (_, costs) = mixed_fixture();
        for workers in [2usize, 3, 4] {
            let lpt = WeightedLpt.assign(&costs, workers).unwrap();
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            assert!(
                lpt.max_cost() <= cyclic.max_cost() + 1e-9,
                "{workers} workers: LPT max {} vs cyclic max {}",
                lpt.max_cost(),
                cyclic.max_cost()
            );
            assert!(
                lpt.max_cost() < block.max_cost(),
                "{workers} workers: LPT max {} vs block max {}",
                lpt.max_cost(),
                block.max_cost()
            );
        }
    }

    #[test]
    fn lpt_is_near_perfect_on_uniform_costs() {
        let costs = PatternCosts::uniform(100);
        let a = WeightedLpt.assign(&costs, 8).unwrap();
        // 100 uniform patterns over 8 workers: 12 or 13 each.
        let counts = a.patterns_per_worker();
        assert!(counts.iter().all(|&c| c == 12 || c == 13), "{counts:?}");
    }

    #[test]
    fn trace_adaptive_strictly_reduces_measured_imbalance() {
        // Uniform analytic costs, but the measured trace says worker 0 is 4×
        // slower than predicted (e.g. its patterns trigger scaling events the
        // analytic model cannot see).
        let costs = PatternCosts::uniform(64);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        let mut region = RegionRecord::new(OpKind::Newview, 4);
        region.flops_per_worker = vec![64.0, 16.0, 16.0, 16.0];
        trace.regions.push(region);

        let adaptive = TraceAdaptive::new(prior, &trace).unwrap();
        let before = adaptive.measured_imbalance();
        let rebalanced = adaptive.assign(&costs, 4).unwrap();
        // The rebalanced schedule is evaluated under the corrected (measured)
        // cost model, which is the cost the next run will actually see.
        let after = rebalanced.imbalance();
        assert!(
            after < before,
            "rebalancing must strictly reduce measured imbalance: {after} vs {before}"
        );
        assert!(
            after < 1.3,
            "skew of 4x over 4 workers should pack well, got {after}"
        );
    }

    #[test]
    fn trace_adaptive_validates_its_inputs() {
        let costs = PatternCosts::uniform(8);
        let prior = Cyclic.assign(&costs, 2).unwrap();
        let trace = WorkTrace::new(3);
        assert_eq!(
            TraceAdaptive::new(prior.clone(), &trace).unwrap_err(),
            SchedError::TraceWorkerMismatch {
                trace_workers: 3,
                assignment_workers: 2
            }
        );
        let adaptive = TraceAdaptive::new(prior, &WorkTrace::new(2)).unwrap();
        assert_eq!(
            adaptive.assign(&PatternCosts::uniform(9), 2).unwrap_err(),
            SchedError::PatternCountMismatch {
                expected: 8,
                got: 9
            }
        );
    }

    #[test]
    fn trace_adaptive_with_faithful_trace_matches_lpt() {
        // If the measurement confirms the analytic model exactly, the
        // correction is a no-op and TraceAdaptive degenerates to LPT.
        let (_, costs) = mixed_fixture();
        let prior = Cyclic.assign(&costs, 3).unwrap();
        let mut trace = WorkTrace::new(3);
        let mut region = RegionRecord::new(OpKind::Newview, 3);
        region.flops_per_worker = prior.predicted_cost().to_vec();
        trace.regions.push(region);
        let adaptive = TraceAdaptive::new(prior, &trace).unwrap();
        let a = adaptive.assign(&costs, 3).unwrap();
        let lpt = WeightedLpt.assign(&costs, 3).unwrap();
        assert_eq!(a.owner(), lpt.owner());
    }
}
