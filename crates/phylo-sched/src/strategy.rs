//! Scheduling strategies: from the paper's two fixed schemes to cost-aware
//! and measurement-driven assignment.

use crate::assignment::Assignment;
use crate::cost::PatternCosts;
use crate::error::SchedError;
use phylo_kernel::cost::{TraceUnit, WorkTrace};

/// Produces a pattern→worker [`Assignment`] for a costed workload.
///
/// Implementations must be deterministic: the same costs and worker count
/// always yield the same assignment, so that parallel runs are reproducible
/// and their traces comparable.
pub trait ScheduleStrategy {
    /// Human-readable strategy name (used in reports and diagnostics).
    fn name(&self) -> &str;

    /// Builds the assignment.
    ///
    /// # Errors
    ///
    /// [`SchedError::NoWorkers`] for `worker_count == 0` and
    /// [`SchedError::EmptyWorkload`] for a workload without patterns;
    /// strategies with extra inputs may add their own conditions.
    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError>;
}

/// Boxed strategies schedule like their contents, so builder-style APIs can
/// accept either a concrete strategy or a `Box<dyn ScheduleStrategy>` chosen
/// at run time.
impl ScheduleStrategy for Box<dyn ScheduleStrategy> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        self.as_ref().assign(costs, worker_count)
    }
}

fn check_inputs(costs: &PatternCosts, worker_count: usize) -> Result<(), SchedError> {
    if worker_count == 0 {
        return Err(SchedError::NoWorkers);
    }
    if costs.pattern_count() == 0 {
        return Err(SchedError::EmptyWorkload);
    }
    Ok(())
}

/// The paper's scheme: global pattern `g` goes to worker `g mod T`.
///
/// Cost-oblivious, but mixes patterns of all partitions onto every worker,
/// which already balances mixed DNA/protein inputs well when partitions are
/// long relative to the worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cyclic;

impl ScheduleStrategy for Cyclic {
    fn name(&self) -> &str {
        "cyclic"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        let owner: Vec<usize> = (0..costs.pattern_count())
            .map(|g| g % worker_count)
            .collect();
        Assignment::new(self.name(), owner, worker_count, costs)
    }
}

/// The contiguous alternative the paper argues against: the global pattern
/// index space is cut into `T` equal-length blocks.
///
/// Keeps each worker's patterns contiguous (cache-friendly), but a block can
/// land entirely inside one expensive partition — the pathological case for
/// mixed DNA/protein inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Block;

impl ScheduleStrategy for Block {
    fn name(&self) -> &str {
        "block"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        let total = costs.pattern_count();
        let chunk = total.div_ceil(worker_count).max(1);
        let owner: Vec<usize> = (0..total)
            .map(|g| (g / chunk).min(worker_count - 1))
            .collect();
        Assignment::new(self.name(), owner, worker_count, costs)
    }
}

/// Longest-processing-time greedy bin-packing over the per-pattern costs.
///
/// Patterns are placed in order of decreasing cost, each onto the currently
/// least-loaded worker. With the analytic cost model this makes a 20-state
/// protein pattern count ≈25× a DNA pattern, so mixed workloads balance by
/// predicted *work*, not by pattern count. LPT's classical guarantee bounds
/// the makespan within 4/3 of optimal; on phylogenomic inputs (many patterns
/// per worker) it is near-perfect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedLpt;

/// Shared LPT core over workers with (possibly unequal) speeds:
/// deterministic (cost-descending, index-ascending order; ties between
/// workers go to the lowest index). Each pattern is placed on the worker
/// whose *completion time* `(load + cost) / speed` is smallest; with
/// uniform speeds this is exactly classical least-loaded LPT (the constant
/// `cost / speed` term cancels in the argmin).
///
/// The caller has already run [`check_inputs`] and guarantees
/// `speeds.len() == worker_count` with finite positive entries.
fn lpt_pack(name: &str, costs: &PatternCosts, speeds: &[f64]) -> Result<Assignment, SchedError> {
    let worker_count = speeds.len();
    let mut order: Vec<usize> = (0..costs.pattern_count()).collect();
    // Costs are validated finite at construction, so `total_cmp` is a plain
    // numeric descending order here (no NaN caveats).
    order.sort_by(|&a, &b| costs.cost(b).total_cmp(&costs.cost(a)).then(a.cmp(&b)));
    let mut time = vec![0.0f64; worker_count];
    let mut owner = vec![0usize; costs.pattern_count()];
    for g in order {
        let mut best = 0usize;
        let mut best_finish = time[0] + costs.cost(g) / speeds[0];
        for (w, &t) in time.iter().enumerate().skip(1) {
            let finish = t + costs.cost(g) / speeds[w];
            if finish < best_finish {
                best = w;
                best_finish = finish;
            }
        }
        owner[g] = best;
        time[best] = best_finish;
    }
    Assignment::new(name, owner, worker_count, costs)
}

/// Classical LPT: [`lpt_pack`] with uniform speeds.
fn lpt_assign(
    name: &str,
    costs: &PatternCosts,
    worker_count: usize,
) -> Result<Assignment, SchedError> {
    check_inputs(costs, worker_count)?;
    lpt_pack(name, costs, &vec![1.0; worker_count])
}

impl ScheduleStrategy for WeightedLpt {
    fn name(&self) -> &str {
        "weighted-lpt"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        lpt_assign(self.name(), costs, worker_count)
    }
}

/// Measurement-driven rebalancing: corrects the cost model with a measured
/// [`WorkTrace`] from a warm-up run under a prior assignment, then re-packs
/// with LPT.
///
/// The analytic model captures the state-count and category ratios but not
/// platform effects (cache behaviour, SIMD width, scaling-event frequency).
/// After a warm-up run, the per-worker ratio `measured / predicted` is a
/// direct observation of how much the model under- or over-estimates the
/// patterns that worker owns; scaling each pattern's cost by its owner's
/// ratio and re-packing moves work off the workers that measured hot.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAdaptive {
    prior: Assignment,
    measured: Vec<f64>,
}

impl TraceAdaptive {
    /// Builds the strategy from the warm-up run's assignment and its measured
    /// trace, reading the trace's analytic FLOP counts (the virtual-executor
    /// measurement path).
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace was recorded for a
    /// different worker count than `prior` distributes over.
    pub fn new(prior: Assignment, trace: &WorkTrace) -> Result<Self, SchedError> {
        Self::with_unit(prior, trace, TraceUnit::Flops)
    }

    /// Builds the strategy from a trace in an explicit unit.
    /// [`TraceUnit::Seconds`] is the real measurement path: per-worker
    /// wall-clock totals recorded by a timed `ThreadedExecutor`.
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace was recorded for a
    /// different worker count than `prior` distributes over.
    pub fn with_unit(
        prior: Assignment,
        trace: &WorkTrace,
        unit: TraceUnit,
    ) -> Result<Self, SchedError> {
        if trace.workers != prior.worker_count() {
            return Err(SchedError::TraceWorkerMismatch {
                trace_workers: trace.workers,
                assignment_workers: prior.worker_count(),
            });
        }
        Ok(Self {
            prior,
            measured: trace.per_worker_total_in(unit),
        })
    }

    /// The prior (warm-up) assignment.
    pub fn prior(&self) -> &Assignment {
        &self.prior
    }

    /// Total measured cost per worker of the warm-up run.
    pub fn measured(&self) -> &[f64] {
        &self.measured
    }

    /// Measured imbalance (max over mean worker cost) of the warm-up run —
    /// the baseline a rebalanced schedule has to beat.
    pub fn measured_imbalance(&self) -> f64 {
        crate::assignment::worker_imbalance(&self.measured)
    }

    /// Per-pattern costs corrected by the measured trace: pattern `g`'s base
    /// cost is scaled by `measured[w] / predicted[w]` of its prior owner `w`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if `base` covers a different
    /// number of patterns than the prior assignment.
    pub fn corrected_costs(&self, base: &PatternCosts) -> Result<PatternCosts, SchedError> {
        if base.pattern_count() != self.prior.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: self.prior.pattern_count(),
                got: base.pattern_count(),
            });
        }
        // Predicted per-worker cost of the prior owner map under `base`.
        let mut predicted = vec![0.0f64; self.prior.worker_count()];
        for (g, &w) in self.prior.owner().iter().enumerate() {
            predicted[w] += base.cost(g);
        }
        let factor: Vec<f64> = self
            .measured
            .iter()
            .zip(&predicted)
            .map(|(&m, &p)| if p > 0.0 && m > 0.0 { m / p } else { 1.0 })
            .collect();
        let corrected: Vec<f64> = base
            .as_slice()
            .iter()
            .enumerate()
            .map(|(g, &c)| c * factor[self.prior.worker_of(g)])
            .collect();
        PatternCosts::from_costs(corrected)
    }
}

impl ScheduleStrategy for TraceAdaptive {
    fn name(&self) -> &str {
        "trace-adaptive"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        let corrected = self.corrected_costs(costs)?;
        lpt_assign(self.name(), &corrected, worker_count)
    }
}

/// LPT onto workers of *unequal measured speed* (the classical "related
/// machines" makespan heuristic).
///
/// [`TraceAdaptive`] attributes a measured slowdown to the *patterns* a
/// worker owns — correct when the slowdown travels with the data (scaling
/// events, cache-hostile columns). A *slow worker* (an oversubscribed or
/// throttled core) is the opposite case: its patterns are cheap anywhere
/// else, so inflating their cost and re-packing mis-places them. This
/// strategy instead estimates a per-worker speed from the trace
/// (`predicted work / measured time`) and packs each pattern, in
/// cost-descending order, onto the worker whose *completion time*
/// `(load + cost) / speed` is smallest. With equal speeds it degenerates to
/// plain [`WeightedLpt`]. This is what the mid-run [`Rescheduler`] uses.
///
/// [`Rescheduler`]: crate::reschedule::Rescheduler
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedAwareLpt {
    speeds: Vec<f64>,
}

impl SpeedAwareLpt {
    /// Builds the strategy from explicit per-worker speeds (work per second;
    /// only ratios matter).
    ///
    /// # Errors
    ///
    /// [`SchedError::NoWorkers`] for an empty speed vector and
    /// [`SchedError::InvalidSpeed`] for a NaN, infinite or non-positive
    /// speed.
    pub fn from_speeds(speeds: Vec<f64>) -> Result<Self, SchedError> {
        if speeds.is_empty() {
            return Err(SchedError::NoWorkers);
        }
        for (worker, &value) in speeds.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(SchedError::InvalidSpeed { worker, value });
            }
        }
        Ok(Self { speeds })
    }

    /// Estimates per-worker speeds from a measured trace: worker `w`'s speed
    /// is `predicted_w / measured_w`, where `predicted_w` is the base cost of
    /// the patterns `prior` gave it and `measured_w` its per-worker total in
    /// `unit`. Workers without a measurement (idle, or a zero-cost share)
    /// are assumed to run at the mean speed of the measured ones.
    ///
    /// # Errors
    ///
    /// [`SchedError::TraceWorkerMismatch`] if the trace and `prior` disagree
    /// on the worker count, [`SchedError::PatternCountMismatch`] if `base`
    /// covers a different number of patterns than `prior`.
    pub fn from_trace(
        prior: &Assignment,
        trace: &WorkTrace,
        unit: TraceUnit,
        base: &PatternCosts,
    ) -> Result<Self, SchedError> {
        if trace.workers != prior.worker_count() {
            return Err(SchedError::TraceWorkerMismatch {
                trace_workers: trace.workers,
                assignment_workers: prior.worker_count(),
            });
        }
        if base.pattern_count() != prior.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: prior.pattern_count(),
                got: base.pattern_count(),
            });
        }
        let mut predicted = vec![0.0f64; prior.worker_count()];
        for (g, &w) in prior.owner().iter().enumerate() {
            predicted[w] += base.cost(g);
        }
        let measured = trace.per_worker_total_in(unit);
        let observed: Vec<Option<f64>> = predicted
            .iter()
            .zip(&measured)
            .map(|(&p, &m)| (p > 0.0 && m > 0.0).then(|| p / m))
            .collect();
        let known: Vec<f64> = observed.iter().filter_map(|s| *s).collect();
        let fallback = if known.is_empty() {
            1.0
        } else {
            known.iter().sum::<f64>() / known.len() as f64
        };
        Self::from_speeds(
            observed
                .into_iter()
                .map(|s| s.unwrap_or(fallback))
                .collect(),
        )
    }

    /// The per-worker speeds the strategy packs against.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }
}

impl ScheduleStrategy for SpeedAwareLpt {
    fn name(&self) -> &str {
        "speed-lpt"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        if worker_count != self.speeds.len() {
            return Err(SchedError::TraceWorkerMismatch {
                trace_workers: self.speeds.len(),
                assignment_workers: worker_count,
            });
        }
        lpt_pack(self.name(), costs, &self.speeds)
    }
}

/// Validates that partition ranges tile the global index space: start at 0,
/// consecutive, ascending. Shared by [`PartitionAwareLpt`] and the mask-aware
/// rescheduler.
pub(crate) fn check_partition_ranges(ranges: &[std::ops::Range<usize>]) -> Result<(), SchedError> {
    let mut expected = 0usize;
    for (index, range) in ranges.iter().enumerate() {
        if range.start != expected || range.end < range.start {
            return Err(SchedError::InvalidPartitionRanges { index });
        }
        expected = range.end;
    }
    Ok(())
}

/// Cost-balancing LPT that preserves *partition locality*: every worker's
/// share of every partition is a single contiguous pattern range.
///
/// [`WeightedLpt`] balances predicted cost but scatters each worker's
/// patterns across the global index space (its pack order is cost-descending,
/// so neighbouring patterns usually land on different workers), which costs
/// cache locality: a worker's per-region scan strides through memory. The
/// paper's `Block` scheme has perfect locality (one run per worker) but
/// ignores cost — a block can land entirely inside an expensive partition.
/// This strategy takes the middle road the ROADMAP asks for: partitions are
/// processed in descending total-cost order, and each partition is cut into
/// at most `T` contiguous chunks that are levelled onto the currently
/// least-loaded workers. The result:
///
/// * each worker's share of each partition is one contiguous run (verified by
///   [`Assignment::partition_contiguity`], counted by
///   [`Assignment::contiguous_runs_per_worker`]),
/// * the maximum predicted per-worker cost never exceeds `Block`'s and is
///   close to [`WeightedLpt`]'s (exactly equal when per-pattern costs are
///   uniform within partitions, the analytic-model case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionAwareLpt {
    ranges: Vec<std::ops::Range<usize>>,
}

impl PartitionAwareLpt {
    /// Builds the strategy from explicit partition ranges over the global
    /// pattern index space.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidPartitionRanges`] if the ranges do not tile the
    /// index space (start at 0, consecutive, ascending).
    pub fn new(ranges: Vec<std::ops::Range<usize>>) -> Result<Self, SchedError> {
        check_partition_ranges(&ranges)?;
        Ok(Self { ranges })
    }

    /// The partition ranges the strategy preserves locality for.
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }
}

/// The per-partition levelling core shared by [`PartitionAwareLpt`] and the
/// mask-aware rescheduler's repack: cuts `range` into at most one contiguous
/// chunk per worker, filling the currently least-loaded workers up to the
/// fair level (overshooting by at most half the next pattern's cost — round
/// to nearest) and giving the last worker whatever is left. Updates `loads`
/// and writes the owners into `owner`.
pub(crate) fn level_partition(
    range: std::ops::Range<usize>,
    costs: &PatternCosts,
    loads: &mut [f64],
    owner: &mut [usize],
) {
    let worker_count = loads.len();
    let mut remaining: f64 = costs.as_slice()[range.clone()].iter().sum();
    // Workers in ascending current-load order (ties by index): the
    // least-loaded worker takes the partition's first chunk.
    let mut by_load: Vec<usize> = (0..worker_count).collect();
    by_load.sort_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)));
    let mut cursor = range.start;
    for (k, &w) in by_load.iter().enumerate() {
        if cursor >= range.end {
            break;
        }
        if k + 1 == worker_count {
            // The last worker takes whatever is left.
            for (g, o) in owner.iter_mut().enumerate().take(range.end).skip(cursor) {
                *o = w;
                loads[w] += costs.cost(g);
            }
            break;
        }
        // Fair final level among the workers not yet filled for this
        // partition; fill `w` up to it.
        let pool: f64 = by_load[k..].iter().map(|&x| loads[x]).sum::<f64>() + remaining;
        let level = pool / (worker_count - k) as f64;
        while cursor < range.end {
            let c = costs.cost(cursor);
            if loads[w] + c <= level + c / 2.0 {
                owner[cursor] = w;
                loads[w] += c;
                remaining -= c;
                cursor += 1;
            } else {
                break;
            }
        }
    }
}

impl ScheduleStrategy for PartitionAwareLpt {
    fn name(&self) -> &str {
        "partition-lpt"
    }

    fn assign(&self, costs: &PatternCosts, worker_count: usize) -> Result<Assignment, SchedError> {
        check_inputs(costs, worker_count)?;
        let covered = self.ranges.last().map_or(0, |r| r.end);
        if covered != costs.pattern_count() {
            return Err(SchedError::PatternCountMismatch {
                expected: costs.pattern_count(),
                got: covered,
            });
        }
        let part_total =
            |r: &std::ops::Range<usize>| -> f64 { costs.as_slice()[r.clone()].iter().sum() };
        // LPT flavour: place the heaviest partitions first so later, lighter
        // partitions can level out whatever imbalance their chunking left.
        let mut order: Vec<usize> = (0..self.ranges.len()).collect();
        order.sort_by(|&a, &b| {
            part_total(&self.ranges[b])
                .total_cmp(&part_total(&self.ranges[a]))
                .then(a.cmp(&b))
        });

        let mut loads = vec![0.0f64; worker_count];
        let mut owner = vec![0usize; costs.pattern_count()];
        for p in order {
            level_partition(self.ranges[p].clone(), costs, &mut loads, &mut owner);
        }
        Assignment::new(self.name(), owner, worker_count, costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, Partition, PartitionSet, PartitionedPatterns};
    use phylo_kernel::cost::{OpKind, RegionRecord};

    /// A mixed DNA/protein workload: DNA characters double as amino-acid
    /// codes, so one alignment carries both partition types. The protein
    /// partition's patterns weigh ≈25× the DNA ones under the analytic model.
    fn mixed_fixture() -> (PartitionedPatterns, PatternCosts) {
        let make_row = |stride: usize| -> String {
            (0..60)
                .map(|i| ['A', 'C', 'G', 'T'][(i / stride.max(1)) % 4])
                .collect()
        };
        let aln = Alignment::new(vec![
            ("t1".into(), make_row(1)),
            ("t2".into(), make_row(2)),
            ("t3".into(), make_row(3)),
            ("t4".into(), make_row(5)),
        ])
        .unwrap();
        let ps = PartitionSet::new(vec![
            Partition::contiguous("dna0", DataType::Dna, 0..20),
            Partition::contiguous("dna1", DataType::Dna, 20..40),
            Partition::contiguous("prot", DataType::Protein, 40..60),
        ])
        .unwrap();
        let pp = PartitionedPatterns::compile(&aln, &ps).unwrap();
        let costs = PatternCosts::analytic(&pp, &[4, 4, 4]);
        (pp, costs)
    }

    fn fixture_ranges(pp: &PartitionedPatterns) -> Vec<std::ops::Range<usize>> {
        (0..pp.partition_count())
            .map(|p| pp.global_range(p))
            .collect()
    }

    fn all_strategies() -> Vec<Box<dyn ScheduleStrategy>> {
        let (pp, costs) = mixed_fixture();
        let prior = Cyclic.assign(&costs, 3).unwrap();
        let mut trace = WorkTrace::new(3);
        let mut region = RegionRecord::new(OpKind::Newview, 3);
        region.flops_per_worker = prior.predicted_cost().to_vec();
        trace.regions.push(region);
        vec![
            Box::new(Cyclic),
            Box::new(Block),
            Box::new(WeightedLpt),
            Box::new(TraceAdaptive::new(prior, &trace).unwrap()),
            Box::new(PartitionAwareLpt::new(fixture_ranges(&pp)).unwrap()),
        ]
    }

    #[test]
    fn every_strategy_covers_each_pattern_exactly_once() {
        let (pp, costs) = mixed_fixture();
        for strategy in all_strategies() {
            for workers in [1usize, 2, 3, 7] {
                let a = strategy.assign(&costs, workers).unwrap();
                assert_eq!(
                    a.pattern_count(),
                    pp.total_patterns(),
                    "{}",
                    strategy.name()
                );
                assert_eq!(a.worker_count(), workers);
                // The owner map covers each pattern exactly once by
                // construction; check the per-worker views partition it.
                let mut seen: Vec<usize> = (0..workers).flat_map(|w| a.patterns_of(w)).collect();
                seen.sort_unstable();
                let expected: Vec<usize> = (0..pp.total_patterns()).collect();
                assert_eq!(
                    seen,
                    expected,
                    "{} with {} workers",
                    strategy.name(),
                    workers
                );
            }
        }
    }

    #[test]
    fn every_strategy_is_deterministic() {
        let (_, costs) = mixed_fixture();
        for strategy in all_strategies() {
            let a = strategy.assign(&costs, 3).unwrap();
            let b = strategy.assign(&costs, 3).unwrap();
            assert_eq!(a, b, "{} must be deterministic", strategy.name());
        }
    }

    #[test]
    fn every_strategy_rejects_degenerate_inputs() {
        let (_, costs) = mixed_fixture();
        for strategy in all_strategies() {
            assert_eq!(
                strategy.assign(&costs, 0).unwrap_err(),
                SchedError::NoWorkers,
                "{}",
                strategy.name()
            );
        }
        // Strategies without a prior reject empty workloads outright.
        let empty = PatternCosts::uniform(0);
        assert_eq!(
            Cyclic.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
        assert_eq!(
            Block.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
        assert_eq!(
            WeightedLpt.assign(&empty, 2).unwrap_err(),
            SchedError::EmptyWorkload
        );
    }

    #[test]
    fn cyclic_and_block_match_the_papers_owner_maps() {
        let (pp, costs) = mixed_fixture();
        let n = pp.total_patterns();
        for workers in [1usize, 2, 3, 5] {
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            for g in 0..n {
                assert_eq!(cyclic.worker_of(g), g % workers);
            }
            let block = Block.assign(&costs, workers).unwrap();
            let chunk = n.div_ceil(workers).max(1);
            for g in 0..n {
                assert_eq!(block.worker_of(g), (g / chunk).min(workers - 1));
            }
        }
    }

    #[test]
    fn weighted_lpt_beats_count_based_schemes_on_mixed_input() {
        let (_, costs) = mixed_fixture();
        for workers in [2usize, 3, 4] {
            let lpt = WeightedLpt.assign(&costs, workers).unwrap();
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            assert!(
                lpt.max_cost() <= cyclic.max_cost() + 1e-9,
                "{workers} workers: LPT max {} vs cyclic max {}",
                lpt.max_cost(),
                cyclic.max_cost()
            );
            assert!(
                lpt.max_cost() < block.max_cost(),
                "{workers} workers: LPT max {} vs block max {}",
                lpt.max_cost(),
                block.max_cost()
            );
        }
    }

    #[test]
    fn lpt_is_near_perfect_on_uniform_costs() {
        let costs = PatternCosts::uniform(100);
        let a = WeightedLpt.assign(&costs, 8).unwrap();
        // 100 uniform patterns over 8 workers: 12 or 13 each.
        let counts = a.patterns_per_worker();
        assert!(counts.iter().all(|&c| c == 12 || c == 13), "{counts:?}");
    }

    #[test]
    fn trace_adaptive_strictly_reduces_measured_imbalance() {
        // Uniform analytic costs, but the measured trace says worker 0 is 4×
        // slower than predicted (e.g. its patterns trigger scaling events the
        // analytic model cannot see).
        let costs = PatternCosts::uniform(64);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        let mut region = RegionRecord::new(OpKind::Newview, 4);
        region.flops_per_worker = vec![64.0, 16.0, 16.0, 16.0];
        trace.regions.push(region);

        let adaptive = TraceAdaptive::new(prior, &trace).unwrap();
        let before = adaptive.measured_imbalance();
        let rebalanced = adaptive.assign(&costs, 4).unwrap();
        // The rebalanced schedule is evaluated under the corrected (measured)
        // cost model, which is the cost the next run will actually see.
        let after = rebalanced.imbalance();
        assert!(
            after < before,
            "rebalancing must strictly reduce measured imbalance: {after} vs {before}"
        );
        assert!(
            after < 1.3,
            "skew of 4x over 4 workers should pack well, got {after}"
        );
    }

    #[test]
    fn trace_adaptive_validates_its_inputs() {
        let costs = PatternCosts::uniform(8);
        let prior = Cyclic.assign(&costs, 2).unwrap();
        let trace = WorkTrace::new(3);
        assert_eq!(
            TraceAdaptive::new(prior.clone(), &trace).unwrap_err(),
            SchedError::TraceWorkerMismatch {
                trace_workers: 3,
                assignment_workers: 2
            }
        );
        let adaptive = TraceAdaptive::new(prior, &WorkTrace::new(2)).unwrap();
        assert_eq!(
            adaptive.assign(&PatternCosts::uniform(9), 2).unwrap_err(),
            SchedError::PatternCountMismatch {
                expected: 8,
                got: 9
            }
        );
    }

    #[test]
    fn trace_adaptive_reads_wall_clock_seconds() {
        // A trace whose FLOP channel is empty but whose seconds channel says
        // worker 0 took 3× as long: the seconds-fed strategy must rebalance,
        // while the flops-fed one sees nothing to correct.
        let costs = PatternCosts::uniform(32);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        let mut region = RegionRecord::new(OpKind::Newview, 4);
        region.seconds_per_worker = vec![3.0, 1.0, 1.0, 1.0];
        trace.regions.push(region);

        let seconds = TraceAdaptive::with_unit(prior.clone(), &trace, TraceUnit::Seconds).unwrap();
        assert!(seconds.measured_imbalance() > 1.5);
        let rebalanced = seconds.assign(&costs, 4).unwrap();
        assert!(rebalanced.imbalance() < seconds.measured_imbalance());

        let flops = TraceAdaptive::new(prior, &trace).unwrap();
        assert_eq!(flops.measured(), &[0.0; 4]);
    }

    #[test]
    fn speed_aware_lpt_with_equal_speeds_matches_weighted_lpt() {
        let (_, costs) = mixed_fixture();
        let speedy = SpeedAwareLpt::from_speeds(vec![2.0; 3]).unwrap();
        let a = speedy.assign(&costs, 3).unwrap();
        let lpt = WeightedLpt.assign(&costs, 3).unwrap();
        assert_eq!(a.owner(), lpt.owner());
    }

    #[test]
    fn speed_aware_lpt_starves_the_slow_worker() {
        // Worker 0 measured 4× slower: it must receive roughly a quarter of
        // the work the others get, so that all workers *finish* together.
        let costs = PatternCosts::uniform(90);
        let speedy = SpeedAwareLpt::from_speeds(vec![0.25, 1.0, 1.0]).unwrap();
        let a = speedy.assign(&costs, 3).unwrap();
        let counts = a.patterns_per_worker();
        assert!(
            counts[0] < counts[1] && counts[0] < counts[2],
            "slow worker must own the fewest patterns: {counts:?}"
        );
        // Completion times (count / speed) ought to be near-equal.
        let finish: Vec<f64> = counts
            .iter()
            .zip(speedy.speeds())
            .map(|(&c, &s)| c as f64 / s)
            .collect();
        let max = finish.iter().cloned().fold(0.0, f64::max);
        let min = finish.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.2, "finish times {finish:?}");
    }

    #[test]
    fn speed_aware_lpt_from_trace_estimates_speeds() {
        let costs = PatternCosts::uniform(40);
        let prior = Cyclic.assign(&costs, 4).unwrap();
        let mut trace = WorkTrace::new(4);
        let mut region = RegionRecord::new(OpKind::Newview, 4);
        // Worker 0 took 4× the wall-clock of the others for the same share.
        region.seconds_per_worker = vec![4.0, 1.0, 1.0, 1.0];
        trace.regions.push(region);
        let speedy = SpeedAwareLpt::from_trace(&prior, &trace, TraceUnit::Seconds, &costs).unwrap();
        let s = speedy.speeds();
        assert!(s[0] < s[1] / 3.0, "speeds {s:?}");
        let a = speedy.assign(&costs, 4).unwrap();
        let counts = a.patterns_per_worker();
        assert!(counts[0] < counts[1], "{counts:?}");
    }

    #[test]
    fn speed_aware_lpt_validates_inputs() {
        assert_eq!(
            SpeedAwareLpt::from_speeds(vec![]).unwrap_err(),
            SchedError::NoWorkers
        );
        assert!(matches!(
            SpeedAwareLpt::from_speeds(vec![1.0, 0.0]).unwrap_err(),
            SchedError::InvalidSpeed { worker: 1, .. }
        ));
        assert!(matches!(
            SpeedAwareLpt::from_speeds(vec![f64::NAN]).unwrap_err(),
            SchedError::InvalidSpeed { worker: 0, .. }
        ));
        let speedy = SpeedAwareLpt::from_speeds(vec![1.0, 1.0]).unwrap();
        assert_eq!(
            speedy.assign(&PatternCosts::uniform(4), 3).unwrap_err(),
            SchedError::TraceWorkerMismatch {
                trace_workers: 2,
                assignment_workers: 3
            }
        );
    }

    #[test]
    fn partition_aware_lpt_keeps_every_partition_share_contiguous() {
        let (pp, costs) = mixed_fixture();
        let ranges = fixture_ranges(&pp);
        let strategy = PartitionAwareLpt::new(ranges.clone()).unwrap();
        for workers in [1usize, 2, 3, 5, 16] {
            let a = strategy.assign(&costs, workers).unwrap();
            assert!(
                a.partition_contiguity(&ranges),
                "{workers} workers: a worker's share of a partition is split"
            );
            // At most one run per partition per worker.
            let runs = a.contiguous_runs_per_worker();
            assert!(
                runs.iter().all(|&r| r <= ranges.len()),
                "{workers} workers: runs {runs:?} exceed the partition count"
            );
        }
    }

    #[test]
    fn partition_aware_lpt_balances_like_lpt_and_beats_block() {
        let (pp, costs) = mixed_fixture();
        let strategy = PartitionAwareLpt::new(fixture_ranges(&pp)).unwrap();
        for workers in [2usize, 3, 4, 8] {
            let a = strategy.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            assert!(
                a.max_cost() <= block.max_cost() + 1e-9,
                "{workers} workers: partition-lpt max {} vs block max {}",
                a.max_cost(),
                block.max_cost()
            );
            assert!(
                a.max_cost() <= cyclic.max_cost() + 1e-9,
                "{workers} workers: partition-lpt max {} vs cyclic max {}",
                a.max_cost(),
                cyclic.max_cost()
            );
            // The locality invariant actually buys fewer runs than cyclic on
            // a non-trivial dataset.
            let total_runs: usize = a.contiguous_runs_per_worker().iter().sum();
            let cyclic_runs: usize = cyclic.contiguous_runs_per_worker().iter().sum();
            if workers > 1 {
                assert!(
                    total_runs < cyclic_runs,
                    "{workers} workers: {total_runs} runs vs cyclic {cyclic_runs}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn partition_aware_lpt_validates_ranges() {
        assert!(matches!(
            PartitionAwareLpt::new(vec![(1..4)]).unwrap_err(),
            SchedError::InvalidPartitionRanges { index: 0 }
        ));
        assert!(matches!(
            PartitionAwareLpt::new(vec![0..4, 5..8]).unwrap_err(),
            SchedError::InvalidPartitionRanges { index: 1 }
        ));
        let strategy = PartitionAwareLpt::new(vec![0..4, 4..8]).unwrap();
        assert_eq!(
            strategy.assign(&PatternCosts::uniform(9), 2).unwrap_err(),
            SchedError::PatternCountMismatch {
                expected: 9,
                got: 8
            }
        );
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn partition_aware_lpt_on_uniform_costs_matches_block_makespan() {
        // One partition, uniform costs: the best any scheme can do is
        // ceil(n/T) patterns on the most loaded worker — Block's makespan.
        let costs = PatternCosts::uniform(10);
        let strategy = PartitionAwareLpt::new(vec![(0..10)]).unwrap();
        for workers in [2usize, 3, 4, 7] {
            let a = strategy.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            assert!(
                a.max_cost() <= block.max_cost() + 1e-9,
                "{workers} workers: {} vs block {}",
                a.max_cost(),
                block.max_cost()
            );
            assert!(a.partition_contiguity(&[(0..10)]));
        }
    }

    #[test]
    fn trace_adaptive_with_faithful_trace_matches_lpt() {
        // If the measurement confirms the analytic model exactly, the
        // correction is a no-op and TraceAdaptive degenerates to LPT.
        let (_, costs) = mixed_fixture();
        let prior = Cyclic.assign(&costs, 3).unwrap();
        let mut trace = WorkTrace::new(3);
        let mut region = RegionRecord::new(OpKind::Newview, 3);
        region.flops_per_worker = prior.predicted_cost().to_vec();
        trace.regions.push(region);
        let adaptive = TraceAdaptive::new(prior, &trace).unwrap();
        let a = adaptive.assign(&costs, 3).unwrap();
        let lpt = WeightedLpt.assign(&costs, 3).unwrap();
        assert_eq!(a.owner(), lpt.owner());
    }
}
