//! Property test: a full ring's rejected pushes are counted *exactly*.
//!
//! The producer never blocks and never retries here, so under a slow
//! consumer many pushes bounce off a full ring. The ring's `dropped` counter
//! (harvested by [`Consumer::take_dropped`]) must equal the producer's own
//! tally of rejections — and once folded into the recorder via
//! [`Telemetry::add_dropped`], the snapshot's `events_dropped` must account
//! for every lost sample.

use std::thread;

use phylo_telemetry::ring::spsc;
use phylo_telemetry::{Telemetry, TelemetryConfig};
use proptest::{prop_assert, prop_assert_eq, proptest};

proptest! {
    #[test]
    fn rejected_pushes_are_counted_exactly(
        capacity in 1usize..16,
        n in 0u64..512,
        pop_batch in 1usize..8,
    ) {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let producer = thread::spawn(move || {
            let mut rejected = 0u64;
            for i in 0..n {
                if tx.push(i).is_err() {
                    rejected += 1;
                }
            }
            rejected
        });
        // Pop in small batches with yields in between so schedules vary:
        // sometimes the ring runs full (drops), sometimes it drains dry.
        let mut received = 0u64;
        let mut last: Option<u64> = None;
        let mut track = |v: u64, last: &mut Option<u64>| -> Result<(), String> {
            // FIFO with gaps: dropped values vanish, survivors keep their
            // relative order.
            if let Some(prev) = *last {
                prop_assert!(v > prev, "out-of-order value {} after {}", v, prev);
            }
            *last = Some(v);
            received += 1;
            Ok(())
        };
        loop {
            for _ in 0..pop_batch {
                if let Some(v) = rx.pop() {
                    track(v, &mut last)?;
                }
            }
            if producer.is_finished() {
                // No more pushes can arrive; drain to empty and stop.
                while let Some(v) = rx.pop() {
                    track(v, &mut last)?;
                }
                break;
            }
            thread::yield_now();
        }
        let rejected = producer.join().expect("producer panicked");

        // Exactness: every push either arrived or was counted as dropped.
        let dropped = rx.take_dropped();
        prop_assert_eq!(dropped, rejected);
        prop_assert_eq!(received + dropped, n);
        prop_assert_eq!(rx.take_dropped(), 0, "take_dropped must reset");

        // Folding into the recorder surfaces the loss in the snapshot.
        let telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.add_dropped(dropped);
        prop_assert_eq!(telemetry.snapshot().counters.events_dropped, dropped);
    }
}
