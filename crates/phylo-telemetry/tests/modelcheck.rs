//! Deterministic model-checking of the telemetry SPSC ring.
//!
//! Build with `RUSTFLAGS='--cfg phylo_modelcheck' cargo test -p
//! phylo-telemetry` — without the cfg this file compiles to nothing. Each
//! test hands a scenario closure to [`modelcheck::explore`], which reruns it
//! under every thread interleaving with at most `preemption_bound`
//! preemptions, checking an Acquire/Release happens-before graph as it goes.
//! Scenario-internal `assert!`s validate functional properties (no lost,
//! duplicated, or reordered sample; `Drop` frees exactly the in-flight
//! values) on *every* explored schedule; the returned report captures data
//! races the sequentially consistent replay alone could never surface.
#![cfg(phylo_modelcheck)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use phylo_telemetry::ring::spsc;
use phylo_telemetry::sync::modelcheck::{self, Config};

/// Explores a scenario where the producer pushes `0..n` without retrying
/// and the consumer makes `attempts` pops; every schedule asserts that each
/// value the ring ever saw is recovered exactly once, in order.
fn run_ring_scenario(capacity: usize, n: u64, attempts: usize) -> modelcheck::Report {
    modelcheck::explore(Config::from_env(), move || {
        let (mut tx, mut rx) = spsc::<u64>(capacity);
        let producer = modelcheck::spawn(move || {
            let mut accepted = Vec::new();
            let mut rejected = Vec::new();
            for i in 0..n {
                match tx.push(i) {
                    Ok(()) => accepted.push(i),
                    Err(v) => rejected.push(v),
                }
            }
            (accepted, rejected)
        });
        let consumer = modelcheck::spawn(move || {
            let mut popped = Vec::new();
            for _ in 0..attempts {
                if let Some(v) = rx.pop() {
                    popped.push(v);
                }
            }
            (popped, rx)
        });
        let (accepted, rejected) = producer.join();
        let (popped, mut rx) = consumer.join();
        let leftover = rx.drain();

        // No loss, no duplication, no reordering: what was accepted comes
        // back out — first to the concurrent consumer, the rest to the
        // post-join drain — in exactly push order; what was rejected came
        // straight back to the producer.
        let mut recovered = popped.clone();
        recovered.extend_from_slice(&leftover);
        assert_eq!(
            recovered, accepted,
            "accepted values must be recovered exactly once, in order"
        );
        let mut seen: Vec<u64> = accepted.iter().chain(rejected.iter()).copied().collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..n).collect::<Vec<_>>(),
            "every pushed value is either accepted or handed back"
        );
    })
}

#[test]
fn push_pop_never_loses_duplicates_or_reorders() {
    let report = run_ring_scenario(2, 3, 4);
    report.assert_clean();
    // The bounded space is explored exhaustively, not sampled: a scenario
    // of this size has many distinct schedules under a 2-preemption bound.
    assert!(
        report.schedules > 50,
        "suspiciously few schedules explored: {}",
        report.schedules
    );
}

#[test]
fn wraparound_under_full_interleaving_stays_fifo() {
    // Capacity 1 maximizes full/empty transitions: every second push
    // must observe the consumer's Release of `head` to succeed.
    let report = run_ring_scenario(1, 3, 5);
    report.assert_clean();
}

/// A value whose drop is observable, for counting exactly how many times
/// the ring frees in-flight samples. The counter is plain test
/// instrumentation (outside the facade), so it adds no scheduling points.
struct DropCounted {
    drops: Arc<AtomicU64>,
}

impl Drop for DropCounted {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn drop_frees_exactly_the_in_flight_values() {
    let report = modelcheck::explore(Config::from_env(), || {
        let drops = Arc::new(AtomicU64::new(0));
        let created = 3u64;
        let (mut tx, mut rx) = spsc::<DropCounted>(4);
        let tx_drops = Arc::clone(&drops);
        let producer = modelcheck::spawn(move || {
            let mut ok = 0u64;
            for _ in 0..created {
                if tx
                    .push(DropCounted {
                        drops: Arc::clone(&tx_drops),
                    })
                    .is_ok()
                {
                    ok += 1;
                }
            }
            ok
        });
        let consumer = modelcheck::spawn(move || {
            let mut popped = 0u64;
            for _ in 0..2 {
                if rx.pop().is_some() {
                    popped += 1;
                }
            }
            (popped, rx)
        });
        let pushed_ok = producer.join();
        let (popped, rx) = consumer.join();
        let in_flight = pushed_ok - popped;
        // Everything except the in-flight values has been dropped by now:
        // rejected pushes by the producer, popped values by the consumer.
        assert_eq!(drops.load(Ordering::SeqCst), created - in_flight);
        drop(rx);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "ring Drop must free exactly the in-flight values, once each"
        );
    });
    report.assert_clean();
}

#[test]
fn rejected_push_counter_is_exact_on_every_schedule() {
    let report = modelcheck::explore(Config::from_env(), || {
        let (mut tx, mut rx) = spsc::<u64>(1);
        let producer = modelcheck::spawn(move || {
            let mut rejected = 0u64;
            for i in 0..3 {
                if tx.push(i).is_err() {
                    rejected += 1;
                }
            }
            rejected
        });
        let consumer = modelcheck::spawn(move || {
            for _ in 0..2 {
                let _ = rx.pop();
            }
            rx
        });
        let rejected = producer.join();
        let mut rx = consumer.join();
        let _ = rx.drain();
        assert_eq!(
            rx.take_dropped(),
            rejected,
            "dropped-push counter must match the producer's rejections"
        );
    });
    report.assert_clean();
}

/// The checker's own self-test: weaken the producer's Release publish to
/// Relaxed (via the mutation hook in the happens-before bookkeeping) and the
/// slot handoff must be reported as a write-read race. If this test fails,
/// the checker has lost the ability to see the one bug the ring's memory
/// orderings exist to prevent.
#[test]
fn weakened_release_publish_is_caught_as_a_race() {
    let config = Config {
        weaken_release: true,
        ..Config::from_env()
    };
    let report = modelcheck::explore(config, || {
        let (mut tx, mut rx) = spsc::<u64>(2);
        let producer = modelcheck::spawn(move || {
            let _ = tx.push(1);
            let _ = tx.push(2);
        });
        let consumer = modelcheck::spawn(move || {
            for _ in 0..2 {
                let _ = rx.pop();
            }
        });
        producer.join();
        consumer.join();
    });
    assert!(
        !report.races.is_empty(),
        "a Relaxed publish store must be detected as a data race \
         (explored {} schedules)",
        report.schedules
    );
    assert!(
        report.races.iter().any(|r| r.contains("write-read")),
        "expected a write-read race on the slot, got: {:?}",
        report.races
    );
}
