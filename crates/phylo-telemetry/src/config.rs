//! Configuration of the telemetry subsystem.

/// What a [`crate::Telemetry`] instance records.
///
/// The default records everything with a bounded event log; disabling
/// telemetry altogether is not a config option but the *absence* of a
/// recorder ([`crate::Telemetry::disabled`]), which costs one pointer check
/// per instrumentation site.
///
/// ```
/// use phylo_telemetry::{Telemetry, TelemetryConfig};
///
/// let config = TelemetryConfig::default().probes(false);
/// assert!(config.record_regions && !config.record_probes);
///
/// let telemetry = Telemetry::new(config);
/// telemetry.optimizer_round(1, -1234.5);
/// let snapshot = telemetry.snapshot();
/// assert_eq!(snapshot.counters.optimizer_rounds, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Maximum number of events retained in the log; once full, further
    /// events are counted (`events_dropped`) but not stored, so a long run
    /// cannot grow memory without bound.
    pub event_capacity: usize,
    /// Record per-region start/end events (counters and histograms are
    /// always maintained).
    pub record_regions: bool,
    /// Record per-probe optimizer events (one Newton/Brent probe per
    /// iteration can dominate the event log on large runs).
    pub record_probes: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            event_capacity: 65_536,
            record_regions: true,
            record_probes: true,
        }
    }
}

impl TelemetryConfig {
    /// Sets the event-log capacity.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Enables or disables per-region events.
    pub fn regions(mut self, record: bool) -> Self {
        self.record_regions = record;
        self
    }

    /// Enables or disables per-probe optimizer events.
    pub fn probes(mut self, record: bool) -> Self {
        self.record_probes = record;
        self
    }
}
