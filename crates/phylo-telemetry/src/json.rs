//! A minimal, dependency-free JSON value with an emitter and a parser.
//!
//! The workspace deliberately carries no serialization dependency; everything
//! that leaves the process as JSON (the JSONL event log, the shared
//! `BENCH_*.json` envelope) goes through this module. Objects preserve
//! insertion order so emitted files are stable across runs, and numbers are
//! formatted with Rust's shortest round-tripping `f64` display, so
//! `parse(emit(v)) == v` for every finite value.

/// A JSON value. Objects are ordered key/value lists (insertion order is the
/// emission order); numbers are `f64` (non-finite values emit as `null`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values are emitted as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> Self {
        JsonValue::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks a key up in an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Emits the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Emits the value as indented JSON (two spaces per level).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns `None` on malformed input or trailing
    /// garbage.
    pub fn parse(input: &str) -> Option<JsonValue> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's f64 Display is the shortest representation that parses back
        // to the same bits, so the emit/parse round trip is exact.
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => parse_literal(bytes, pos, "null", JsonValue::Null),
        b't' => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b'[' => parse_array(bytes, pos),
        b'{' => parse_object(bytes, pos),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Option<JsonValue> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let c = *bytes.get(*pos)?;
        *pos += 1;
        match c {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(*pos)?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        *pos += 4;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => {
                // Re-assemble multi-byte UTF-8 sequences from the raw bytes.
                let start = *pos - 1;
                let len = utf8_len(c)?;
                let slice = bytes.get(start..start + len)?;
                out.push_str(std::str::from_utf8(slice).ok()?);
                *pos = start + len;
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let value = JsonValue::obj(vec![
            ("null", JsonValue::Null),
            ("yes", JsonValue::Bool(true)),
            ("no", JsonValue::Bool(false)),
            ("int", JsonValue::Num(42.0)),
            ("neg", JsonValue::Num(-17.25)),
            ("tiny", JsonValue::Num(1.2345678901234567e-300)),
            (
                "text",
                JsonValue::Str("a \"quoted\" line\nwith\ttabs \\ α".into()),
            ),
            (
                "arr",
                JsonValue::Arr(vec![
                    JsonValue::Num(1.0),
                    JsonValue::Str("two".into()),
                    JsonValue::Arr(vec![]),
                    JsonValue::Obj(vec![]),
                ]),
            ),
        ]);
        for text in [value.to_json(), value.to_json_pretty()] {
            assert_eq!(JsonValue::parse(&text), Some(value.clone()), "{text}");
        }
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        for n in [
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            -1234.5678e-9,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let text = JsonValue::Num(n).to_json();
            let back = JsonValue::parse(&text).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n}");
        }
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "{\"k\" 1}", "1 2", "truth", "nul"] {
            assert_eq!(JsonValue::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn object_lookup_helpers() {
        let v = JsonValue::parse(r#"{"a": 1, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_num), Some(1.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(
            v.get("c")
                .and_then(JsonValue::as_arr)
                .and_then(|a| a[0].as_bool()),
            Some(true)
        );
        assert!(v.get("d").is_none());
    }
}
