//! The typed event taxonomy of the telemetry subsystem.

use crate::json::JsonValue;

/// One timestamped event on the unified timeline. All timestamps `t` are
/// seconds since the owning [`crate::Telemetry`] was created.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A parallel region (one `Executor::execute` call) began.
    RegionStart {
        /// Seconds since telemetry start.
        t: f64,
        /// Monotonically increasing region sequence number.
        region: u64,
        /// Op kind label (`newview`, `evaluate`, `sumtable`, `derivatives`).
        kind: String,
        /// Convergence mask: which partitions are active in this region.
        mask: Vec<bool>,
        /// Serving session the region belongs to (`None` outside
        /// multi-tenant serving).
        session: Option<u64>,
    },
    /// A parallel region completed (dead regions get a
    /// [`TelemetryEvent::WorkerDeath`] instead).
    RegionEnd {
        /// Seconds since telemetry start.
        t: f64,
        /// Sequence number pairing this with its `RegionStart`.
        region: u64,
        /// Op kind label.
        kind: String,
        /// Master-side wall time of the region.
        seconds: f64,
        /// Per-worker op latency (empty when the backend does not time
        /// workers).
        worker_seconds: Vec<f64>,
        /// Per-worker queue wait: time spent idle at the barrier waiting for
        /// the command (empty for backends without a command queue).
        queue_wait: Vec<f64>,
        /// Serving session the region belongs to (`None` outside
        /// multi-tenant serving).
        session: Option<u64>,
    },
    /// The master built a `BranchTables` (a table-cache miss); cache hits are
    /// counted, not evented.
    TableBuild {
        /// Seconds since telemetry start.
        t: f64,
        /// Partition the tables belong to.
        partition: usize,
        /// Branch the tables belong to.
        branch: usize,
    },
    /// The rescheduler migrated patterns mid-run.
    Reschedule {
        /// Seconds since telemetry start.
        t: f64,
        /// Optimizer round the migration happened in.
        round: usize,
        /// Whether it fired mid-round (mask-aware) or at a round boundary.
        within_round: bool,
        /// Measured imbalance that triggered it.
        measured_imbalance: f64,
        /// Predicted imbalance under the new assignment.
        predicted_imbalance: f64,
    },
    /// A worker thread died mid-region.
    WorkerDeath {
        /// Seconds since telemetry start.
        t: f64,
        /// Index of the dead worker.
        worker: usize,
        /// Region sequence number the death occurred in.
        region: u64,
    },
    /// The resilient driver rebuilt the workers after a death.
    WorkerRecovery {
        /// Seconds since telemetry start.
        t: f64,
        /// Index of the recovered worker.
        worker: usize,
        /// Recovery attempt number (1-based).
        attempt: usize,
    },
    /// One optimizer round (alphas + exchangeabilities + branches) finished.
    OptimizerRound {
        /// Seconds since telemetry start.
        t: f64,
        /// Round number (1-based).
        round: usize,
        /// Log likelihood at the end of the round.
        log_likelihood: f64,
        /// Serving session the round belongs to (`None` outside
        /// multi-tenant serving).
        session: Option<u64>,
    },
    /// One Newton–Raphson probe on a branch length.
    NewtonProbe {
        /// Seconds since telemetry start.
        t: f64,
        /// Branch being optimized.
        branch: usize,
        /// Partition, or `None` for a joint (summed over partitions) probe.
        partition: Option<usize>,
        /// Candidate branch length probed.
        length: f64,
        /// Log likelihood at the probe.
        log_likelihood: f64,
        /// First derivative of the log likelihood.
        first: f64,
        /// Second derivative of the log likelihood.
        second: f64,
    },
    /// One Brent probe on a model parameter (Γ shape or an exchangeability).
    BrentProbe {
        /// Seconds since telemetry start.
        t: f64,
        /// Parameter label (`alpha`, `exchangeability`).
        parameter: String,
        /// Partition the parameter belongs to.
        partition: usize,
        /// Candidate parameter value probed.
        value: f64,
        /// Log likelihood at the probe.
        log_likelihood: f64,
    },
}

fn mask_to_string(mask: &[bool]) -> String {
    mask.iter().map(|&a| if a { '#' } else { '.' }).collect()
}

fn mask_from_string(s: &str) -> Vec<bool> {
    s.chars().map(|c| c == '#').collect()
}

fn nums(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn nums_back(value: Option<&JsonValue>) -> Option<Vec<f64>> {
    value?.as_arr()?.iter().map(JsonValue::as_num).collect()
}

impl TelemetryEvent {
    /// Short label naming the event kind (also the JSONL `event` field).
    pub fn kind_label(&self) -> &'static str {
        match self {
            TelemetryEvent::RegionStart { .. } => "region_start",
            TelemetryEvent::RegionEnd { .. } => "region_end",
            TelemetryEvent::TableBuild { .. } => "table_build",
            TelemetryEvent::Reschedule { .. } => "reschedule",
            TelemetryEvent::WorkerDeath { .. } => "worker_death",
            TelemetryEvent::WorkerRecovery { .. } => "worker_recovery",
            TelemetryEvent::OptimizerRound { .. } => "optimizer_round",
            TelemetryEvent::NewtonProbe { .. } => "newton_probe",
            TelemetryEvent::BrentProbe { .. } => "brent_probe",
        }
    }

    /// Timestamp of the event, seconds since telemetry start.
    pub fn time(&self) -> f64 {
        match self {
            TelemetryEvent::RegionStart { t, .. }
            | TelemetryEvent::RegionEnd { t, .. }
            | TelemetryEvent::TableBuild { t, .. }
            | TelemetryEvent::Reschedule { t, .. }
            | TelemetryEvent::WorkerDeath { t, .. }
            | TelemetryEvent::WorkerRecovery { t, .. }
            | TelemetryEvent::OptimizerRound { t, .. }
            | TelemetryEvent::NewtonProbe { t, .. }
            | TelemetryEvent::BrentProbe { t, .. } => *t,
        }
    }

    /// The serving session the event is scoped to, when the recording
    /// handle was session-scoped (see [`crate::Telemetry::for_session`]).
    /// `None` for unscoped events and for event kinds that carry no
    /// session tag.
    pub fn session(&self) -> Option<u64> {
        match self {
            TelemetryEvent::RegionStart { session, .. }
            | TelemetryEvent::RegionEnd { session, .. }
            | TelemetryEvent::OptimizerRound { session, .. } => *session,
            _ => None,
        }
    }

    /// The event as a JSON object (one JSONL line when emitted compactly).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            (
                "event".to_string(),
                JsonValue::Str(self.kind_label().into()),
            ),
            ("t".to_string(), JsonValue::Num(self.time())),
        ];
        // The session tag is optional on the wire: unscoped events (the
        // common, single-analysis case) omit the field entirely.
        if let Some(session) = self.session() {
            fields.push(("session".into(), JsonValue::Num(session as f64)));
        }
        match self {
            TelemetryEvent::RegionStart {
                region, kind, mask, ..
            } => {
                fields.push(("region".into(), JsonValue::Num(*region as f64)));
                fields.push(("kind".into(), JsonValue::Str(kind.clone())));
                fields.push(("mask".into(), JsonValue::Str(mask_to_string(mask))));
            }
            TelemetryEvent::RegionEnd {
                region,
                kind,
                seconds,
                worker_seconds,
                queue_wait,
                ..
            } => {
                fields.push(("region".into(), JsonValue::Num(*region as f64)));
                fields.push(("kind".into(), JsonValue::Str(kind.clone())));
                fields.push(("seconds".into(), JsonValue::Num(*seconds)));
                fields.push(("worker_seconds".into(), nums(worker_seconds)));
                fields.push(("queue_wait".into(), nums(queue_wait)));
            }
            TelemetryEvent::TableBuild {
                partition, branch, ..
            } => {
                fields.push(("partition".into(), JsonValue::Num(*partition as f64)));
                fields.push(("branch".into(), JsonValue::Num(*branch as f64)));
            }
            TelemetryEvent::Reschedule {
                round,
                within_round,
                measured_imbalance,
                predicted_imbalance,
                ..
            } => {
                fields.push(("round".into(), JsonValue::Num(*round as f64)));
                fields.push(("within_round".into(), JsonValue::Bool(*within_round)));
                fields.push(("measured".into(), JsonValue::Num(*measured_imbalance)));
                fields.push(("predicted".into(), JsonValue::Num(*predicted_imbalance)));
            }
            TelemetryEvent::WorkerDeath { worker, region, .. } => {
                fields.push(("worker".into(), JsonValue::Num(*worker as f64)));
                fields.push(("region".into(), JsonValue::Num(*region as f64)));
            }
            TelemetryEvent::WorkerRecovery {
                worker, attempt, ..
            } => {
                fields.push(("worker".into(), JsonValue::Num(*worker as f64)));
                fields.push(("attempt".into(), JsonValue::Num(*attempt as f64)));
            }
            TelemetryEvent::OptimizerRound {
                round,
                log_likelihood,
                ..
            } => {
                fields.push(("round".into(), JsonValue::Num(*round as f64)));
                fields.push(("lnl".into(), JsonValue::Num(*log_likelihood)));
            }
            TelemetryEvent::NewtonProbe {
                branch,
                partition,
                length,
                log_likelihood,
                first,
                second,
                ..
            } => {
                fields.push(("branch".into(), JsonValue::Num(*branch as f64)));
                let p = match partition {
                    Some(p) => JsonValue::Num(*p as f64),
                    None => JsonValue::Null,
                };
                fields.push(("partition".into(), p));
                fields.push(("length".into(), JsonValue::Num(*length)));
                fields.push(("lnl".into(), JsonValue::Num(*log_likelihood)));
                fields.push(("first".into(), JsonValue::Num(*first)));
                fields.push(("second".into(), JsonValue::Num(*second)));
            }
            TelemetryEvent::BrentProbe {
                parameter,
                partition,
                value,
                log_likelihood,
                ..
            } => {
                fields.push(("parameter".into(), JsonValue::Str(parameter.clone())));
                fields.push(("partition".into(), JsonValue::Num(*partition as f64)));
                fields.push(("value".into(), JsonValue::Num(*value)));
                fields.push(("lnl".into(), JsonValue::Num(*log_likelihood)));
            }
        }
        JsonValue::Obj(fields)
    }

    /// Parses an event back from its JSON object form.
    pub fn from_json(value: &JsonValue) -> Option<TelemetryEvent> {
        let label = value.get("event")?.as_str()?;
        let t = value.get("t")?.as_num()?;
        let num = |key: &str| value.get(key).and_then(JsonValue::as_num);
        let idx = |key: &str| num(key).map(|n| n as usize);
        let text = |key: &str| value.get(key).and_then(JsonValue::as_str).map(String::from);
        // Absent on unscoped events; symmetric with `to_json`.
        let session = num("session").map(|n| n as u64);
        Some(match label {
            "region_start" => TelemetryEvent::RegionStart {
                t,
                region: num("region")? as u64,
                kind: text("kind")?,
                mask: mask_from_string(&text("mask")?),
                session,
            },
            "region_end" => TelemetryEvent::RegionEnd {
                t,
                region: num("region")? as u64,
                kind: text("kind")?,
                seconds: num("seconds")?,
                worker_seconds: nums_back(value.get("worker_seconds"))?,
                queue_wait: nums_back(value.get("queue_wait"))?,
                session,
            },
            "table_build" => TelemetryEvent::TableBuild {
                t,
                partition: idx("partition")?,
                branch: idx("branch")?,
            },
            "reschedule" => TelemetryEvent::Reschedule {
                t,
                round: idx("round")?,
                within_round: value.get("within_round")?.as_bool()?,
                measured_imbalance: num("measured")?,
                predicted_imbalance: num("predicted")?,
            },
            "worker_death" => TelemetryEvent::WorkerDeath {
                t,
                worker: idx("worker")?,
                region: num("region")? as u64,
            },
            "worker_recovery" => TelemetryEvent::WorkerRecovery {
                t,
                worker: idx("worker")?,
                attempt: idx("attempt")?,
            },
            "optimizer_round" => TelemetryEvent::OptimizerRound {
                t,
                round: idx("round")?,
                log_likelihood: num("lnl")?,
                session,
            },
            "newton_probe" => TelemetryEvent::NewtonProbe {
                t,
                branch: idx("branch")?,
                partition: match value.get("partition")? {
                    JsonValue::Null => None,
                    other => Some(other.as_num()? as usize),
                },
                length: num("length")?,
                log_likelihood: num("lnl")?,
                first: num("first")?,
                second: num("second")?,
            },
            "brent_probe" => TelemetryEvent::BrentProbe {
                t,
                parameter: text("parameter")?,
                partition: idx("partition")?,
                value: num("value")?,
                log_likelihood: num("lnl")?,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn one_of_each() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RegionStart {
                t: 0.25,
                region: 7,
                kind: "newview".into(),
                mask: vec![true, false, true],
                session: None,
            },
            TelemetryEvent::RegionStart {
                t: 0.26,
                region: 8,
                kind: "evaluate".into(),
                mask: vec![true, true],
                session: Some(3),
            },
            TelemetryEvent::RegionEnd {
                t: 0.5,
                region: 7,
                kind: "newview".into(),
                seconds: 0.25,
                worker_seconds: vec![0.2, 0.24],
                queue_wait: vec![0.05, 0.01],
                session: None,
            },
            TelemetryEvent::RegionEnd {
                t: 0.55,
                region: 8,
                kind: "evaluate".into(),
                seconds: 0.29,
                worker_seconds: vec![0.2, 0.24],
                queue_wait: vec![0.05, 0.01],
                session: Some(3),
            },
            TelemetryEvent::TableBuild {
                t: 0.1,
                partition: 1,
                branch: 13,
            },
            TelemetryEvent::Reschedule {
                t: 1.5,
                round: 2,
                within_round: true,
                measured_imbalance: 1.8,
                predicted_imbalance: 1.1,
            },
            TelemetryEvent::WorkerDeath {
                t: 2.0,
                worker: 3,
                region: 41,
            },
            TelemetryEvent::WorkerRecovery {
                t: 2.1,
                worker: 3,
                attempt: 1,
            },
            TelemetryEvent::OptimizerRound {
                t: 3.0,
                round: 1,
                log_likelihood: -1234.5,
                session: None,
            },
            TelemetryEvent::OptimizerRound {
                t: 3.1,
                round: 1,
                log_likelihood: -987.25,
                session: Some(12),
            },
            TelemetryEvent::NewtonProbe {
                t: 3.5,
                branch: 9,
                partition: None,
                length: 0.05,
                log_likelihood: -1200.25,
                first: 3.5,
                second: -80.0,
            },
            TelemetryEvent::NewtonProbe {
                t: 3.6,
                branch: 9,
                partition: Some(2),
                length: 0.04,
                log_likelihood: -600.125,
                first: 1.5,
                second: -40.0,
            },
            TelemetryEvent::BrentProbe {
                t: 4.0,
                parameter: "alpha".into(),
                partition: 0,
                value: 0.7,
                log_likelihood: -1190.0,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        for event in one_of_each() {
            let json = event.to_json();
            let text = json.to_json();
            let parsed = crate::json::JsonValue::parse(&text).unwrap();
            let back = TelemetryEvent::from_json(&parsed).unwrap();
            assert_eq!(back, event, "{text}");
        }
    }

    #[test]
    fn unknown_event_labels_parse_to_none() {
        let v = JsonValue::parse(r#"{"event": "martian", "t": 1.0}"#).unwrap();
        assert!(TelemetryEvent::from_json(&v).is_none());
    }

    #[test]
    fn mask_string_round_trips() {
        let mask = vec![true, false, false, true];
        assert_eq!(mask_to_string(&mask), "#..#");
        assert_eq!(mask_from_string("#..#"), mask);
    }
}
