//! Point-in-time snapshots and their export formats.

use std::collections::BTreeMap;

use crate::event::TelemetryEvent;
use crate::hist::Histogram;
use crate::json::JsonValue;

/// All counters at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Parallel regions started (`Executor::execute` entered).
    pub regions_started: u64,
    /// Parallel regions completed (a region lost to a worker death is
    /// started but never completed).
    pub regions_completed: u64,
    /// `BranchTables` cache hits.
    pub table_hits: u64,
    /// `BranchTables` builds (cache misses).
    pub table_builds: u64,
    /// Tip-index cache hits (per-pattern dictionary searches avoided).
    pub tip_hits: u64,
    /// Tip-index cache misses (dictionary searches performed during builds).
    pub tip_misses: u64,
    /// Tip-index cache (re)builds.
    pub tip_builds: u64,
    /// Pattern-steps processed by the blocked tabled kernel dispatch.
    pub dispatch_blocked_patterns: u64,
    /// Pattern-steps processed by the scalar tabled kernel dispatch.
    pub dispatch_scalar_patterns: u64,
    /// Pattern migrations performed.
    pub reschedules: u64,
    /// Rescheduler consultations (fired or not).
    pub reschedules_considered: u64,
    /// Worker deaths observed.
    pub worker_deaths: u64,
    /// Successful worker recoveries.
    pub worker_recoveries: u64,
    /// Optimizer rounds completed.
    pub optimizer_rounds: u64,
    /// Newton–Raphson probes.
    pub newton_probes: u64,
    /// Brent probes.
    pub brent_probes: u64,
    /// Events currently held in the log.
    pub events_recorded: u64,
    /// Events dropped because the log was full.
    pub events_dropped: u64,
}

impl CounterSnapshot {
    /// `(name, value)` pairs for every counter, in a stable order — the one
    /// source of truth the Prometheus dump and its round-trip test share.
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("regions_started", self.regions_started),
            ("regions_completed", self.regions_completed),
            ("table_hits", self.table_hits),
            ("table_builds", self.table_builds),
            ("tip_hits", self.tip_hits),
            ("tip_misses", self.tip_misses),
            ("tip_builds", self.tip_builds),
            ("dispatch_blocked_patterns", self.dispatch_blocked_patterns),
            ("dispatch_scalar_patterns", self.dispatch_scalar_patterns),
            ("reschedules", self.reschedules),
            ("reschedules_considered", self.reschedules_considered),
            ("worker_deaths", self.worker_deaths),
            ("worker_recoveries", self.worker_recoveries),
            ("optimizer_rounds", self.optimizer_rounds),
            ("newton_probes", self.newton_probes),
            ("brent_probes", self.brent_probes),
            ("events_recorded", self.events_recorded),
            ("events_dropped", self.events_dropped),
        ]
    }
}

/// A consistent point-in-time view of everything a [`crate::Telemetry`]
/// recorded: counters, the two fixed-bucket histograms, and the typed event
/// log.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Seconds since the recorder was created.
    pub uptime_seconds: f64,
    /// All counters.
    pub counters: CounterSnapshot,
    /// Histogram of per-region wall time (seconds).
    pub region_seconds: Histogram,
    /// Histogram of per-region measured imbalance (`max/mean` worker
    /// seconds).
    pub region_imbalance: Histogram,
    /// The retained event log, in recording order.
    pub events: Vec<TelemetryEvent>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        Self {
            uptime_seconds: 0.0,
            counters: CounterSnapshot::default(),
            region_seconds: Histogram::region_seconds(),
            region_imbalance: Histogram::imbalance(),
            events: Vec::new(),
        }
    }
}

impl TelemetrySnapshot {
    /// Tip-index cache hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn tip_cache_hit_rate(&self) -> f64 {
        let total = self.counters.tip_hits + self.counters.tip_misses;
        if total == 0 {
            1.0
        } else {
            self.counters.tip_hits as f64 / total as f64
        }
    }

    /// Fraction of tabled pattern-steps that ran on the blocked dispatch,
    /// in `[0, 1]` (1.0 when nothing tabled ran — the default dispatch).
    pub fn blocked_dispatch_fraction(&self) -> f64 {
        let total =
            self.counters.dispatch_blocked_patterns + self.counters.dispatch_scalar_patterns;
        if total == 0 {
            1.0
        } else {
            self.counters.dispatch_blocked_patterns as f64 / total as f64
        }
    }

    /// `BranchTables` cache hit rate in `[0, 1]` (1.0 when no lookups).
    pub fn table_cache_hit_rate(&self) -> f64 {
        let total = self.counters.table_hits + self.counters.table_builds;
        if total == 0 {
            1.0
        } else {
            self.counters.table_hits as f64 / total as f64
        }
    }

    /// The retained events scoped to serving session `session`, in
    /// recording order — the per-tenant slice of a shared pool recorder
    /// (events recorded through [`crate::Telemetry::for_session`] carry the
    /// tag; see [`TelemetryEvent::session`]).
    pub fn session_events(&self, session: u64) -> Vec<&TelemetryEvent> {
        self.events
            .iter()
            .filter(|e| e.session() == Some(session))
            .collect()
    }

    /// The event log as JSONL: one compact JSON object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json().to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL event log back into typed events. Malformed or unknown
    /// lines are skipped.
    pub fn events_from_jsonl(text: &str) -> Vec<TelemetryEvent> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| {
                JsonValue::parse(l)
                    .as_ref()
                    .and_then(TelemetryEvent::from_json)
            })
            .collect()
    }

    /// A Prometheus-style text dump: every counter as
    /// `plf_<name>_total`, both histograms with cumulative `_bucket{le=...}`
    /// lines plus `_sum`/`_count`, and the cache hit rates as gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters.named() {
            out.push_str(&format!("# TYPE plf_{name}_total counter\n"));
            out.push_str(&format!("plf_{name}_total {value}\n"));
        }
        for (metric, rate) in [
            ("tip_cache_hit_rate", self.tip_cache_hit_rate()),
            ("table_cache_hit_rate", self.table_cache_hit_rate()),
        ] {
            out.push_str(&format!("# TYPE plf_{metric} gauge\n"));
            out.push_str(&format!("plf_{metric} {rate}\n"));
        }
        for (metric, hist) in [
            ("region_seconds", &self.region_seconds),
            ("region_imbalance", &self.region_imbalance),
        ] {
            out.push_str(&format!("# TYPE plf_{metric} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &count) in hist.counts().iter().enumerate() {
                cumulative += count;
                let le = hist
                    .bounds()
                    .get(i)
                    .map_or_else(|| "+Inf".to_string(), |b| format!("{b}"));
                out.push_str(&format!(
                    "plf_{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("plf_{metric}_sum {}\n", hist.sum()));
            out.push_str(&format!("plf_{metric}_count {}\n", hist.count()));
        }
        out
    }

    /// Parses a Prometheus-style text dump into a metric → value map (labels
    /// are kept as part of the metric key, comments are skipped).
    pub fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // The metric name may contain a {label} block with spaces-free
            // content; the value is the last whitespace-separated token.
            if let Some((name, value)) = line.rsplit_once(' ') {
                if let Ok(v) = value.parse::<f64>() {
                    out.insert(name.to_string(), v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, TelemetryConfig};

    fn populated_snapshot() -> TelemetrySnapshot {
        let t = Telemetry::new(TelemetryConfig::default());
        let token = t.region_start("newview", &[true, false]);
        t.region_end(token, &[0.5, 1.0], &[0.1, 0.0]);
        t.table_cache_hit();
        t.table_build(0, 5);
        t.add_tip_cache(90, 10, 2);
        t.reschedule(1, true, 1.6, 1.05);
        t.worker_death(1, Some(0));
        t.worker_recovery(1, 1);
        t.optimizer_round(1, -500.0);
        t.newton_probe(3, None, 0.07, -500.0, 2.0, -30.0);
        t.brent_probe("alpha", 1, 0.9, -499.0);
        t.snapshot()
    }

    #[test]
    fn jsonl_round_trips_the_event_log() {
        let snap = populated_snapshot();
        assert!(!snap.events.is_empty());
        let jsonl = snap.to_jsonl();
        let back = TelemetrySnapshot::events_from_jsonl(&jsonl);
        assert_eq!(back, snap.events);
    }

    #[test]
    fn prometheus_round_trips_every_counter() {
        let snap = populated_snapshot();
        let text = snap.to_prometheus();
        let parsed = TelemetrySnapshot::parse_prometheus(&text);
        for (name, value) in snap.counters.named() {
            let key = format!("plf_{name}_total");
            assert_eq!(parsed.get(&key).copied(), Some(value as f64), "{key}");
        }
        // Histogram sum/count and the +Inf bucket are present and coherent.
        assert_eq!(
            parsed.get("plf_region_seconds_count").copied(),
            Some(snap.region_seconds.count() as f64)
        );
        assert_eq!(
            parsed
                .get("plf_region_seconds_bucket{le=\"+Inf\"}")
                .copied(),
            Some(snap.region_seconds.count() as f64)
        );
        assert_eq!(
            parsed.get("plf_tip_cache_hit_rate").copied(),
            Some(snap.tip_cache_hit_rate())
        );
    }

    #[test]
    fn hit_rates_degrade_gracefully_without_lookups() {
        let snap = TelemetrySnapshot::default();
        assert_eq!(snap.tip_cache_hit_rate(), 1.0);
        assert_eq!(snap.table_cache_hit_rate(), 1.0);
    }

    #[test]
    fn malformed_jsonl_lines_are_skipped() {
        let text = "not json\n{\"event\":\"optimizer_round\",\"t\":1,\"round\":2,\"lnl\":-3}\n{}\n";
        let events = TelemetrySnapshot::events_from_jsonl(text);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind_label(), "optimizer_round");
    }

    #[test]
    fn tip_cache_hit_rate_reflects_counters() {
        let snap = populated_snapshot();
        assert!((snap.tip_cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((snap.table_cache_hit_rate() - 0.5).abs() < 1e-12);
    }
}
