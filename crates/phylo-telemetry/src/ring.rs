//! A bounded lock-free single-producer/single-consumer ring buffer.
//!
//! This is the worker-side half of the telemetry contract: each worker thread
//! owns a [`Producer`] it pushes one [`crate::WorkerSample`] into per parallel
//! region, and the master owns the matching [`Consumer`] it drains at the
//! region barrier. Neither side ever blocks: a push into a full ring fails
//! (the sample is dropped — telemetry must never stall the likelihood
//! kernel), and a pop from an empty ring returns `None`.
//!
//! The implementation is the classic Lamport queue: a fixed slot array with
//! monotonically chasing head/tail indices, one `Release` store per
//! operation, and one-slot-empty to distinguish full from empty. Exclusive
//! `&mut self` on both endpoints (and no `Clone`) enforces the
//! single-producer/single-consumer discipline at compile time.
//!
//! All shared state goes through the [`crate::sync`] facade, so the exact
//! push/pop protocol below is what the deterministic model checker explores
//! under `--cfg phylo_modelcheck` (see `tests/modelcheck.rs`).

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::cell::SlotCell;

struct Shared<T> {
    slots: Box<[SlotCell<T>]>,
    /// Next slot to pop (owned by the consumer, read by the producer).
    head: AtomicUsize,
    /// Next slot to push (owned by the producer, read by the consumer).
    tail: AtomicUsize,
    /// Pushes rejected because the ring was full (written by the producer,
    /// harvested by the consumer via [`Consumer::take_dropped`]).
    dropped: AtomicU64,
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; drop any samples still in flight.
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let n = self.slots.len();
        while head != tail {
            // SAFETY: slots in head..tail hold initialized values, each
            // dropped exactly once as `head` advances.
            unsafe { self.slots[head].drop_in_place() };
            head = (head + 1) % n;
        }
    }
}

/// The push endpoint of an SPSC ring. Not cloneable: exactly one producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The pop endpoint of an SPSC ring. Not cloneable: exactly one consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").finish_non_exhaustive()
    }
}

/// Creates a ring holding up to `capacity` in-flight values.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    // One extra slot so that head == tail unambiguously means empty.
    let slots: Box<[SlotCell<T>]> = (0..capacity + 1).map(|_| SlotCell::new()).collect();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Pushes a value, or returns it if the ring is full (counting the
    /// rejection — see [`Consumer::take_dropped`]). Never blocks.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let shared = &*self.shared;
        let n = shared.slots.len();
        let tail = shared.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % n;
        if next == shared.head.load(Ordering::Acquire) {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(value);
        }
        // SAFETY: the slot at `tail` is outside head..tail, so the consumer
        // does not touch it until the Release store below publishes it; it
        // is logically empty (any previous occupant was moved out by `pop`).
        unsafe { shared.slots[tail].write(value) };
        shared.tail.store(next, Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest value, or `None` if the ring is empty. Never blocks.
    pub fn pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let n = shared.slots.len();
        let head = shared.head.load(Ordering::Relaxed);
        if head == shared.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: the Acquire load above observed the producer's Release
        // store, so the slot at `head` is initialized and no longer written.
        let value = unsafe { shared.slots[head].read() };
        shared.head.store((head + 1) % n, Ordering::Release);
        Some(value)
    }

    /// Drains every currently visible value into a fresh vector. Prefer
    /// [`drain_into`](Self::drain_into) on hot paths — it reuses a buffer
    /// instead of allocating per drain.
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Appends every currently visible value to `out` without allocating
    /// (beyond `out`'s own growth, amortized away by reuse). This is what
    /// the region-barrier drain in `phylo-parallel` uses: one buffer, reused
    /// across every barrier of the run.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        while let Some(v) = self.pop() {
            out.push(v);
        }
    }

    /// Harvests and resets the count of pushes rejected because the ring
    /// was full since the last call. The producer never blocks, so this is
    /// the only evidence a sample was lost; `phylo-parallel` folds it into
    /// the recorder's `events_dropped` counter at the region barrier.
    pub fn take_dropped(&mut self) -> u64 {
        self.shared.dropped.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u64>(3);
        assert_eq!(rx.pop(), None);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        // Full: the fourth push hands the value back.
        assert_eq!(tx.push(4), Err(4));
        assert_eq!(rx.pop(), Some(1));
        tx.push(4).unwrap();
        assert_eq!(rx.drain(), vec![2, 3, 4]);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = spsc::<usize>(2);
        for i in 0..1000 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn rejected_pushes_are_counted_exactly() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        assert_eq!(rx.take_dropped(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(3));
        assert_eq!(tx.push(4), Err(4));
        assert_eq!(rx.take_dropped(), 2);
        // take_dropped resets the counter.
        assert_eq!(rx.take_dropped(), 0);
        assert_eq!(rx.pop(), Some(1));
        tx.push(5).unwrap();
        assert_eq!(tx.push(6), Err(6));
        assert_eq!(rx.take_dropped(), 1);
    }

    #[test]
    fn drain_into_reuses_the_buffer() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        let mut buf = Vec::new();
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        rx.drain_into(&mut buf);
        assert_eq!(buf, vec![1, 2]);
        let cap = buf.capacity();
        buf.clear();
        tx.push(3).unwrap();
        rx.drain_into(&mut buf);
        assert_eq!(buf, vec![3]);
        assert_eq!(buf.capacity(), cap, "drain_into must not reallocate");
    }

    #[test]
    fn cross_thread_stress_preserves_every_value() {
        let (mut tx, mut rx) = spsc::<u64>(16);
        // The facade hooks make every op check for a checking session; keep
        // the spin-heavy stress affordable in that (debug, instrumented)
        // configuration — the exhaustive interleaving proof lives in
        // tests/modelcheck.rs, not here.
        #[cfg(phylo_modelcheck)]
        const N: u64 = 5_000;
        #[cfg(not(phylo_modelcheck))]
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "values must arrive in order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_the_ring_drops_in_flight_values() {
        let marker = Arc::new(());
        {
            let (mut tx, rx) = spsc::<Arc<()>>(8);
            tx.push(Arc::clone(&marker)).unwrap();
            tx.push(Arc::clone(&marker)).unwrap();
            drop(tx);
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&marker), 1, "in-flight values leaked");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = spsc::<u8>(0);
    }
}
