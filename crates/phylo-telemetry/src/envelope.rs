//! The shared `BENCH_*.json` envelope every bench gate emits.
//!
//! Before this module each gate binary either wrote its own ad-hoc JSON or
//! none at all; now `strategy_report`, `adaptive_resched`, `mask_resched`,
//! `kernel_tables` and `telemetry_report` all serialize through one schema:
//! run metadata, the dataset, the gate thresholds, the measured values, and
//! the list of violations (empty = gate passed).

use crate::json::JsonValue;

/// Schema identifier stamped into every envelope.
pub const BENCH_SCHEMA: &str = "plf-bench/v1";

/// One gate report in the shared schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEnvelope {
    /// Schema identifier ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Gate name (`kernel_tables`, `telemetry_report`, ...).
    pub report: String,
    /// Human-readable dataset description.
    pub dataset: String,
    /// Run metadata (workers, scale factors, repetitions, ...).
    pub run: Vec<(String, JsonValue)>,
    /// Gate thresholds by name.
    pub gates: Vec<(String, f64)>,
    /// Measured values by name.
    pub measured: Vec<(String, JsonValue)>,
    /// Violated gate descriptions; empty means the gate passed.
    pub violations: Vec<String>,
}

impl BenchEnvelope {
    /// Starts an envelope for one gate run.
    pub fn new(report: &str, dataset: &str) -> Self {
        Self {
            schema: BENCH_SCHEMA.to_string(),
            report: report.to_string(),
            dataset: dataset.to_string(),
            run: Vec::new(),
            gates: Vec::new(),
            measured: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Adds a numeric run-metadata entry.
    pub fn run_num(mut self, key: &str, value: f64) -> Self {
        self.run.push((key.to_string(), JsonValue::Num(value)));
        self
    }

    /// Adds a string run-metadata entry.
    pub fn run_str(mut self, key: &str, value: &str) -> Self {
        self.run
            .push((key.to_string(), JsonValue::Str(value.to_string())));
        self
    }

    /// Declares a gate threshold.
    pub fn gate(mut self, name: &str, threshold: f64) -> Self {
        self.gates.push((name.to_string(), threshold));
        self
    }

    /// Records a measured number.
    pub fn measure(&mut self, name: &str, value: f64) {
        self.measured
            .push((name.to_string(), JsonValue::Num(value)));
    }

    /// Records an arbitrary measured JSON value.
    pub fn measure_value(&mut self, name: &str, value: JsonValue) {
        self.measured.push((name.to_string(), value));
    }

    /// Records a gate violation.
    pub fn violation(&mut self, description: String) {
        self.violations.push(description);
    }

    /// Whether the gate passed (no violations recorded).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Looks up a measured number by name.
    pub fn measured_num(&self, name: &str) -> Option<f64> {
        self.measured
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_num())
    }

    /// The envelope as indented JSON.
    pub fn to_json(&self) -> String {
        let pairs = |items: &[(String, JsonValue)]| JsonValue::Obj(items.to_vec());
        let gates = JsonValue::Obj(
            self.gates
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                .collect(),
        );
        let violations = JsonValue::Arr(
            self.violations
                .iter()
                .map(|v| JsonValue::Str(v.clone()))
                .collect(),
        );
        let mut doc = JsonValue::obj(vec![
            ("schema", JsonValue::Str(self.schema.clone())),
            ("report", JsonValue::Str(self.report.clone())),
            ("dataset", JsonValue::Str(self.dataset.clone())),
            ("run", pairs(&self.run)),
            ("gates", gates),
            ("measured", pairs(&self.measured)),
            ("violations", violations),
        ]);
        if let JsonValue::Obj(fields) = &mut doc {
            fields.push(("passed".to_string(), JsonValue::Bool(self.passed())));
        }
        let mut text = doc.to_json_pretty();
        text.push('\n');
        text
    }

    /// Parses an envelope back from its JSON form.
    pub fn parse(text: &str) -> Option<Self> {
        let doc = JsonValue::parse(text)?;
        let obj_pairs = |key: &str| -> Option<Vec<(String, JsonValue)>> {
            match doc.get(key)? {
                JsonValue::Obj(fields) => Some(fields.clone()),
                _ => None,
            }
        };
        Some(Self {
            schema: doc.get("schema")?.as_str()?.to_string(),
            report: doc.get("report")?.as_str()?.to_string(),
            dataset: doc.get("dataset")?.as_str()?.to_string(),
            run: obj_pairs("run")?,
            gates: obj_pairs("gates")?
                .into_iter()
                .map(|(k, v)| v.as_num().map(|n| (k, n)))
                .collect::<Option<Vec<_>>>()?,
            measured: obj_pairs("measured")?,
            violations: doc
                .get("violations")?
                .as_arr()?
                .iter()
                .map(|v| v.as_str().map(String::from))
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_json() {
        let mut env = BenchEnvelope::new("kernel_tables", "mixed 12+12 DNA/protein")
            .run_num("virtual_workers", 16.0)
            .run_str("mode", "best-of-5")
            .gate("throughput_min", 1.3)
            .gate("drift_max", 1e-8);
        env.measure("throughput", 1.72);
        env.measure_value("flags", JsonValue::Arr(vec![JsonValue::Bool(true)]));
        env.violation("drift 2e-8 above gate 1e-8".to_string());
        let text = env.to_json();
        let back = BenchEnvelope::parse(&text).unwrap();
        assert_eq!(back, env);
        assert!(!back.passed());
        assert_eq!(back.measured_num("throughput"), Some(1.72));
        assert_eq!(back.schema, BENCH_SCHEMA);
    }

    #[test]
    fn passed_field_reflects_violations() {
        let env = BenchEnvelope::new("strategy_report", "d");
        assert!(env.passed());
        let doc = JsonValue::parse(&env.to_json()).unwrap();
        assert_eq!(doc.get("passed").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn rejects_non_envelope_documents() {
        assert!(BenchEnvelope::parse("{}").is_none());
        assert!(BenchEnvelope::parse("[1,2]").is_none());
    }
}
