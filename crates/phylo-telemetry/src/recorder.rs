//! The `Telemetry` recorder handle.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sync::atomic::{AtomicU64, Ordering};

use crate::config::TelemetryConfig;
use crate::event::TelemetryEvent;
use crate::hist::Histogram;
use crate::snapshot::{CounterSnapshot, TelemetrySnapshot};

/// One worker's per-region measurement, pushed into the worker's lock-free
/// ring ([`crate::ring`]) and drained by the master at the region barrier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerSample {
    /// Index of the reporting worker.
    pub worker: usize,
    /// Region sequence number the sample belongs to.
    pub region: u64,
    /// Seconds the worker spent executing the op.
    pub op_seconds: f64,
    /// Seconds the worker spent idle waiting for the command.
    pub queue_wait_seconds: f64,
    /// Tip-index cache hits since the last sample.
    pub tip_hits: u64,
    /// Tip-index cache misses (dictionary searches) since the last sample.
    pub tip_misses: u64,
    /// Tip-index cache rebuilds since the last sample.
    pub tip_builds: u64,
    /// Patterns processed by the blocked dispatch since the last sample.
    pub dispatch_blocked: u64,
    /// Patterns processed by the scalar dispatch since the last sample.
    pub dispatch_scalar: u64,
}

#[derive(Debug, Default)]
struct Counters {
    regions_started: AtomicU64,
    regions_completed: AtomicU64,
    table_hits: AtomicU64,
    table_builds: AtomicU64,
    tip_hits: AtomicU64,
    tip_misses: AtomicU64,
    tip_builds: AtomicU64,
    dispatch_blocked_patterns: AtomicU64,
    dispatch_scalar_patterns: AtomicU64,
    reschedules: AtomicU64,
    reschedules_considered: AtomicU64,
    worker_deaths: AtomicU64,
    worker_recoveries: AtomicU64,
    optimizer_rounds: AtomicU64,
    newton_probes: AtomicU64,
    brent_probes: AtomicU64,
}

#[derive(Debug)]
struct EventLog {
    events: Vec<TelemetryEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct Hists {
    region_seconds: Histogram,
    region_imbalance: Histogram,
}

#[derive(Debug)]
struct Inner {
    config: TelemetryConfig,
    start: Instant,
    counters: Counters,
    events: Mutex<EventLog>,
    hists: Mutex<Hists>,
}

/// Token returned by [`Telemetry::region_start`] and consumed by
/// [`Telemetry::region_end`]; carries the region's sequence number and start
/// instant. Dropping it without calling `region_end` marks the region as
/// never completed (the worker-death path).
#[derive(Debug)]
pub struct RegionToken {
    state: Option<(u64, &'static str, Instant)>,
}

impl RegionToken {
    /// The region sequence number, or `None` when telemetry is disabled.
    pub fn region(&self) -> Option<u64> {
        self.state.as_ref().map(|(seq, _, _)| *seq)
    }
}

/// The cloneable telemetry handle threaded through the stack.
///
/// The default ([`Telemetry::disabled`]) carries no recorder at all: every
/// instrumentation site is a single `Option` check, so code paths that never
/// opt in pay (almost) nothing. An enabled handle shares one recorder across
/// clones; the master-side mutexes are uncontended by construction (only the
/// master thread records — workers communicate through the lock-free rings).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    /// Session tag stamped onto region/round events recorded through this
    /// handle (multi-tenant serving); `None` on unscoped handles.
    session: Option<u64>,
}

impl Telemetry {
    /// Creates an enabled recorder.
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                counters: Counters::default(),
                events: Mutex::new(EventLog {
                    events: Vec::with_capacity(config.event_capacity.min(4096)),
                    dropped: 0,
                }),
                hists: Mutex::new(Hists {
                    region_seconds: Histogram::region_seconds(),
                    region_imbalance: Histogram::imbalance(),
                }),
                config,
            })),
            session: None,
        }
    }

    /// A clone of this handle scoped to serving session `session`: region
    /// and optimizer-round events it records carry the session id, so one
    /// shared recorder can serve N concurrent sessions and still be sliced
    /// per tenant afterwards (see
    /// [`crate::TelemetrySnapshot::session_events`]). Counters and
    /// histograms stay pool-global. Scoping a disabled handle is a no-op.
    #[must_use]
    pub fn for_session(&self, session: u64) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            session: Some(session),
        }
    }

    /// The session this handle is scoped to, if any.
    pub fn session(&self) -> Option<u64> {
        self.session
    }

    /// The disabled (no-op) handle; identical to `Telemetry::default()`.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since the recorder was created (0.0 when disabled).
    pub fn now(&self) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |i| i.start.elapsed().as_secs_f64())
    }

    fn push_event(inner: &Inner, event: TelemetryEvent) {
        // lint:allow(L005): event-log mutex, taken only on the telemetry-enabled
        // path. lint:allow(L001): a poisoned telemetry log is fatal by design.
        let mut log = inner.events.lock().expect("telemetry event log poisoned");
        if log.events.len() < inner.config.event_capacity {
            log.events.push(event);
        } else {
            log.dropped += 1;
        }
    }

    /// Marks the start of a parallel region. `kind` is the op-kind label,
    /// `mask` the region's active-partition (convergence) mask.
    pub fn region_start(&self, kind: &'static str, mask: &[bool]) -> RegionToken {
        let Some(inner) = &self.inner else {
            return RegionToken { state: None };
        };
        let seq = inner
            .counters
            .regions_started
            .fetch_add(1, Ordering::Relaxed);
        let t = inner.start.elapsed().as_secs_f64();
        if inner.config.record_regions {
            Self::push_event(
                inner,
                TelemetryEvent::RegionStart {
                    t,
                    region: seq,
                    kind: kind.to_string(),
                    mask: mask.to_vec(),
                    session: self.session,
                },
            );
        }
        RegionToken {
            state: Some((seq, kind, Instant::now())),
        }
    }

    /// Marks the completion of a region: records wall time, per-worker op
    /// latency and queue wait, and feeds the latency/imbalance histograms.
    pub fn region_end(&self, token: RegionToken, worker_seconds: &[f64], queue_wait: &[f64]) {
        let (Some(inner), Some((seq, kind, started))) = (&self.inner, token.state) else {
            return;
        };
        let seconds = started.elapsed().as_secs_f64();
        inner
            .counters
            .regions_completed
            .fetch_add(1, Ordering::Relaxed);
        {
            // lint:allow(L005): histogram mutex, taken only on the telemetry-enabled
            // path. lint:allow(L001): a poisoned telemetry histogram is fatal by design.
            let mut hists = inner.hists.lock().expect("telemetry histograms poisoned");
            hists.region_seconds.record(seconds);
            let busy: Vec<f64> = worker_seconds
                .iter()
                .copied()
                .filter(|&s| s > 0.0)
                .collect();
            if busy.len() > 1 {
                let max = busy.iter().copied().fold(0.0_f64, f64::max);
                let mean = busy.iter().sum::<f64>() / busy.len() as f64;
                if mean > 0.0 {
                    hists.region_imbalance.record(max / mean);
                }
            }
        }
        if inner.config.record_regions {
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(
                inner,
                TelemetryEvent::RegionEnd {
                    t,
                    region: seq,
                    kind: kind.to_string(),
                    seconds,
                    worker_seconds: worker_seconds.to_vec(),
                    queue_wait: queue_wait.to_vec(),
                    session: self.session,
                },
            );
        }
    }

    /// Counts a `BranchTables` cache hit.
    #[inline]
    pub fn table_cache_hit(&self) {
        if let Some(inner) = &self.inner {
            inner.counters.table_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a `BranchTables` build (a cache miss).
    pub fn table_build(&self, partition: usize, branch: usize) {
        if let Some(inner) = &self.inner {
            inner.counters.table_builds.fetch_add(1, Ordering::Relaxed);
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(
                inner,
                TelemetryEvent::TableBuild {
                    t,
                    partition,
                    branch,
                },
            );
        }
    }

    /// Folds ring-rejected worker samples into the `events_dropped` counter.
    /// Called by the master at the region barrier with
    /// [`crate::ring::Consumer::take_dropped`]'s harvest, so every sample a
    /// full ring refused is accounted for in the snapshot.
    pub fn add_dropped(&self, n: u64) {
        if n != 0 {
            if let Some(inner) = &self.inner {
                // lint:allow(L005): event-log mutex, taken only on the telemetry-enabled
                // path. lint:allow(L001): a poisoned telemetry log is fatal by design.
                let mut log = inner.events.lock().expect("telemetry event log poisoned");
                log.dropped += n;
            }
        }
    }

    /// Accumulates tip-index cache counters drained from worker samples.
    pub fn add_tip_cache(&self, hits: u64, misses: u64, builds: u64) {
        if let Some(inner) = &self.inner {
            if hits | misses | builds != 0 {
                inner.counters.tip_hits.fetch_add(hits, Ordering::Relaxed);
                inner
                    .counters
                    .tip_misses
                    .fetch_add(misses, Ordering::Relaxed);
                inner
                    .counters
                    .tip_builds
                    .fetch_add(builds, Ordering::Relaxed);
            }
        }
    }

    /// Accumulates per-dispatch pattern-step counts drained from workers:
    /// how many (pattern × traversal-step) units the blocked and the scalar
    /// tabled kernels each processed. Together with the per-region wall
    /// times this yields per-dispatch region throughput.
    pub fn add_dispatch_patterns(&self, blocked: u64, scalar: u64) {
        if let Some(inner) = &self.inner {
            if blocked != 0 {
                inner
                    .counters
                    .dispatch_blocked_patterns
                    .fetch_add(blocked, Ordering::Relaxed);
            }
            if scalar != 0 {
                inner
                    .counters
                    .dispatch_scalar_patterns
                    .fetch_add(scalar, Ordering::Relaxed);
            }
        }
    }

    /// Counts a rescheduler consultation (regardless of outcome).
    #[inline]
    pub fn reschedule_considered(&self) {
        if let Some(inner) = &self.inner {
            inner
                .counters
                .reschedules_considered
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a pattern migration (a fired reschedule).
    pub fn reschedule(
        &self,
        round: usize,
        within_round: bool,
        measured_imbalance: f64,
        predicted_imbalance: f64,
    ) {
        if let Some(inner) = &self.inner {
            inner.counters.reschedules.fetch_add(1, Ordering::Relaxed);
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(
                inner,
                TelemetryEvent::Reschedule {
                    t,
                    round,
                    within_round,
                    measured_imbalance,
                    predicted_imbalance,
                },
            );
        }
    }

    /// Records a worker death in region `region`.
    pub fn worker_death(&self, worker: usize, region: Option<u64>) {
        if let Some(inner) = &self.inner {
            inner.counters.worker_deaths.fetch_add(1, Ordering::Relaxed);
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(
                inner,
                TelemetryEvent::WorkerDeath {
                    t,
                    worker,
                    region: region.unwrap_or(u64::MAX),
                },
            );
        }
    }

    /// Records a successful worker recovery (attempt is 1-based).
    pub fn worker_recovery(&self, worker: usize, attempt: usize) {
        if let Some(inner) = &self.inner {
            inner
                .counters
                .worker_recoveries
                .fetch_add(1, Ordering::Relaxed);
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(inner, TelemetryEvent::WorkerRecovery { t, worker, attempt });
        }
    }

    /// Records the end of an optimizer round.
    pub fn optimizer_round(&self, round: usize, log_likelihood: f64) {
        if let Some(inner) = &self.inner {
            inner
                .counters
                .optimizer_rounds
                .fetch_add(1, Ordering::Relaxed);
            let t = inner.start.elapsed().as_secs_f64();
            Self::push_event(
                inner,
                TelemetryEvent::OptimizerRound {
                    t,
                    round,
                    log_likelihood,
                    session: self.session,
                },
            );
        }
    }

    /// Records one Newton–Raphson probe on a branch.
    pub fn newton_probe(
        &self,
        branch: usize,
        partition: Option<usize>,
        length: f64,
        log_likelihood: f64,
        first: f64,
        second: f64,
    ) {
        if let Some(inner) = &self.inner {
            inner.counters.newton_probes.fetch_add(1, Ordering::Relaxed);
            if inner.config.record_probes {
                let t = inner.start.elapsed().as_secs_f64();
                Self::push_event(
                    inner,
                    TelemetryEvent::NewtonProbe {
                        t,
                        branch,
                        partition,
                        length,
                        log_likelihood,
                        first,
                        second,
                    },
                );
            }
        }
    }

    /// Records one Brent probe on a model parameter.
    pub fn brent_probe(
        &self,
        parameter: &'static str,
        partition: usize,
        value: f64,
        log_likelihood: f64,
    ) {
        if let Some(inner) = &self.inner {
            inner.counters.brent_probes.fetch_add(1, Ordering::Relaxed);
            if inner.config.record_probes {
                let t = inner.start.elapsed().as_secs_f64();
                Self::push_event(
                    inner,
                    TelemetryEvent::BrentProbe {
                        t,
                        parameter: parameter.to_string(),
                        partition,
                        value,
                        log_likelihood,
                    },
                );
            }
        }
    }

    /// A consistent point-in-time snapshot of counters, histograms and the
    /// event log.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let log = inner.events.lock().expect("telemetry event log poisoned");
        let hists = inner.hists.lock().expect("telemetry histograms poisoned");
        let c = &inner.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        TelemetrySnapshot {
            uptime_seconds: inner.start.elapsed().as_secs_f64(),
            counters: CounterSnapshot {
                regions_started: load(&c.regions_started),
                regions_completed: load(&c.regions_completed),
                table_hits: load(&c.table_hits),
                table_builds: load(&c.table_builds),
                tip_hits: load(&c.tip_hits),
                tip_misses: load(&c.tip_misses),
                tip_builds: load(&c.tip_builds),
                dispatch_blocked_patterns: load(&c.dispatch_blocked_patterns),
                dispatch_scalar_patterns: load(&c.dispatch_scalar_patterns),
                reschedules: load(&c.reschedules),
                reschedules_considered: load(&c.reschedules_considered),
                worker_deaths: load(&c.worker_deaths),
                worker_recoveries: load(&c.worker_recoveries),
                optimizer_rounds: load(&c.optimizer_rounds),
                newton_probes: load(&c.newton_probes),
                brent_probes: load(&c.brent_probes),
                events_recorded: log.events.len() as u64,
                events_dropped: log.dropped,
            },
            region_seconds: hists.region_seconds.clone(),
            region_imbalance: hists.region_imbalance.clone(),
            events: log.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        let token = t.region_start("newview", &[true]);
        assert_eq!(token.region(), None);
        t.region_end(token, &[1.0], &[]);
        t.table_cache_hit();
        t.newton_probe(0, None, 0.1, -1.0, 0.0, -1.0);
        let snap = t.snapshot();
        assert_eq!(snap, TelemetrySnapshot::default());
        assert_eq!(snap.counters.regions_started, 0);
    }

    #[test]
    fn regions_pair_starts_and_ends() {
        let t = Telemetry::new(TelemetryConfig::default());
        let a = t.region_start("newview", &[true, false]);
        assert_eq!(a.region(), Some(0));
        t.region_end(a, &[0.5, 1.0], &[0.0, 0.0]);
        let b = t.region_start("evaluate", &[true, true]);
        assert_eq!(b.region(), Some(1));
        // Aborted region: started but never completed.
        let _ = b;
        let snap = t.snapshot();
        assert_eq!(snap.counters.regions_started, 2);
        assert_eq!(snap.counters.regions_completed, 1);
        assert_eq!(snap.region_seconds.count(), 1);
        // Imbalance 1.0 vs 0.75 mean → max/mean = 4/3 recorded once.
        assert_eq!(snap.region_imbalance.count(), 1);
        let starts = snap
            .events
            .iter()
            .filter(|e| e.kind_label() == "region_start")
            .count();
        let ends = snap
            .events
            .iter()
            .filter(|e| e.kind_label() == "region_end")
            .count();
        assert_eq!((starts, ends), (2, 1));
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let t = Telemetry::new(TelemetryConfig::default());
        let clone = t.clone();
        t.table_cache_hit();
        clone.table_cache_hit();
        clone.table_build(0, 3);
        t.add_tip_cache(10, 2, 1);
        t.reschedule_considered();
        t.reschedule(1, false, 1.5, 1.1);
        t.worker_death(2, Some(7));
        t.worker_recovery(2, 1);
        t.optimizer_round(1, -10.0);
        t.newton_probe(4, Some(0), 0.1, -10.0, 1.0, -2.0);
        t.brent_probe("alpha", 0, 0.5, -9.5);
        let snap = clone.snapshot();
        assert_eq!(snap.counters.table_hits, 2);
        assert_eq!(snap.counters.table_builds, 1);
        assert_eq!(
            (
                snap.counters.tip_hits,
                snap.counters.tip_misses,
                snap.counters.tip_builds
            ),
            (10, 2, 1)
        );
        assert_eq!(snap.counters.reschedules_considered, 1);
        assert_eq!(snap.counters.reschedules, 1);
        assert_eq!(snap.counters.worker_deaths, 1);
        assert_eq!(snap.counters.worker_recoveries, 1);
        assert_eq!(snap.counters.optimizer_rounds, 1);
        assert_eq!(snap.counters.newton_probes, 1);
        assert_eq!(snap.counters.brent_probes, 1);
        assert_eq!(snap.counters.events_recorded, snap.events.len() as u64);
    }

    #[test]
    fn session_scoped_handles_tag_events_and_share_counters() {
        let pool = Telemetry::new(TelemetryConfig::default());
        assert_eq!(pool.session(), None);
        let a = pool.for_session(1);
        let b = pool.for_session(2);
        assert_eq!(a.session(), Some(1));

        let token = a.region_start("newview", &[true]);
        a.region_end(token, &[0.5], &[0.0]);
        a.optimizer_round(1, -100.0);
        let token = b.region_start("evaluate", &[true]);
        b.region_end(token, &[0.5], &[0.0]);
        let token = pool.region_start("evaluate", &[true]);
        pool.region_end(token, &[0.5], &[0.0]);

        // Counters aggregate across all sessions on the shared recorder.
        let snap = pool.snapshot();
        assert_eq!(snap.counters.regions_started, 3);
        assert_eq!(snap.counters.regions_completed, 3);
        assert_eq!(snap.counters.optimizer_rounds, 1);

        // The event log slices cleanly per session.
        let for_a = snap.session_events(1);
        assert_eq!(for_a.len(), 3);
        assert!(for_a.iter().all(|e| e.session() == Some(1)));
        assert_eq!(snap.session_events(2).len(), 2);
        // The unscoped region's events carry no tag.
        assert_eq!(
            snap.events.iter().filter(|e| e.session().is_none()).count(),
            2
        );

        // Scoping a disabled handle stays inert.
        let off = Telemetry::disabled().for_session(9);
        assert!(!off.enabled());
        assert_eq!(off.session(), Some(9));
        off.optimizer_round(1, -1.0);
        assert_eq!(off.snapshot().counters.optimizer_rounds, 0);
    }

    #[test]
    fn event_log_is_bounded_and_counts_drops() {
        let t = Telemetry::new(TelemetryConfig::default().event_capacity(3));
        for round in 0..10 {
            t.optimizer_round(round, -1.0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.counters.events_dropped, 7);
        assert_eq!(snap.counters.optimizer_rounds, 10);
    }

    #[test]
    fn probe_events_can_be_disabled_independently_of_counters() {
        let t = Telemetry::new(TelemetryConfig::default().probes(false));
        t.newton_probe(0, None, 0.1, -1.0, 0.5, -1.0);
        t.brent_probe("alpha", 0, 0.3, -1.0);
        let snap = t.snapshot();
        assert_eq!(snap.counters.newton_probes, 1);
        assert_eq!(snap.counters.brent_probes, 1);
        assert!(snap.events.is_empty());
    }
}
