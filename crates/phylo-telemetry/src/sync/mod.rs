//! The crate's synchronization facade — and the seam the model checker
//! plugs into.
//!
//! Every atomic operation and every raw slot access the telemetry subsystem
//! performs goes through this module instead of `std::sync` directly (the
//! `phylo-lint` rule **L004** enforces that mechanically). On a normal build
//! the facade is zero-cost: [`atomic`] re-exports the real
//! `std::sync::atomic` types and [`cell::SlotCell`] is a plain
//! `UnsafeCell<MaybeUninit<T>>` wrapper.
//!
//! Compiled with `--cfg phylo_modelcheck`, the same facade routes every
//! shared access through a deterministic scheduler (the `modelcheck`
//! module, only compiled under that cfg) that
//! serializes the participating threads, enumerates their interleavings by
//! DFS over schedule prefixes (with a preemption bound), and maintains an
//! Acquire/Release happens-before graph as vector clocks so *unsynchronized*
//! slot accesses are reported as races even when the sequentially consistent
//! replay happens to produce the right values. Code outside an active
//! checking session (including every ordinary test that happens to be built
//! with the cfg) takes a passthrough to the real atomics, so the whole test
//! suite still runs under `RUSTFLAGS='--cfg phylo_modelcheck'`.

pub mod atomic;
pub mod cell;
#[cfg(phylo_modelcheck)]
pub mod modelcheck;
