//! Facade over `std::sync::atomic` — the designated atomic module of this
//! crate (lint rule **L004**).
//!
//! On a normal build these are literal re-exports. Under
//! `--cfg phylo_modelcheck` they are thin wrappers that consult the
//! thread-local model-checking scheduler: inside a checking session every
//! load/store/RMW becomes a scheduling point and feeds the happens-before
//! vector clocks; outside a session the wrappers pass straight through to
//! the inner `std` atomic.

pub use std::sync::atomic::Ordering;

#[cfg(not(phylo_modelcheck))]
pub use std::sync::atomic::{AtomicU64, AtomicUsize};

#[cfg(phylo_modelcheck)]
pub use self::checked::{AtomicU64, AtomicUsize};

#[cfg(phylo_modelcheck)]
mod checked {
    use super::Ordering;
    use crate::sync::modelcheck;

    macro_rules! checked_atomic {
        ($name:ident, $inner:ty, $value:ty) => {
            /// Model-checkable stand-in for the `std` atomic of the same
            /// name. Identical API subset; every operation is a scheduling
            /// point when a checking session is active on this thread.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $inner,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub const fn new(value: $value) -> Self {
                    Self {
                        inner: <$inner>::new(value),
                    }
                }

                /// Loads the value; a scheduling point under an active
                /// checking session (Acquire joins the variable's published
                /// clock into the thread's clock).
                pub fn load(&self, order: Ordering) -> $value {
                    modelcheck::with_atomic_load(self as *const _ as usize, order, || {
                        self.inner.load(order)
                    })
                }

                /// Stores a value; a scheduling point under an active
                /// checking session (Release publishes the thread's clock to
                /// the variable).
                pub fn store(&self, value: $value, order: Ordering) {
                    modelcheck::with_atomic_store(self as *const _ as usize, order, || {
                        self.inner.store(value, order)
                    })
                }

                /// Adds to the value, returning the previous value; a single
                /// scheduling point (the RMW is indivisible).
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    modelcheck::with_atomic_rmw(self as *const _ as usize, order, || {
                        self.inner.fetch_add(value, order)
                    })
                }

                /// Swaps the value, returning the previous value; a single
                /// scheduling point (the RMW is indivisible).
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    modelcheck::with_atomic_rmw(self as *const _ as usize, order, || {
                        self.inner.swap(value, order)
                    })
                }

                /// Mutable access — no concurrency, no scheduling point.
                pub fn get_mut(&mut self) -> &mut $value {
                    self.inner.get_mut()
                }
            }
        };
    }

    checked_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    checked_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
}
