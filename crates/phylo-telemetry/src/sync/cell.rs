//! [`SlotCell`] — the single point where the telemetry ring touches
//! uninitialized shared memory.
//!
//! On a normal build this is a transparent wrapper over
//! `UnsafeCell<MaybeUninit<T>>`. Under `--cfg phylo_modelcheck` every shared
//! read and write additionally reports to the model-checking scheduler,
//! which treats them as *non-atomic* accesses and checks them against the
//! happens-before clocks — exactly how a slot data race is detected.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

#[cfg(phylo_modelcheck)]
use crate::sync::modelcheck;

/// A shared, possibly-uninitialized slot.
///
/// The cell itself imposes no synchronization; callers must establish a
/// happens-before edge between a [`write`](Self::write) and any subsequent
/// [`read`](Self::read) (in the ring: the Release store of the producer index
/// paired with the consumer's Acquire load).
#[derive(Debug)]
pub struct SlotCell<T> {
    inner: UnsafeCell<MaybeUninit<T>>,
}

// SAFETY: `SlotCell` is a raw storage slot with no interior invariants of
// its own; the SPSC ring protocol built on top guarantees that a slot is
// never accessed concurrently from two threads (each slot is owned either by
// the producer or the consumer at any point of the index protocol), which is
// what `Send`/`Sync` require here. The model-checked build verifies this
// claim mechanically.
unsafe impl<T: Send> Send for SlotCell<T> {}
// SAFETY: see the `Send` impl above — shared references only ever reach one
// thread at a time under the ring's index protocol.
unsafe impl<T: Send> Sync for SlotCell<T> {}

impl<T> SlotCell<T> {
    /// Creates an uninitialized slot.
    pub fn new() -> Self {
        Self {
            inner: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }

    /// Writes a value into the slot through a shared reference.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive logical ownership of the slot (no
    /// concurrent access), and the slot must be logically empty — a previous
    /// value, if any, is overwritten without being dropped.
    pub unsafe fn write(&self, value: T) {
        #[cfg(phylo_modelcheck)]
        modelcheck::with_cell_write(self as *const _ as usize, || {
            // SAFETY: exclusivity and emptiness are the caller's contract.
            unsafe { (*self.inner.get()).write(value) };
        });
        #[cfg(not(phylo_modelcheck))]
        // SAFETY: exclusivity and emptiness are the caller's contract.
        unsafe {
            (*self.inner.get()).write(value);
        };
    }

    /// Moves the value out of the slot through a shared reference, leaving
    /// it logically empty.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive logical ownership of the slot, the
    /// slot must hold an initialized value, and the value must not be read
    /// again afterwards (it has been moved out).
    pub unsafe fn read(&self) -> T {
        #[cfg(phylo_modelcheck)]
        {
            modelcheck::with_cell_read(self as *const _ as usize, || {
                // SAFETY: exclusivity and initialization are the caller's
                // contract.
                unsafe { (*self.inner.get()).assume_init_read() }
            })
        }
        #[cfg(not(phylo_modelcheck))]
        {
            // SAFETY: exclusivity and initialization are the caller's
            // contract.
            unsafe { (*self.inner.get()).assume_init_read() }
        }
    }

    /// Drops the value in place through a mutable reference (used by the
    /// ring's `Drop` to free in-flight values — `&mut` proves no
    /// concurrency, so there is no scheduling point here).
    ///
    /// # Safety
    ///
    /// The slot must hold an initialized value, which must not be used
    /// again afterwards.
    pub unsafe fn drop_in_place(&mut self) {
        // SAFETY: initialization is the caller's contract; `&mut self`
        // rules out concurrent access.
        unsafe { self.inner.get_mut().assume_init_drop() };
    }
}

impl<T> Default for SlotCell<T> {
    fn default() -> Self {
        Self::new()
    }
}
