//! A deterministic concurrency model checker (compiled only under
//! `--cfg phylo_modelcheck`).
//!
//! The checker runs a *scenario* — a closure that spawns threads via
//! [`spawn`] and exercises shared state through the [`crate::sync`] facade —
//! many times, each time under a different thread interleaving, until the
//! bounded schedule space is exhausted. Real OS threads execute the scenario,
//! but they are serialized through a turnstile: exactly one thread holds the
//! floor at any time, and every shared access (facade atomic op, facade
//! [`SlotCell`] access, spawn, join, thread exit) is a *scheduling point*
//! where the scheduler decides who performs the next access.
//!
//! # Exploration
//!
//! Schedules are explored by iterative DFS over decision prefixes (the
//! CHESS-style systematic testing discipline): each run follows a *forced*
//! prefix of thread choices and then a deterministic default policy (keep
//! running the current thread until it retires or blocks). After a run, every
//! decision point past the forced prefix spawns one new prefix per untried
//! enabled alternative, pruned by a **preemption bound** — a switch away from
//! a still-enabled thread counts as one preemption, and prefixes exceeding
//! the bound are skipped. With the default policy contributing zero
//! preemptions, this enumerates exactly the schedules with at most
//! `preemption_bound` preemptions, each once.
//!
//! # Happens-before
//!
//! Because runs are serialized, every interleaving executes sequentially
//! consistently — a weak-memory bug cannot corrupt *values* here. Instead the
//! checker maintains vector clocks: a `Release` store publishes the writing
//! thread's clock to the atomic variable, an `Acquire` load joins the
//! variable's published clock into the reading thread, and spawn/join edges
//! transfer clocks between threads. Every non-atomic [`SlotCell`] access is
//! checked against the cell's last reader/writer clocks; an access without a
//! happens-before edge is reported as a **data race** even though the
//! serialized replay read the right bytes. This is what catches the classic
//! SPSC bug of publishing a slot with a `Relaxed` index store — the
//! [`Config::weaken_release`] mutation hook demonstrates exactly that.
//!
//! [`SlotCell`]: crate::sync::cell::SlotCell

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

thread_local! {
    /// The checking session this thread participates in, if any. `None`
    /// makes every facade hook a passthrough, so ordinary tests still run
    /// under `--cfg phylo_modelcheck`.
    static SESSION: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct ThreadCtx {
    sched: Arc<Scheduler>,
    tid: usize,
}

fn current_ctx() -> Option<ThreadCtx> {
    SESSION.with(|s| s.borrow().clone())
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of preemptive context switches per schedule. Two or
    /// three covers the practically relevant interleavings of an SPSC ring;
    /// the space grows combinatorially with the bound.
    pub preemption_bound: usize,
    /// Hard ceiling on explored schedules — a state-space-regression alarm,
    /// not a sampling knob: hitting it panics.
    pub max_schedules: u64,
    /// Mutation hook for the checker's own self-test: treat every `Release`
    /// store as `Relaxed` in the happens-before bookkeeping, simulating a
    /// ring whose publish store was weakened. The checker must then report
    /// races on the slot cells.
    pub weaken_release: bool,
    /// Stop exploring after the first racy schedule (default true — one
    /// counterexample is enough).
    pub stop_on_race: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 100_000,
            weaken_release: false,
            stop_on_race: true,
        }
    }
}

impl Config {
    /// The default configuration with environment overrides applied:
    /// `PHYLO_MODELCHECK_PREEMPTIONS` raises (or lowers) the preemption
    /// bound and `PHYLO_MODELCHECK_MAX_SCHEDULES` the schedule ceiling.
    /// The scheduled CI deep run uses this to explore at bound 3 without a
    /// separate test binary; unset or unparseable variables keep defaults.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(bound) = env_usize("PHYLO_MODELCHECK_PREEMPTIONS") {
            config.preemption_bound = bound;
        }
        if let Some(cap) = env_usize("PHYLO_MODELCHECK_MAX_SCHEDULES") {
            config.max_schedules = cap as u64;
        }
        config
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed; the bounded space was exhausted unless a race
    /// stopped the search early.
    pub schedules: u64,
    /// Distinct data-race descriptions found (empty for a correct scenario).
    pub races: Vec<String>,
}

impl Report {
    /// Panics if any schedule exhibited a data race.
    pub fn assert_clean(&self) {
        assert!(
            self.races.is_empty(),
            "model checker found {} race(s) over {} schedule(s):\n{}",
            self.races.len(),
            self.schedules,
            self.races.join("\n")
        );
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Status {
    Runnable,
    BlockedOn(usize),
    Finished,
}

#[derive(Debug, Clone)]
struct ChoiceRec {
    enabled: Vec<usize>,
    picked: usize,
}

#[derive(Debug, Default)]
struct CellState {
    write_vc: Vec<u32>,
    read_vc: Vec<u32>,
    last_writer: Option<usize>,
}

#[derive(Debug)]
struct State {
    threads: Vec<Status>,
    clocks: Vec<Vec<u32>>,
    final_clocks: Vec<Option<Vec<u32>>>,
    current: usize,
    step: usize,
    forced: Vec<usize>,
    choices: Vec<ChoiceRec>,
    races: Vec<String>,
    vars: HashMap<usize, Vec<u32>>,
    cells: HashMap<usize, CellState>,
    live: usize,
    done: bool,
}

struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
    weaken_release: bool,
}

fn vc_le(a: &[u32], b: &[u32]) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

fn vc_join(a: &mut Vec<u32>, b: &[u32]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

impl Scheduler {
    fn new(forced: Vec<usize>, weaken_release: bool) -> Self {
        Self {
            state: Mutex::new(State {
                threads: vec![Status::Runnable],
                clocks: vec![vec![1]],
                final_clocks: vec![None],
                current: 0,
                step: 0,
                forced,
                choices: Vec::new(),
                races: Vec::new(),
                vars: HashMap::new(),
                cells: HashMap::new(),
                live: 1,
                done: false,
            }),
            cv: Condvar::new(),
            weaken_release,
        }
    }

    /// Blocks until `tid` holds the floor.
    fn acquire<'a>(&'a self, tid: usize) -> MutexGuard<'a, State> {
        // lint:allow(L005): scheduler floor mutex of the model-check shim, compiled
        // only under --cfg phylo_modelcheck. lint:allow(L001): a broken shim must abort
        // the exploration.
        let mut st = self.state.lock().unwrap();
        while st.current != tid {
            // lint:allow(L001): same model-check shim; poisoning aborts the exploration.
            st = self.cv.wait(st).unwrap();
        }
        st
    }

    /// Chooses the performer of the next access. Called by whoever holds the
    /// floor, immediately after completing a scheduling point.
    fn decide(&self, st: &mut State) {
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.live == 0 {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            // lint:allow(L001): deadlock detection is the model checker's verdict;
            // compiled only under --cfg phylo_modelcheck.
            panic!("model-check deadlock: all live threads are blocked");
        }
        let picked = if st.step < st.forced.len() {
            let p = st.forced[st.step];
            assert!(
                enabled.contains(&p),
                "non-deterministic scenario: forced thread {p} not enabled at step {} \
                 (enabled: {enabled:?})",
                st.step
            );
            p
        } else if enabled.contains(&st.current) {
            // Default policy: no preemption — keep running the floor holder.
            st.current
        } else {
            enabled[0]
        };
        st.choices.push(ChoiceRec { enabled, picked });
        st.step += 1;
        st.current = picked;
        self.cv.notify_all();
    }

    fn race(&self, st: &mut State, msg: String) {
        if !st.races.contains(&msg) {
            st.races.push(msg);
        }
    }
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Runs `f` as one scheduling point of kind "atomic load".
pub(crate) fn with_atomic_load<R>(addr: usize, order: Ordering, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current_ctx() else { return f() };
    let mut st = ctx.sched.acquire(ctx.tid);
    if is_acquire(order) {
        if let Some(var_vc) = st.vars.get(&addr).cloned() {
            vc_join(&mut st.clocks[ctx.tid], &var_vc);
        }
    }
    let r = f();
    ctx.sched.decide(&mut st);
    r
}

/// Runs `f` as one scheduling point of kind "atomic store".
pub(crate) fn with_atomic_store<R>(addr: usize, order: Ordering, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current_ctx() else { return f() };
    let mut st = ctx.sched.acquire(ctx.tid);
    st.clocks[ctx.tid][ctx.tid] += 1;
    if is_release(order) && !ctx.sched.weaken_release {
        let vc = st.clocks[ctx.tid].clone();
        st.vars.insert(addr, vc);
    }
    let r = f();
    ctx.sched.decide(&mut st);
    r
}

/// Runs `f` as one *indivisible* scheduling point of kind "atomic RMW".
pub(crate) fn with_atomic_rmw<R>(addr: usize, order: Ordering, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current_ctx() else { return f() };
    let mut st = ctx.sched.acquire(ctx.tid);
    if is_acquire(order) {
        if let Some(var_vc) = st.vars.get(&addr).cloned() {
            vc_join(&mut st.clocks[ctx.tid], &var_vc);
        }
    }
    st.clocks[ctx.tid][ctx.tid] += 1;
    if is_release(order) && !ctx.sched.weaken_release {
        let vc = st.clocks[ctx.tid].clone();
        st.vars.insert(addr, vc);
    }
    let r = f();
    ctx.sched.decide(&mut st);
    r
}

/// Runs `f` as one scheduling point of kind "non-atomic cell write", racing
/// against any reader or writer not ordered before it.
pub(crate) fn with_cell_write<R>(addr: usize, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current_ctx() else { return f() };
    let mut st = ctx.sched.acquire(ctx.tid);
    let my_vc = st.clocks[ctx.tid].clone();
    let cell = st.cells.entry(addr).or_default();
    let mut racy = None;
    if !vc_le(&cell.write_vc, &my_vc) {
        racy = Some(format!(
            "data race: thread {} overwrites a slot written by thread {:?} \
             with no happens-before edge (write-write)",
            ctx.tid, cell.last_writer
        ));
    } else if !vc_le(&cell.read_vc, &my_vc) {
        racy = Some(format!(
            "data race: thread {} overwrites a slot while an unordered read \
             may still be in progress (read-write)",
            ctx.tid
        ));
    }
    cell.write_vc = my_vc;
    cell.read_vc = Vec::new();
    cell.last_writer = Some(ctx.tid);
    if let Some(msg) = racy {
        ctx.sched.race(&mut st, msg);
    }
    st.clocks[ctx.tid][ctx.tid] += 1;
    let r = f();
    ctx.sched.decide(&mut st);
    r
}

/// Runs `f` as one scheduling point of kind "non-atomic cell read", racing
/// against any writer not ordered before it.
pub(crate) fn with_cell_read<R>(addr: usize, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current_ctx() else { return f() };
    let mut st = ctx.sched.acquire(ctx.tid);
    let my_vc = st.clocks[ctx.tid].clone();
    let cell = st.cells.entry(addr).or_default();
    let mut racy = None;
    if !vc_le(&cell.write_vc, &my_vc) {
        racy = Some(format!(
            "data race: thread {} reads a slot written by thread {:?} with \
             no happens-before edge (write-read) — the publish store does \
             not release the slot write",
            ctx.tid, cell.last_writer
        ));
    }
    vc_join(&mut cell.read_vc, &my_vc);
    if let Some(msg) = racy {
        ctx.sched.race(&mut st, msg);
    }
    let r = f();
    ctx.sched.decide(&mut st);
    r
}

/// Handle to a thread spawned inside a checking session.
pub struct JoinHandle<T> {
    inner: thread::JoinHandle<T>,
    tid: usize,
}

impl<T> JoinHandle<T> {
    /// Joins the thread: a blocking scheduling point, plus the usual
    /// happens-before edge from the joined thread's final clock.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the joined thread.
    pub fn join(self) -> T {
        let ctx = current_ctx().expect("JoinHandle::join outside a model-check session");
        let target = self.tid;
        let mut st = ctx.sched.acquire(ctx.tid);
        loop {
            if st.threads[target] == Status::Finished {
                if let Some(final_vc) = st.final_clocks[target].clone() {
                    vc_join(&mut st.clocks[ctx.tid], &final_vc);
                }
                ctx.sched.decide(&mut st);
                break;
            }
            st.threads[ctx.tid] = Status::BlockedOn(target);
            ctx.sched.decide(&mut st);
            while st.current != ctx.tid {
                st = ctx.sched.cv.wait(st).unwrap();
            }
        }
        drop(st);
        match self.inner.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// Retires the calling controlled thread: its last scheduling point.
/// Implemented as a guard so a panicking scenario thread still hands the
/// floor on instead of deadlocking the turnstile.
struct RetireOnDrop(ThreadCtx);

impl Drop for RetireOnDrop {
    fn drop(&mut self) {
        let ctx = &self.0;
        let mut st = ctx.sched.acquire(ctx.tid);
        st.threads[ctx.tid] = Status::Finished;
        st.final_clocks[ctx.tid] = Some(st.clocks[ctx.tid].clone());
        st.live -= 1;
        // Wake joiners blocked on this thread.
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedOn(ctx.tid) {
                *s = Status::Runnable;
            }
        }
        ctx.sched.decide(&mut st);
        SESSION.with(|s| *s.borrow_mut() = None);
    }
}

/// Spawns a controlled thread inside the current checking session. Must be
/// called from a controlled thread (the scenario closure or one of its
/// descendants); the spawn itself is a scheduling point, and the child
/// inherits the parent's clock (the spawn happens-before edge).
///
/// # Panics
///
/// Panics when called outside a checking session.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current_ctx().expect("modelcheck::spawn outside a model-check session");
    let mut st = ctx.sched.acquire(ctx.tid);
    let tid = st.threads.len();
    st.threads.push(Status::Runnable);
    let mut child_vc = st.clocks[ctx.tid].clone();
    child_vc.resize(tid + 1, 0);
    child_vc[tid] = 1;
    st.clocks.push(child_vc);
    st.final_clocks.push(None);
    st.live += 1;
    st.clocks[ctx.tid][ctx.tid] += 1;
    let child_ctx = ThreadCtx {
        sched: Arc::clone(&ctx.sched),
        tid,
    };
    let inner = thread::Builder::new()
        .name(format!("modelcheck-{tid}"))
        .spawn(move || {
            SESSION.with(|s| *s.borrow_mut() = Some(child_ctx.clone()));
            let _retire = RetireOnDrop(child_ctx);
            f()
        })
        .expect("failed to spawn model-check thread");
    ctx.sched.decide(&mut st);
    drop(st);
    JoinHandle { inner, tid }
}

/// Runs one schedule: executes the scenario under the forced prefix and
/// returns the full choice log plus any races.
fn run_once<F>(
    config: &Config,
    forced: Vec<usize>,
    scenario: Arc<F>,
) -> (Vec<ChoiceRec>, Vec<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = Arc::new(Scheduler::new(forced, config.weaken_release));
    let root_ctx = ThreadCtx {
        sched: Arc::clone(&sched),
        tid: 0,
    };
    let root = thread::Builder::new()
        .name("modelcheck-0".into())
        .spawn(move || {
            SESSION.with(|s| *s.borrow_mut() = Some(root_ctx.clone()));
            let _retire = RetireOnDrop(root_ctx);
            scenario();
        })
        .expect("failed to spawn model-check root thread");
    {
        let mut st = sched.state.lock().unwrap();
        while !st.done {
            st = sched.cv.wait(st).unwrap();
        }
    }
    if let Err(payload) = root.join() {
        std::panic::resume_unwind(payload);
    }
    let st = sched.state.lock().unwrap();
    (st.choices.clone(), st.races.clone())
}

/// Preemption count of the prefix `choices[..i] + [alt]`: switches away from
/// a thread that was still enabled.
fn preemptions(choices: &[ChoiceRec], i: usize, alt: usize) -> usize {
    let mut count = 0;
    let mut prev: Option<usize> = None;
    for (j, c) in choices.iter().take(i + 1).enumerate() {
        let picked = if j == i { alt } else { c.picked };
        if let Some(p) = prev {
            if picked != p && c.enabled.contains(&p) {
                count += 1;
            }
        }
        prev = Some(picked);
    }
    count
}

/// Explores the bounded schedule space of `scenario` and returns the
/// [`Report`]. The scenario must be deterministic apart from thread
/// interleaving (no wall clock, no OS randomness).
///
/// # Panics
///
/// Panics if the schedule space exceeds [`Config::max_schedules`] (a
/// state-space regression), or if a scenario thread panics (a scenario
/// assertion failure surfaces directly as the test failure).
pub fn explore<F>(config: Config, scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let scenario = Arc::new(scenario);
    let mut pending: Vec<Vec<usize>> = vec![Vec::new()];
    let mut report = Report {
        schedules: 0,
        races: Vec::new(),
    };
    while let Some(prefix) = pending.pop() {
        assert!(
            report.schedules < config.max_schedules,
            "model-check state space exceeded {} schedules — did the \
             scenario or the preemption bound grow?",
            config.max_schedules
        );
        let (choices, races) = run_once(&config, prefix.clone(), Arc::clone(&scenario));
        report.schedules += 1;
        for r in races {
            if !report.races.contains(&r) {
                report.races.push(r);
            }
        }
        if !report.races.is_empty() && config.stop_on_race {
            break;
        }
        for i in prefix.len()..choices.len() {
            for &alt in &choices[i].enabled {
                if alt == choices[i].picked {
                    continue;
                }
                if preemptions(&choices, i, alt) > config.preemption_bound {
                    continue;
                }
                let mut p: Vec<usize> = choices[..i].iter().map(|c| c.picked).collect();
                p.push(alt);
                pending.push(p);
            }
        }
    }
    report
}
