//! Fixed-bucket histograms for region latency and measured imbalance.

/// A fixed-bucket histogram with min/max/mean tracking.
///
/// `bounds` are ascending upper bounds; a value lands in the first bucket
/// whose bound is `>= value`, or in the implicit `+Inf` overflow bucket, so
/// there are `bounds.len() + 1` counts. The layout matches the Prometheus
/// cumulative-bucket convention when exported.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram over ascending `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not strictly ascending and finite.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be strictly ascending and finite"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default latency buckets for parallel-region wall time, in seconds
    /// (1 µs up to 10 s, decades).
    pub fn region_seconds() -> Self {
        Self::new(&[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0])
    }

    /// The default buckets for per-region measured imbalance
    /// (`max / mean` over per-worker seconds, so 1.0 is perfect balance).
    pub fn imbalance() -> Self {
        Self::new(&[1.02, 1.05, 1.1, 1.2, 1.5, 2.0, 4.0, 8.0])
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The ascending bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts (`bounds().len() + 1` entries, the last
    /// one the `+Inf` overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_value_range() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 3.0, 10.0, 11.0, 1e6] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(1e6));
        assert!((h.mean() - (0.5 + 1.0 + 3.0 + 10.0 + 11.0 + 1e6) / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_no_extrema() {
        let h = Histogram::region_seconds();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut h = Histogram::imbalance();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(1.3);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }
}
