//! Unified observability for the phylogenetic likelihood kernel.
//!
//! The source paper's argument is a *measurement* argument — per-thread work
//! across parallel regions — yet the workspace's measurement story used to be
//! fragmented: `WorkTrace` knew region work, `KernelStats` knew table builds,
//! `RescheduleEvent` knew migrations, recovery counts lived in optimizer
//! reports. This crate is the common substrate: one timeline of typed
//! [`TelemetryEvent`]s, one set of counters and fixed-bucket [`Histogram`]s,
//! one export story (JSONL event log + Prometheus-style text dump + the
//! shared [`BenchEnvelope`] every bench gate writes).
//!
//! # Architecture
//!
//! * [`Telemetry`] is a cloneable handle. The disabled default is a null
//!   pointer — every instrumentation site costs one `Option` check, so code
//!   that never opts in pays (almost) nothing.
//! * The *master* records: region start/end, table builds, reschedules,
//!   deaths/recoveries, optimizer rounds and probes all happen on the master
//!   thread, so the event log and histograms sit behind uncontended mutexes.
//! * *Workers* never touch the recorder. Each worker thread owns the
//!   [`ring::Producer`] half of a bounded lock-free SPSC ring and pushes one
//!   [`WorkerSample`] (op latency, queue wait, tip-cache counters) per
//!   region; the master drains the [`ring::Consumer`] halves at the region
//!   barrier and folds the samples into the recorder.
//! * This crate depends on nothing, so every workspace crate can depend on
//!   it without cycles.
//! * All `unsafe` and all atomics live behind the [`sync`] facade (plus the
//!   ring's two slot accesses) — this is the only workspace crate not under
//!   `#![forbid(unsafe_code)]`, and in exchange it compiles under
//!   `--cfg phylo_modelcheck` into a deterministically model-checked build
//!   (see `sync::modelcheck` and `tests/modelcheck.rs`).
//!
//! ```
//! use phylo_telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};
//!
//! let telemetry = Telemetry::new(TelemetryConfig::default());
//!
//! // The master brackets a parallel region...
//! let token = telemetry.region_start("newview", &[true, true, false]);
//! telemetry.region_end(token, &[0.010, 0.012], &[0.001, 0.0]);
//! // ...counts a table-cache hit...
//! telemetry.table_cache_hit();
//!
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counters.regions_completed, 1);
//! assert_eq!(snapshot.counters.table_hits, 1);
//!
//! // Exports round-trip.
//! let events = TelemetrySnapshot::events_from_jsonl(&snapshot.to_jsonl());
//! assert_eq!(events, snapshot.events);
//! assert!(snapshot.to_prometheus().contains("plf_regions_completed_total 1"));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod envelope;
pub mod event;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod ring;
pub mod snapshot;
pub mod sync;

pub use config::TelemetryConfig;
pub use envelope::{BenchEnvelope, BENCH_SCHEMA};
pub use event::TelemetryEvent;
pub use hist::Histogram;
pub use json::JsonValue;
pub use recorder::{RegionToken, Telemetry, WorkerSample};
pub use snapshot::{CounterSnapshot, TelemetrySnapshot};
