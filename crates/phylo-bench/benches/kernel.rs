//! Criterion micro-benchmarks of the kernel primitives: CLV updates, root
//! evaluation and branch derivatives, for DNA (4-state) and protein (20-state)
//! partitions. The DNA-vs-protein ratio substantiates the paper's ~25x
//! per-column cost argument.

use criterion::{criterion_group, criterion_main, Criterion};
use phylo_data::DataType;
use phylo_kernel::SequentialKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_seqgen::datasets::DatasetSpec;
use std::sync::Arc;

fn build(data_type: DataType, columns: usize) -> SequentialKernel {
    let spec = DatasetSpec {
        name: format!("bench_{data_type:?}"),
        taxa: 16,
        partition_columns: vec![columns],
        data_type,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.0,
        seed: 99,
    };
    let ds = spec.generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
    SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap()
}

fn bench_full_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_traversal_and_evaluate");
    for (label, data_type, columns) in [
        ("dna_4state", DataType::Dna, 2000),
        ("protein_20state", DataType::Protein, 400),
    ] {
        let mut kernel = build(data_type, columns);
        group.bench_function(label, |b| {
            b.iter(|| {
                kernel.invalidate_all();
                criterion::black_box(kernel.try_log_likelihood().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_incremental_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_with_cached_clvs");
    let mut kernel = build(DataType::Dna, 2000);
    let _ = kernel.try_log_likelihood().unwrap();
    group.bench_function("dna_cached", |b| {
        b.iter(|| criterion::black_box(kernel.try_log_likelihood().unwrap()))
    });
    group.finish();
}

fn bench_branch_derivatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_derivatives");
    for (label, data_type, columns) in [
        ("dna", DataType::Dna, 2000),
        ("protein", DataType::Protein, 400),
    ] {
        let mut kernel = build(data_type, columns);
        let branch = kernel.tree().internal_branches()[0];
        let mask = kernel.full_mask();
        kernel.try_prepare_branch(branch, &mask).unwrap();
        let lengths: Vec<Option<f64>> = (0..kernel.partition_count()).map(|_| Some(0.13)).collect();
        group.bench_function(label, |b| {
            b.iter(|| criterion::black_box(kernel.try_branch_derivatives(&lengths).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_full_traversal, bench_incremental_evaluate, bench_branch_derivatives
}
criterion_main!(benches);
