//! Criterion benchmarks of the iterative optimizers under the oldPAR and
//! newPAR schemes: this is the code path whose synchronization behaviour the
//! paper analyses. The timings here are sequential (one worker); the relevant
//! comparison is the relative cost and the region counts reported by the
//! figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use phylo_kernel::SequentialKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{optimize_alphas, optimize_branch, OptimizerConfig, ParallelScheme};
use phylo_seqgen::datasets::paper_simulated;
use std::sync::Arc;

fn build() -> SequentialKernel {
    let ds = paper_simulated(12, 1200, 100, 77).generate();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap()
}

fn bench_branch_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_length_optimization");
    for scheme in [ParallelScheme::Old, ParallelScheme::New] {
        group.bench_function(format!("{scheme}"), |b| {
            b.iter_batched(
                build,
                |mut kernel| {
                    let branch = kernel.tree().internal_branches()[0];
                    let config = OptimizerConfig::new(scheme);
                    optimize_branch(&mut kernel, branch, &config)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_alpha_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_optimization");
    group.sample_size(10);
    for scheme in [ParallelScheme::Old, ParallelScheme::New] {
        group.bench_function(format!("{scheme}"), |b| {
            b.iter_batched(
                build,
                |mut kernel| {
                    let config = OptimizerConfig::new(scheme);
                    optimize_alphas(&mut kernel, &config)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_branch_optimization, bench_alpha_optimization
}
criterion_main!(benches);
