//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//! scheduling strategy (cyclic / block / weighted-LPT / trace-adaptive) ×
//! worker count on a mixed DNA/protein dataset, the newPAR convergence mask,
//! and the number of discrete Γ rate categories.

use criterion::{criterion_group, criterion_main, Criterion};
use phylo_bench::scheduling::{adaptive_assignment, default_categories};
use phylo_bench::Workload;
use phylo_kernel::{LikelihoodKernel, SequentialKernel};
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_parallel::{schedule, Block, Cyclic, RayonExecutor, ScheduleStrategy, WeightedLpt};
use phylo_seqgen::datasets::{mixed_dna_protein, paper_simulated};
use std::sync::Arc;

fn dataset() -> phylo_seqgen::GeneratedDataset {
    paper_simulated(12, 1600, 200, 88).generate()
}

/// The scheduler's target workload: skewed per-pattern costs from a protein
/// tail behind a string of DNA genes.
fn mixed_dataset() -> phylo_seqgen::GeneratedDataset {
    mixed_dna_protein(10, 9, 3, 120, 88).generate()
}

fn bench_scheduling_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduling");
    let ds = mixed_dataset();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let strategies: Vec<(&str, Box<dyn ScheduleStrategy>)> = vec![
        ("cyclic", Box::new(Cyclic)),
        ("block", Box::new(Block)),
        ("weighted_lpt", Box::new(WeightedLpt)),
    ];
    for workers in [2usize, 4] {
        if workers > max_threads {
            continue;
        }
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let categories = default_categories(&ds);
        let mut assignments: Vec<(String, phylo_parallel::Assignment)> = strategies
            .iter()
            .map(|(label, strategy)| {
                let a = schedule(&ds.patterns, &categories, workers, strategy.as_ref()).unwrap();
                (format!("{label}_w{workers}"), a)
            })
            .collect();
        assignments.push((
            format!("trace_adaptive_w{workers}"),
            adaptive_assignment(&ds, workers, Workload::ModelOptimization).unwrap(),
        ));
        for (label, assignment) in assignments {
            let exec = RayonExecutor::from_assignment(
                &ds.patterns,
                &assignment,
                ds.tree.node_capacity(),
                &categories,
            )
            .unwrap();
            let mut kernel = LikelihoodKernel::try_new(
                Arc::clone(&ds.patterns),
                ds.tree.clone(),
                models.clone(),
                exec,
            )
            .unwrap();
            group.bench_function(label, |b| {
                b.iter(|| {
                    kernel.invalidate_all();
                    criterion::black_box(kernel.try_log_likelihood().unwrap())
                })
            });
        }
    }
    group.finish();
}

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_distribution");
    let ds = dataset();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4);
    for (label, strategy) in [
        ("cyclic", &Cyclic as &dyn ScheduleStrategy),
        ("block", &Block as &dyn ScheduleStrategy),
    ] {
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &categories, threads, strategy).unwrap();
        let exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &categories,
        )
        .unwrap();
        let mut kernel =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                kernel.invalidate_all();
                criterion::black_box(kernel.try_log_likelihood().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_convergence_mask(c: &mut Criterion) {
    // The newPAR convergence mask skips already-converged partitions inside a
    // derivative region; "masked" passes None for half the partitions,
    // "unmasked" keeps evaluating all of them.
    let mut group = c.benchmark_group("ablation_convergence_mask");
    let ds = dataset();
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let mut kernel =
        SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
    let branch = kernel.tree().internal_branches()[0];
    let mask = kernel.full_mask();
    kernel.try_prepare_branch(branch, &mask).unwrap();
    let partitions = kernel.partition_count();
    let all: Vec<Option<f64>> = (0..partitions).map(|_| Some(0.1)).collect();
    let half: Vec<Option<f64>> = (0..partitions)
        .map(|p| if p % 2 == 0 { Some(0.1) } else { None })
        .collect();
    group.bench_function("without_mask_all_partitions", |b| {
        b.iter(|| criterion::black_box(kernel.try_branch_derivatives(&all).unwrap()))
    });
    group.bench_function("with_mask_half_converged", |b| {
        b.iter(|| criterion::black_box(kernel.try_branch_derivatives(&half).unwrap()))
    });
    group.finish();
}

fn bench_gamma_categories(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gamma_categories");
    let ds = dataset();
    for categories in [1usize, 4] {
        let models = ModelSet::with_categories(&ds.patterns, BranchLengthMode::Joint, categories);
        let mut kernel =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
        group.bench_function(format!("categories_{categories}"), |b| {
            b.iter(|| {
                kernel.invalidate_all();
                criterion::black_box(kernel.try_log_likelihood().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduling_strategies, bench_distribution, bench_convergence_mask, bench_gamma_categories
}
criterion_main!(benches);
