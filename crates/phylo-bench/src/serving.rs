//! Multi-tenant serving comparison: N independent sessions served
//! *concurrently* on ONE shared pool versus the same N sessions run
//! sequentially — both as back-to-back submissions to the same serving
//! stack (one at a time, so no cross-tenant fusion is possible) and as
//! dedicated per-session executors of the pool's width.
//!
//! The serial-submission baseline is the throughput gate's denominator:
//! same pool, same transport, same per-op path — concurrency (and with it
//! the fused cross-tenant barriers) is the only thing removed, so the
//! speedup isolates what fusion buys. The dedicated baseline mirrors
//! [`phylo_serve::SessionManager::submit`]'s build path op for op —
//! default per-partition models, the tabled analytic cost model,
//! `WeightedLpt` over the same worker count, the resilient newPAR
//! optimizer — so the two sides differ *only* in transport: private
//! barriers per session versus fused cross-tenant barriers on the pool.
//! That makes the final log likelihoods comparable bit for bit, which is
//! the correctness gate of `serve_report`: sharing the pool (even with a
//! worker death injected into one tenant) must not move any session's
//! result by a single ulp.

use std::sync::Arc;
use std::time::{Duration, Instant};

use phylo_kernel::LikelihoodKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{optimize_model_parameters_resilient, OptimizerConfig, ParallelScheme};
use phylo_parallel::ThreadedExecutor;
use phylo_sched::{PatternCosts, ScheduleStrategy, WeightedLpt};
use phylo_seqgen::datasets::{mixed_dna_protein, paper_simulated, GeneratedDataset};
use phylo_serve::{PoolStats, SessionManager, SessionOutcome, SessionSpec, TenantStrategy};

/// Class tag for the pure-DNA sessions of the mixed fleet.
pub const CLASS_DNA: &str = "dna";
/// Class tag for the DNA+protein sessions of the mixed fleet.
pub const CLASS_MIXED: &str = "mixed";

/// One tenant of the serving fleet: its dataset plus a class tag used for
/// the per-class latency gates (DNA and mixed-protein sessions have very
/// different per-op costs, so latency spread is gated within a class).
pub struct FleetSession {
    /// Human-readable session label (also the pool session label).
    pub label: String,
    /// [`CLASS_DNA`] or [`CLASS_MIXED`].
    pub class: &'static str,
    /// The session's independent dataset (own patterns, tree, models).
    pub dataset: GeneratedDataset,
}

/// Builds the standard mixed serving fleet: `count` sessions alternating
/// between small pure-DNA datasets and mixed DNA+protein datasets, every
/// session seeded differently (independent trees and alignments).
pub fn mixed_serving_fleet(count: usize, seed: u64) -> Vec<FleetSession> {
    (0..count)
        .map(|i| {
            let (class, dataset) = if i % 2 == 0 {
                (
                    CLASS_DNA,
                    paper_simulated(6, 160, 40, seed + i as u64).generate(),
                )
            } else {
                (
                    CLASS_MIXED,
                    mixed_dna_protein(6, 2, 1, 16, seed + 1000 + i as u64).generate(),
                )
            };
            FleetSession {
                label: format!("{class}-{i}"),
                class,
                dataset,
            }
        })
        .collect()
}

/// One dedicated (non-shared) run of a session's workload.
#[derive(Debug, Clone, Copy)]
pub struct SoloRun {
    /// Final log likelihood of the dedicated run.
    pub final_lnl: f64,
    /// Wall-clock time of the dedicated run (schedule + optimize).
    pub wall: Duration,
}

/// Runs one session on a dedicated [`ThreadedExecutor`] of width `workers`,
/// replicating the serve-side build (default per-partition models, tabled
/// analytic costs, `WeightedLpt`, resilient newPAR optimizer).
pub fn run_solo(dataset: &GeneratedDataset, workers: usize) -> SoloRun {
    let started = Instant::now();
    let patterns = Arc::clone(&dataset.patterns);
    let tree = dataset.tree.clone();
    let models = ModelSet::default_for(&patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let costs = PatternCosts::analytic_tabled(&patterns, &categories);
    let assignment = WeightedLpt
        .assign(&costs, workers)
        .expect("solo baseline schedule");
    let executor = ThreadedExecutor::from_assignment(
        &patterns,
        &assignment,
        tree.node_capacity(),
        &categories,
    )
    .expect("solo baseline executor");
    let mut kernel =
        LikelihoodKernel::try_new(patterns, tree, models, executor).expect("solo baseline kernel");
    let (report, recoveries) = optimize_model_parameters_resilient(
        &mut kernel,
        &OptimizerConfig::new(ParallelScheme::New),
    )
    .expect("solo baseline optimize");
    assert!(
        recoveries.is_empty(),
        "undisturbed solo baseline recovered a worker"
    );
    SoloRun {
        final_lnl: report.final_log_likelihood,
        wall: started.elapsed(),
    }
}

/// One fleet session's pair of runs: dedicated baseline + pooled outcome.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// The session's label from the fleet.
    pub label: String,
    /// [`CLASS_DNA`] or [`CLASS_MIXED`].
    pub class: &'static str,
    /// The dedicated-executor baseline.
    pub solo: SoloRun,
    /// The shared-pool outcome.
    pub outcome: SessionOutcome,
}

/// The serve-versus-sequential comparison for one fleet.
#[derive(Debug, Clone)]
pub struct ServeComparison {
    /// Pool width (threads shared by every session).
    pub workers: usize,
    /// Per-session record pairs, in fleet order.
    pub sessions: Vec<SessionRecord>,
    /// Total wall time of the dedicated runs, back to back.
    pub sequential_total: Duration,
    /// Total wall time of submitting every session to a shared pool one at
    /// a time (join before the next submit): the serving stack with
    /// concurrency — and therefore cross-tenant fusion — removed.
    pub serial_submission_total: Duration,
    /// Wall time of the whole concurrent batch on the shared pool.
    pub concurrent_wall: Duration,
    /// Pool aggregates after the batch drained.
    pub stats: PoolStats,
    /// Fleet index of the session that had a worker death injected.
    pub fault_session: usize,
}

impl ServeComparison {
    /// Aggregate-throughput speedup of serving the fleet concurrently over
    /// serving it one session at a time on the same shared pool (>1 means
    /// cross-tenant fusion wins). This is the headline throughput gate: the
    /// two sides share every per-op cost, so the ratio isolates what fused
    /// barriers buy and is robust to the machine's absolute speed.
    pub fn aggregate_speedup(&self) -> f64 {
        self.serial_submission_total.as_secs_f64() / self.concurrent_wall.as_secs_f64().max(1e-12)
    }

    /// Concurrent serving versus the dedicated-executor sequential runs
    /// (>1 means the shared pool beats even private per-session executors).
    /// On a many-core host the pool wins outright; on a single-core CI box
    /// the two are at parity (there is no idle hardware to soak up), so
    /// `serve_report` holds this to a parity *bound* rather than a win.
    pub fn dedicated_speedup(&self) -> f64 {
        self.sequential_total.as_secs_f64() / self.concurrent_wall.as_secs_f64().max(1e-12)
    }

    /// Pooled-session latencies (seconds) of one class, in fleet order.
    pub fn class_latencies(&self, class: &str) -> Vec<f64> {
        self.sessions
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.outcome.latency.as_secs_f64())
            .collect()
    }
}

/// The p95 of a latency sample (nearest-rank on the sorted sample).
pub fn p95(latencies: &[f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Submits every session to ONE shared pool strictly back to back (each
/// joined before the next is submitted), returning the total wall time:
/// the same serving stack with concurrency removed, so no two tenants can
/// ever share a barrier.
pub fn run_serial_submission(
    fleet: &[FleetSession],
    workers: usize,
    strategy: TenantStrategy,
) -> Duration {
    let mut pool = SessionManager::with_strategy(workers, strategy, None);
    let started = Instant::now();
    for session in fleet {
        let handle = pool
            .submit(
                SessionSpec::new(
                    Arc::clone(&session.dataset.patterns),
                    session.dataset.tree.clone(),
                )
                .label(session.label.clone()),
            )
            .expect("serial-submission admission");
        handle.join().expect("serial-submission outcome");
    }
    let total = started.elapsed();
    pool.shutdown();
    total
}

/// Runs the full comparison: every session solo on a dedicated executor
/// (sequentially), then the fleet submitted to a shared pool one session
/// at a time, then the whole fleet concurrently on one shared pool of
/// the same width, with a worker death injected into `fault_session`'s 2nd
/// dispatched op (the initial-likelihood evaluate, before any parameter
/// commit, so its recovered rerun must still match its solo run bit for
/// bit).
pub fn compare_serving(
    fleet: &[FleetSession],
    workers: usize,
    strategy: TenantStrategy,
    fault_session: usize,
) -> ServeComparison {
    let solos: Vec<SoloRun> = fleet
        .iter()
        .map(|s| run_solo(&s.dataset, workers))
        .collect();
    let sequential_total = solos.iter().map(|s| s.wall).sum();
    let serial_submission_total = run_serial_submission(fleet, workers, strategy);

    let mut pool = SessionManager::with_strategy(workers, strategy, None);
    let concurrent_started = Instant::now();
    let handles: Vec<_> = fleet
        .iter()
        .enumerate()
        .map(|(i, session)| {
            let mut spec = SessionSpec::new(
                Arc::clone(&session.dataset.patterns),
                session.dataset.tree.clone(),
            )
            .label(session.label.clone());
            if i == fault_session {
                spec = spec.inject_worker_fault(workers.saturating_sub(1), 1);
            }
            pool.submit(spec).expect("fleet admission")
        })
        .collect();
    let outcomes: Vec<SessionOutcome> = handles
        .into_iter()
        .map(|handle| handle.join().expect("fleet session outcome"))
        .collect();
    let concurrent_wall = concurrent_started.elapsed();
    let stats = pool.stats().expect("pool stats");
    pool.shutdown();

    let sessions = fleet
        .iter()
        .zip(solos)
        .zip(outcomes)
        .map(|((session, solo), outcome)| SessionRecord {
            label: session.label.clone(),
            class: session.class,
            solo,
            outcome,
        })
        .collect();
    ServeComparison {
        workers,
        sessions,
        sequential_total,
        serial_submission_total,
        concurrent_wall,
        stats,
        fault_session,
    }
}

/// Prints the per-session table and the pool aggregates.
pub fn print_serve_comparison(comparison: &ServeComparison) {
    println!(
        "{:<10} {:>6} {:>18} {:>18} {:>10} {:>10} {:>5}",
        "session", "class", "solo lnL", "pooled lnL", "solo ms", "pool ms", "recov"
    );
    for record in &comparison.sessions {
        println!(
            "{:<10} {:>6} {:>18.6} {:>18.6} {:>10.1} {:>10.1} {:>5}",
            record.label,
            record.class,
            record.solo.final_lnl,
            record.outcome.final_log_likelihood,
            record.solo.wall.as_secs_f64() * 1e3,
            record.outcome.latency.as_secs_f64() * 1e3,
            record.outcome.recoveries.len()
        );
    }
    let stats = &comparison.stats;
    println!(
        "\npool: {} workers | {} ops in {} fused batches (max fused {}) | {} worker panic(s)",
        comparison.workers,
        stats.ops_dispatched,
        stats.batches,
        stats.max_batch_fused,
        stats.worker_panics
    );
    println!(
        "sequential dedicated total {:>8.1} ms | serial submission total {:>8.1} ms | \
         shared-pool concurrent wall {:>8.1} ms",
        comparison.sequential_total.as_secs_f64() * 1e3,
        comparison.serial_submission_total.as_secs_f64() * 1e3,
        comparison.concurrent_wall.as_secs_f64() * 1e3,
    );
    println!(
        "aggregate speedup (concurrent vs serial submission) {:.2}x | \
         vs dedicated sequential {:.2}x",
        comparison.aggregate_speedup(),
        comparison.dedicated_speedup()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p95_is_nearest_rank() {
        assert_eq!(p95(&[]), 0.0);
        assert_eq!(p95(&[3.0]), 3.0);
        let sample: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(p95(&sample), 19.0);
        let sample: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p95(&sample), 95.0);
    }

    #[test]
    fn fleet_alternates_classes_with_distinct_seeds() {
        let fleet = mixed_serving_fleet(4, 7);
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].class, CLASS_DNA);
        assert_eq!(fleet[1].class, CLASS_MIXED);
        assert_eq!(fleet[2].class, CLASS_DNA);
        assert!(
            fleet[0].dataset.spec.name != fleet[2].dataset.spec.name
                || fleet[0].label != fleet[2].label
        );
    }

    #[test]
    fn small_fleet_round_trips_bit_identically() {
        let fleet = mixed_serving_fleet(2, 99);
        let comparison = compare_serving(&fleet, 2, TenantStrategy::default(), 0);
        assert_eq!(comparison.sessions.len(), 2);
        for record in &comparison.sessions {
            assert_eq!(
                record.outcome.final_log_likelihood.to_bits(),
                record.solo.final_lnl.to_bits(),
                "{} drifted on the shared pool",
                record.label
            );
        }
        assert_eq!(comparison.sessions[0].outcome.recoveries.len(), 1);
        assert!(comparison.sessions[1].outcome.recoveries.is_empty());
        assert_eq!(comparison.stats.worker_panics, 1);
    }
}
