//! Shared harness for reproducing the paper's figures and prose results.
//!
//! Every figure binary follows the same recipe:
//!
//! 1. generate the dataset (or a proportionally scaled-down version — the
//!    default, controlled by the `PLF_SCALE` environment variable, keeps the
//!    *shape* of the workload: same taxon count, same number of partitions,
//!    same threads-per-partition ratio pressure),
//! 2. run the chosen workload (full tree search, or model optimization on the
//!    fixed input tree) under the oldPAR and newPAR schemes on 1, 8 and 16
//!    *virtual* workers using the instrumented executor,
//! 3. convert the recorded work traces into per-platform run-time predictions
//!    with the analytical platform model and print the same rows the paper's
//!    figures show.
//!
//! Set `PLF_SCALE=1.0` to regenerate the figures at the paper's full dataset
//! sizes (slow), or leave the default small scale for a quick check of the
//! qualitative result.
//!
//! ```
//! use phylo_bench::{dataset_scale, run_traced, Workload};
//! use phylo_models::BranchLengthMode;
//! use phylo_optimize::ParallelScheme;
//! use phylo_seqgen::datasets::paper_simulated;
//!
//! assert!(dataset_scale() > 0.0 && dataset_scale() <= 1.0);
//! // One tiny traced run: the instrumented executor records a region per
//! // synchronization event, which is what every figure is built from.
//! let ds = paper_simulated(6, 40, 20, 5).generate();
//! let (trace, lnl) = run_traced(
//!     &ds,
//!     4,
//!     ParallelScheme::New,
//!     BranchLengthMode::PerPartition,
//!     Workload::ModelOptimization,
//! );
//! assert!(trace.sync_events() > 0);
//! assert!(lnl.is_finite() && lnl < 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod scheduling;
pub mod serving;

use std::sync::Arc;

use phylo_kernel::cost::WorkTrace;
use phylo_kernel::LikelihoodKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{optimize_model_parameters, OptimizerConfig, ParallelScheme};
use phylo_parallel::{schedule, Assignment, Cyclic, TracingExecutor};
use phylo_perfmodel::{FigureRow, Platform};
use phylo_search::{tree_search, SearchConfig};
use phylo_seqgen::datasets::{DatasetSpec, GeneratedDataset};

/// What the experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// A full ML tree search starting from the fixed input tree (the paper's
    /// "practically most relevant case").
    TreeSearch,
    /// Optimization of all model parameters on the fixed input tree (no
    /// topology moves).
    ModelOptimization,
}

/// Scale factor for dataset generation, read from `PLF_SCALE` (default 0.02).
pub fn dataset_scale() -> f64 {
    std::env::var("PLF_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.02)
}

/// Generates a dataset spec at the configured scale (1.0 keeps it untouched).
pub fn generate_scaled(spec: &DatasetSpec) -> GeneratedDataset {
    let scale = dataset_scale();
    if (scale - 1.0).abs() < f64::EPSILON {
        spec.generate()
    } else {
        spec.scaled(scale).generate()
    }
}

/// Runs one workload configuration on the virtual workers of `assignment`
/// and returns the recorded work trace together with the final log
/// likelihood.
pub fn run_traced_assignment(
    dataset: &GeneratedDataset,
    assignment: &Assignment,
    scheme: ParallelScheme,
    branch_mode: BranchLengthMode,
    workload: Workload,
) -> (WorkTrace, f64) {
    let models = ModelSet::default_for(&dataset.patterns, branch_mode);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = TracingExecutor::from_assignment(
        &dataset.patterns,
        assignment,
        dataset.tree.node_capacity(),
        &categories,
    )
    .expect("assignment was built for this dataset");
    let mut kernel = LikelihoodKernel::try_new(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    )
    .unwrap();

    let final_lnl = match workload {
        Workload::ModelOptimization => {
            let config = OptimizerConfig::new(scheme);
            optimize_model_parameters(&mut kernel, &config)
                .expect("virtual executors cannot lose workers")
                .final_log_likelihood
        }
        Workload::TreeSearch => {
            let mut config = SearchConfig::new(scheme);
            // Keep the search bounded: one round at a modest radius reproduces
            // the per-move work profile (the quantity that matters for load
            // balance) without an open-ended runtime.
            config.max_rounds = 1;
            config.spr_radius = 2;
            tree_search(&mut kernel, &config)
                .expect("virtual executors cannot lose workers")
                .final_log_likelihood
        }
    };

    let trace = kernel.executor_mut().take_trace();
    (trace, final_lnl)
}

/// Runs one workload configuration on `workers` virtual workers under the
/// paper's cyclic distribution (the historical default of every figure).
pub fn run_traced(
    dataset: &GeneratedDataset,
    workers: usize,
    scheme: ParallelScheme,
    branch_mode: BranchLengthMode,
    workload: Workload,
) -> (WorkTrace, f64) {
    let categories = scheduling::default_categories(dataset);
    let assignment = schedule(&dataset.patterns, &categories, workers, &Cyclic)
        .expect("figure configurations always use at least one worker");
    run_traced_assignment(dataset, &assignment, scheme, branch_mode, workload)
}

/// The complete set of traces one figure needs.
#[derive(Debug, Clone)]
pub struct ExperimentTraces {
    /// Sequential (1 worker) trace.
    pub sequential: WorkTrace,
    /// oldPAR with 8 workers.
    pub old_8: WorkTrace,
    /// newPAR with 8 workers.
    pub new_8: WorkTrace,
    /// oldPAR with 16 workers.
    pub old_16: WorkTrace,
    /// newPAR with 16 workers.
    pub new_16: WorkTrace,
    /// Final log likelihoods (sanity: all configurations must agree).
    pub final_lnls: Vec<f64>,
}

/// Runs the five configurations of a figure (sequential, old/new × 8/16).
pub fn run_figure_traces(
    dataset: &GeneratedDataset,
    branch_mode: BranchLengthMode,
    workload: Workload,
) -> ExperimentTraces {
    let (sequential, l0) = run_traced(dataset, 1, ParallelScheme::New, branch_mode, workload);
    let (old_8, l1) = run_traced(dataset, 8, ParallelScheme::Old, branch_mode, workload);
    let (new_8, l2) = run_traced(dataset, 8, ParallelScheme::New, branch_mode, workload);
    let (old_16, l3) = run_traced(dataset, 16, ParallelScheme::Old, branch_mode, workload);
    let (new_16, l4) = run_traced(dataset, 16, ParallelScheme::New, branch_mode, workload);
    ExperimentTraces {
        sequential,
        old_8,
        new_8,
        old_16,
        new_16,
        final_lnls: vec![l0, l1, l2, l3, l4],
    }
}

/// Converts a set of traces into the per-platform rows of Figures 3–5.
pub fn figure_rows(traces: &ExperimentTraces) -> Vec<FigureRow> {
    Platform::paper_platforms()
        .into_iter()
        .map(|platform| {
            let supports_16 = platform.cores >= 16;
            FigureRow {
                platform: platform.name.clone(),
                sequential: platform.predict_runtime(&traces.sequential),
                old_8: platform.predict_runtime(&traces.old_8),
                new_8: platform.predict_runtime(&traces.new_8),
                old_16: supports_16.then(|| platform.predict_runtime(&traces.old_16)),
                new_16: supports_16.then(|| platform.predict_runtime(&traces.new_16)),
            }
        })
        .collect()
}

/// Prints a full figure: dataset summary, the predicted run-time table, and
/// the headline improvement factors.
pub fn print_figure(title: &str, dataset: &GeneratedDataset, traces: &ExperimentTraces) {
    println!("=== {title} ===");
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns, scale {})",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns(),
        dataset_scale()
    );
    let lnl0 = traces.final_lnls[0];
    let max_dev = traces
        .final_lnls
        .iter()
        .map(|l| (l - lnl0).abs() / lnl0.abs())
        .fold(0.0, f64::max);
    println!("final lnL (sequential run): {lnl0:.3}; max relative deviation across configurations: {max_dev:.2e}");
    println!();
    println!("{}", FigureRow::header());
    let rows = figure_rows(traces);
    for row in &rows {
        println!("{}", row.format());
    }
    println!();
    for row in &rows {
        let improve_8 = row.old_8 / row.new_8;
        print!(
            "{}: newPAR improves 8-thread run time by {:.2}x",
            row.platform, improve_8
        );
        if let (Some(o16), Some(n16)) = (row.old_16, row.new_16) {
            print!(", 16-thread by {:.2}x", o16 / n16);
        }
        println!();
    }
    println!();
}

/// Sync-event and balance summary of one trace (used by the prose binaries).
pub fn trace_summary(label: &str, trace: &WorkTrace) {
    println!(
        "  {label:<28} regions: {:>8}  total GFLOP: {:>10.3}  balance: {:.3}",
        trace.sync_events(),
        trace.total_flops() / 1e9,
        trace.overall_balance()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_seqgen::datasets::paper_simulated;

    fn tiny_dataset() -> GeneratedDataset {
        paper_simulated(8, 200, 50, 7).scaled(0.5).generate()
    }

    #[test]
    fn all_configurations_agree_on_the_likelihood() {
        let ds = tiny_dataset();
        let traces = run_figure_traces(
            &ds,
            BranchLengthMode::PerPartition,
            Workload::ModelOptimization,
        );
        let reference = traces.final_lnls[0];
        for l in &traces.final_lnls {
            assert!(
                ((l - reference) / reference).abs() < 1e-3,
                "configurations disagree: {:?}",
                traces.final_lnls
            );
        }
    }

    #[test]
    fn new_scheme_has_fewer_sync_events_and_better_balance() {
        let ds = tiny_dataset();
        let traces = run_figure_traces(
            &ds,
            BranchLengthMode::PerPartition,
            Workload::ModelOptimization,
        );
        assert!(traces.old_8.sync_events() > traces.new_8.sync_events());
        assert!(traces.new_16.overall_balance() > traces.old_16.overall_balance());
    }

    #[test]
    fn figure_rows_predict_new_faster_than_old() {
        let ds = tiny_dataset();
        let traces = run_figure_traces(
            &ds,
            BranchLengthMode::PerPartition,
            Workload::ModelOptimization,
        );
        for row in figure_rows(&traces) {
            assert!(row.new_8 < row.old_8, "{row:?}");
            if let (Some(o), Some(n)) = (row.old_16, row.new_16) {
                assert!(n < o, "{row:?}");
            }
        }
    }

    #[test]
    fn scale_env_is_clamped_to_default_when_invalid() {
        // Whatever the environment, the returned scale is in (0, 1].
        let s = dataset_scale();
        assert!(s > 0.0 && s <= 1.0);
    }
}
