//! Profiling isolation harness for the kernel dispatches: runs ONLY the
//! cold-CLV dispatch sweeps from `kernel_tables` (scalar-tabled vs blocked),
//! so an external profiler (`perf`, `gprofng`) sees nothing but the inner
//! loops under comparison — no dataset generation, no gate plumbing, no
//! other yardsticks diluting the samples. This is how the blocked kernels
//! were tuned (it localized the horizontal-reduction cost that motivated the
//! transposed column-broadcast protein GEMV) and how a future regression in
//! the 2.5x dispatch gate should be triaged.
//!
//! `PLF_PROBE=scalar|blocked|both` selects which side runs (default both);
//! `PLF_PROBE_REPS` sets the rep count (default 20). Reports the best-of-reps
//! sweep time per side; it is a diagnostic, not a gate — the gate lives in
//! `kernel_tables`.

use std::sync::Arc;
use std::time::Instant;

use phylo_bench::scheduling::default_mixed_dataset;
use phylo_kernel::{KernelDispatch, SequentialKernel};
use phylo_models::{BranchLengthMode, ModelSet};

fn sweep(kernel: &mut SequentialKernel, reps: usize) -> f64 {
    let root = kernel.default_root_branch();
    let mask = kernel.full_mask();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        kernel.invalidate_all();
        let start = Instant::now();
        let _ = kernel
            .try_log_likelihood_partitions(root, &mask)
            .expect("sequential evaluation succeeds");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let which = std::env::var("PLF_PROBE").unwrap_or_else(|_| "both".into());
    let reps: usize = std::env::var("PLF_PROBE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let dataset = default_mixed_dataset();
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);

    if which == "both" || which == "blocked" {
        let mut blocked = SequentialKernel::build(
            Arc::clone(&dataset.patterns),
            dataset.tree.clone(),
            models.clone(),
        )
        .unwrap();
        let t = sweep(&mut blocked, reps);
        println!("blocked: best-of-{reps} sweep = {t:.6}s");
    }
    if which == "both" || which == "scalar" {
        let mut scalar =
            SequentialKernel::build(Arc::clone(&dataset.patterns), dataset.tree.clone(), models)
                .unwrap();
        scalar.set_dispatch(KernelDispatch::Scalar);
        let t = sweep(&mut scalar, reps);
        println!("scalar:  best-of-{reps} sweep = {t:.6}s");
    }
}
