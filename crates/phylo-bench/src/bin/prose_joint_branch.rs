//! Prose result A: with a *joint* branch-length estimate over all partitions
//! the two parallelization approaches differ only marginally (the paper
//! reports an average improvement of about 5%).

use phylo_bench::{generate_scaled, run_traced, trace_summary, Workload};
use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_perfmodel::Platform;
use phylo_seqgen::datasets::paper_simulated;

fn main() {
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 353));
    println!("=== Prose A: joint branch-length estimate, oldPAR vs newPAR ===");
    let (old_trace, lnl_old) = run_traced(
        &dataset,
        8,
        ParallelScheme::Old,
        BranchLengthMode::Joint,
        Workload::ModelOptimization,
    );
    let (new_trace, lnl_new) = run_traced(
        &dataset,
        8,
        ParallelScheme::New,
        BranchLengthMode::Joint,
        Workload::ModelOptimization,
    );
    trace_summary("oldPAR (8 threads, joint)", &old_trace);
    trace_summary("newPAR (8 threads, joint)", &new_trace);
    println!("  final lnL: old {lnl_old:.3}, new {lnl_new:.3}");
    for platform in Platform::paper_platforms().into_iter().take(2) {
        let t_old = platform.predict_runtime(&old_trace);
        let t_new = platform.predict_runtime(&new_trace);
        println!(
            "  {:<12} predicted: old {:.2}s, new {:.2}s  -> improvement {:.1}% (paper: ~5%)",
            platform.name,
            t_old,
            t_new,
            100.0 * (t_old - t_new) / t_old
        );
    }
}
