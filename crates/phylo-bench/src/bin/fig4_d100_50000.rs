//! Figure 4: sequential / oldPAR / newPAR run times for dataset d100_50000
//! (100 taxa, 50 partitions of 1,000 columns) on the four evaluation platforms.

use phylo_bench::{generate_scaled, print_figure, run_figure_traces, Workload};
use phylo_models::BranchLengthMode;
use phylo_seqgen::datasets::paper_simulated;

fn main() {
    let spec = paper_simulated(100, 50_000, 1_000, 351);
    let dataset = generate_scaled(&spec);
    let traces = run_figure_traces(
        &dataset,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    print_figure(
        "Figure 4: full ML tree search, d100_50000 with 50 partitions of 1,000 columns",
        &dataset,
        &traces,
    );
}
