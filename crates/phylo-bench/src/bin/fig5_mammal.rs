//! Figure 5: sequential / oldPAR / newPAR run times for the synthetic stand-in
//! of the real-world mammalian dataset r125_19839 (125 taxa, 34 partitions of
//! 148-2,705 patterns) on the four evaluation platforms.

use phylo_bench::{generate_scaled, print_figure, run_figure_traces, Workload};
use phylo_models::BranchLengthMode;
use phylo_seqgen::datasets::{paper_real_world, RealWorldKind};

fn main() {
    let spec = paper_real_world(RealWorldKind::Mammal125);
    let dataset = generate_scaled(&spec);
    let traces = run_figure_traces(
        &dataset,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    print_figure(
        "Figure 5: full ML tree search, real-world-like mammalian dataset r125_19839 (34 variable-length partitions)",
        &dataset,
        &traces,
    );
}
