//! Prose result C: on the protein datasets the improvement is only 5-10%,
//! because a 20-state column costs about 25x more floating point work than a
//! DNA column, so even a short partition keeps every thread busy.

use phylo_bench::{generate_scaled, run_traced, Workload};
use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_perfmodel::Platform;
use phylo_seqgen::datasets::{paper_real_world, paper_simulated, RealWorldKind};

fn main() {
    println!("=== Prose C: protein vs DNA improvement of newPAR over oldPAR (8 threads, tree search) ===");
    let platform = Platform::barcelona();

    let protein = generate_scaled(&paper_real_world(RealWorldKind::Viral26));
    let (p_old, _) = run_traced(
        &protein,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let (p_new, _) = run_traced(
        &protein,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let protein_gain = platform.predict_runtime(&p_old) / platform.predict_runtime(&p_new);

    let dna = generate_scaled(&paper_simulated(26, 21_000, 1_000, 355));
    let (d_old, _) = run_traced(
        &dna,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let (d_new, _) = run_traced(
        &dna,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let dna_gain = platform.predict_runtime(&d_old) / platform.predict_runtime(&d_new);

    println!(
        "  protein dataset (r26_21451-like): newPAR/oldPAR improvement {:.2}x",
        protein_gain
    );
    println!(
        "  comparable DNA dataset:           newPAR/oldPAR improvement {:.2}x",
        dna_gain
    );
    println!();
    println!("Expected shape (paper): the protein improvement is much smaller than the DNA");
    println!("improvement because each amino-acid column carries ~25x more work.");
    assert!(
        dna_gain > protein_gain,
        "DNA should benefit more than protein data"
    );
}
