//! Figure 3: sequential / oldPAR / newPAR run times for dataset d50_50000
//! (50 taxa, 50 partitions of 1,000 columns) on the four evaluation platforms.
//!
//! Run with `PLF_SCALE=1.0` for the paper's full dataset size.

use phylo_bench::{generate_scaled, print_figure, run_figure_traces, Workload};
use phylo_models::BranchLengthMode;
use phylo_seqgen::datasets::paper_simulated;

fn main() {
    let spec = paper_simulated(50, 50_000, 1_000, 350);
    let dataset = generate_scaled(&spec);
    let traces = run_figure_traces(
        &dataset,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    print_figure(
        "Figure 3: full ML tree search, d50_50000 with 50 partitions of 1,000 columns",
        &dataset,
        &traces,
    );
}
