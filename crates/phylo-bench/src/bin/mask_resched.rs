//! The paper's oldPAR-vs-balanced comparison, reproduced for *within-round*
//! convergence-mask rescheduling: on a dataset whose partitions converge at
//! staggered rates, the per-branch Newton streams shrink the active pattern
//! set (the oldPAR-like phases), and the static cyclic placement's balance
//! over that *live* set — not over the totals — sets the measured imbalance
//! of the masked regions. Three runs of the same newPAR workload on virtual
//! workers (deterministic FLOP measurements) are compared:
//!
//! * **static cyclic** — no rescheduling,
//! * **between-round** — the plain rescheduler, consulted only at round
//!   boundaries and triggered by total-cost imbalance,
//! * **mask-union** — the within-round rescheduler on the legacy
//!   equal-weight trailing-window union (`mask_decay = 1.0`),
//! * **mask-aware** — the within-round rescheduler on the decay-weighted
//!   window (`mask_decay = 0.85`), triggered by the live-cost imbalance of
//!   the recent masked regions; it re-levels every partition individually
//!   across the workers (live partitions first), so the live phase and the
//!   full mask balance at once.
//!
//! The binary self-gates (exits non-zero) unless mask-aware beats the static
//! and between-round baselines on measured masked-region imbalance, is no
//! worse than the legacy union window (the before/after pair in the table),
//! actually fired within a round, and preserved the log likelihood across
//! every migration to ≤ 1e-8.
//!
//! Run with `cargo run --release -p phylo-bench --bin mask_resched`.

use phylo_bench::scheduling::{
    compare_mask_resched, print_mask_comparison, staggered_convergence_dataset,
};
use phylo_telemetry::BenchEnvelope;

fn main() {
    let dataset = staggered_convergence_dataset(2026);
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let workers = 16;
    let comparison =
        compare_mask_resched(&dataset, workers).expect("virtual executors cannot lose workers");
    print_mask_comparison(&comparison);

    let static_run = comparison.run("static cyclic");
    let between = comparison.run("between-round");
    let union = comparison.run("mask-union");
    let masked = comparison.run("mask-aware");

    let mut envelope = BenchEnvelope::new("mask_resched", &dataset.spec.name)
        .run_num("taxa", dataset.spec.taxa as f64)
        .run_num("partitions", dataset.spec.partition_count() as f64)
        .run_num("patterns", dataset.total_patterns() as f64)
        .run_num("workers", workers as f64)
        .gate("min_within_round_reschedules", 1.0)
        .gate("drift_max", 1e-8)
        .gate("final_lnl_rel_max", 1e-6);
    for run in &comparison.runs {
        let key = run.label.replace([' ', '-'], "_");
        envelope.measure(&format!("{key}_reschedules"), run.reschedules as f64);
        envelope.measure(
            &format!("{key}_within_round_reschedules"),
            run.within_round_reschedules as f64,
        );
        envelope.measure(
            &format!("{key}_probe_masked_imbalance"),
            run.probe_masked_imbalance,
        );
        envelope.measure(
            &format!("{key}_probe_overall_imbalance"),
            run.probe_overall_imbalance,
        );
        envelope.measure(&format!("{key}_max_lnl_drift"), run.max_lnl_drift);
    }

    if masked.within_round_reschedules == 0 {
        let msg = "the mask-aware policy never fired within a round".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if masked.probe_masked_imbalance >= static_run.probe_masked_imbalance {
        let msg = format!(
            "mask-aware placement's masked imbalance {:.3} is not below static cyclic {:.3}",
            masked.probe_masked_imbalance, static_run.probe_masked_imbalance
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if masked.probe_masked_imbalance >= between.probe_masked_imbalance {
        let msg = format!(
            "mask-aware placement's masked imbalance {:.3} is not below \
             between-round-only {:.3}",
            masked.probe_masked_imbalance, between.probe_masked_imbalance
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    // The before/after pair: the decay-weighted window must not regress
    // against the legacy equal-weight union it replaces (ties allowed — on
    // this synthetic workload both often converge to the same placement).
    if masked.probe_masked_imbalance > union.probe_masked_imbalance + 1e-9 {
        let msg = format!(
            "decayed mask window's masked imbalance {:.3} regressed against \
             the legacy union window {:.3}",
            masked.probe_masked_imbalance, union.probe_masked_imbalance
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    for run in &comparison.runs {
        // NaN drift must fail the gate rather than slip past a < comparison.
        if run.max_lnl_drift.is_nan() || run.max_lnl_drift > 1e-8 {
            let msg = format!(
                "{} drifted the log likelihood by {:.2e} across migrations",
                run.label, run.max_lnl_drift
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
        }
        let rel = ((run.final_lnl - static_run.final_lnl) / static_run.final_lnl).abs();
        if rel.is_nan() || rel > 1e-6 {
            let msg = format!(
                "{} final lnL {:.6} deviates from static {:.6}",
                run.label, run.final_lnl, static_run.final_lnl
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
        }
    }
    let path = "BENCH_mask_resched.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if !envelope.passed() {
        std::process::exit(1);
    }
    println!(
        "mask-aware within-round rescheduling beats static cyclic and between-round-only \
         rescheduling on masked-region imbalance."
    );
}
