//! Figure 6: speedups on the Intel Nehalem for dataset d50_50000 with 50
//! partitions of 1,000 columns: an unpartitioned analysis vs the newPAR and
//! oldPAR partitioned analyses at 2, 4 and 8 threads.

use phylo_bench::{dataset_scale, generate_scaled, run_traced, Workload};
use phylo_data::PartitionedPatterns;
use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_perfmodel::Platform;
use phylo_seqgen::datasets::paper_simulated;
use std::sync::Arc;

fn main() {
    let spec = paper_simulated(50, 50_000, 1_000, 352);
    let dataset = generate_scaled(&spec);
    // The unpartitioned reference: same patterns, one partition, one model.
    let mut unpartitioned = dataset.clone();
    unpartitioned.patterns = Arc::new(PartitionedPatterns::merge_unpartitioned(&dataset.patterns));

    let platform = Platform::nehalem();
    let workload = Workload::TreeSearch;
    println!(
        "=== Figure 6: speedup on the Nehalem, d50_50000 / p1000 (scale {}) ===",
        dataset_scale()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "Threads", "Unpartitioned", "New", "Old"
    );

    let (seq_unpart, _) = run_traced(
        &unpartitioned,
        1,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        workload,
    );
    let (seq_part, _) = run_traced(
        &dataset,
        1,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        workload,
    );

    for threads in [2usize, 4, 8] {
        let (unpart, _) = run_traced(
            &unpartitioned,
            threads,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            workload,
        );
        let (new_part, _) = run_traced(
            &dataset,
            threads,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            workload,
        );
        let (old_part, _) = run_traced(
            &dataset,
            threads,
            ParallelScheme::Old,
            BranchLengthMode::PerPartition,
            workload,
        );
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            threads,
            platform.speedup(&seq_unpart, &unpart),
            platform.speedup(&seq_part, &new_part),
            platform.speedup(&seq_part, &old_part),
        );
    }
    println!();
    println!("Expected shape (paper): the newPAR speedup is nearly as good as the unpartitioned");
    println!("speedup, while the oldPAR speedup saturates well below both.");
}
