//! Mid-run rescheduling from real wall-clock measurements, demonstrated on
//! this host: one worker is artificially slowed (it sleeps proportionally to
//! its assigned work, emulating a throttled core), and the measured
//! imbalance of the static cyclic and weighted-LPT schedules is compared
//! against a run that rescheduled itself mid-flight from its own timed
//! trace. The adaptive run must land strictly below the static cyclic
//! baseline, with log likelihoods preserved across the migration.
//!
//! Run with `cargo run --release -p phylo-bench --bin adaptive_resched`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use phylo_bench::scheduling::{compare_adaptive_resched, print_adaptive_comparison};
use phylo_parallel::WorkerSkew;
use phylo_seqgen::datasets::mixed_dna_protein;
use phylo_telemetry::BenchEnvelope;

fn main() {
    let scale = phylo_bench::dataset_scale();
    let columns = ((240.0 * scale / 0.02).round() as usize).clamp(64, 2000);
    let dataset = mixed_dna_protein(8, 6, 2, columns, 4242).generate();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let skew = WorkerSkew {
        worker: 0,
        nanos_per_pattern: 20_000,
    };
    let comparison = compare_adaptive_resched(&dataset, 4, skew, 3)
        .expect("strategies succeed on a non-empty dataset");
    print_adaptive_comparison(&comparison);

    let mut envelope = BenchEnvelope::new("adaptive_resched", &dataset.spec.name)
        .run_num("taxa", dataset.spec.taxa as f64)
        .run_num("partitions", dataset.spec.partition_count() as f64)
        .run_num("patterns", dataset.total_patterns() as f64)
        .run_num("workers", comparison.workers as f64)
        .run_num("skew_worker", skew.worker as f64)
        .run_num("skew_nanos_per_pattern", skew.nanos_per_pattern as f64)
        .gate("min_reschedules", 1.0)
        .gate("drift_max", 1e-8);
    envelope.measure("reschedules", comparison.reschedules as f64);
    envelope.measure("cyclic_imbalance", comparison.cyclic_imbalance);
    envelope.measure("lpt_imbalance", comparison.lpt_imbalance);
    envelope.measure("adaptive_imbalance", comparison.adaptive_imbalance);
    envelope.measure("trigger_imbalance", comparison.trigger_imbalance);
    envelope.measure("max_lnl_drift", comparison.max_lnl_drift);

    if comparison.reschedules == 0 {
        let msg = "the rescheduler never fired on a 20x-skewed worker".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if comparison.adaptive_imbalance >= comparison.cyclic_imbalance {
        let msg = format!(
            "adaptive-resched imbalance {:.3} is not below static cyclic {:.3}",
            comparison.adaptive_imbalance, comparison.cyclic_imbalance
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    // The NaN check makes a broken (non-finite) likelihood fail the gate too.
    if comparison.max_lnl_drift.is_nan() || comparison.max_lnl_drift > 1e-8 {
        let msg = format!(
            "migration drifted the log likelihood by {:.2e}",
            comparison.max_lnl_drift
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    let path = "BENCH_adaptive_resched.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if !envelope.passed() {
        std::process::exit(1);
    }
    println!("adaptive-resched beats the static cyclic baseline on measured wall clock.");
}
