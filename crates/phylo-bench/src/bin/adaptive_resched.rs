//! Mid-run rescheduling from real wall-clock measurements, demonstrated on
//! this host: one worker is artificially slowed (it sleeps proportionally to
//! its assigned work, emulating a throttled core), and the measured
//! imbalance of the static cyclic and weighted-LPT schedules is compared
//! against a run that rescheduled itself mid-flight from its own timed
//! trace. The adaptive run must land strictly below the static cyclic
//! baseline, with log likelihoods preserved across the migration.
//!
//! Run with `cargo run --release -p phylo-bench --bin adaptive_resched`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use phylo_bench::scheduling::{compare_adaptive_resched, print_adaptive_comparison};
use phylo_parallel::WorkerSkew;
use phylo_seqgen::datasets::mixed_dna_protein;

fn main() {
    let scale = phylo_bench::dataset_scale();
    let columns = ((240.0 * scale / 0.02).round() as usize).clamp(64, 2000);
    let dataset = mixed_dna_protein(8, 6, 2, columns, 4242).generate();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let skew = WorkerSkew {
        worker: 0,
        nanos_per_pattern: 20_000,
    };
    let comparison = compare_adaptive_resched(&dataset, 4, skew, 3)
        .expect("strategies succeed on a non-empty dataset");
    print_adaptive_comparison(&comparison);

    if comparison.reschedules == 0 {
        eprintln!("REGRESSION: the rescheduler never fired on a 20x-skewed worker");
        std::process::exit(1);
    }
    if comparison.adaptive_imbalance >= comparison.cyclic_imbalance {
        eprintln!(
            "REGRESSION: adaptive-resched imbalance {:.3} is not below static cyclic {:.3}",
            comparison.adaptive_imbalance, comparison.cyclic_imbalance
        );
        std::process::exit(1);
    }
    // The NaN check makes a broken (non-finite) likelihood fail the gate too.
    if comparison.max_lnl_drift.is_nan() || comparison.max_lnl_drift > 1e-8 {
        eprintln!(
            "REGRESSION: migration drifted the log likelihood by {:.2e}",
            comparison.max_lnl_drift
        );
        std::process::exit(1);
    }
    println!("adaptive-resched beats the static cyclic baseline on measured wall clock.");
}
