//! Prints the scheduling-strategy comparison table: predicted and measured
//! imbalance plus predicted run time for cyclic, block, weighted-LPT and
//! trace-adaptive scheduling on the default mixed DNA/protein dataset.
//!
//! Run with `cargo run --release -p phylo-bench --bin strategy_report`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use phylo_bench::scheduling::{compare_strategies, default_mixed_dataset, print_comparison};
use phylo_bench::Workload;
use phylo_perfmodel::Platform;

fn main() {
    let dataset = default_mixed_dataset();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    // Platform must have at least as many cores as virtual workers: the
    // 8-thread rows use the paper's 8-core Nehalem, the 16-thread rows its
    // 16-core Barcelona.
    for (workers, platform) in [(8usize, Platform::nehalem()), (16, Platform::barcelona())] {
        let comparison =
            compare_strategies(&dataset, workers, Workload::ModelOptimization, &platform)
                .expect("strategies succeed on a non-empty dataset");
        print_comparison(&comparison);
    }
    println!("weighted-lpt packs by predicted cost (protein ≈25x DNA); trace-adaptive");
    println!("additionally corrects the cost model with a measured warm-up trace.");
}
