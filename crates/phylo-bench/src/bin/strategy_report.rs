//! Prints the scheduling-strategy comparison table: predicted and measured
//! imbalance plus predicted run time for cyclic, block, weighted-LPT and
//! trace-adaptive scheduling on the default mixed DNA/protein dataset.
//!
//! This binary doubles as the CI regression yardstick: it exits non-zero if
//! weighted-LPT's maximum predicted per-worker cost exceeds cyclic's, or
//! fails to beat block's, on the mixed dataset.
//!
//! Run with `cargo run --release -p phylo-bench --bin strategy_report`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use phylo_bench::scheduling::{compare_strategies, default_mixed_dataset, print_comparison};
use phylo_bench::Workload;
use phylo_perfmodel::Platform;
use phylo_telemetry::BenchEnvelope;

fn main() {
    let dataset = default_mixed_dataset();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let mut envelope = BenchEnvelope::new("strategy_report", &dataset.spec.name)
        .run_num("taxa", dataset.spec.taxa as f64)
        .run_num("partitions", dataset.spec.partition_count() as f64)
        .run_num("patterns", dataset.total_patterns() as f64)
        .gate("lpt_vs_cyclic_tolerance", 1e-9)
        .gate("lpt_must_beat_block", 0.0);
    // Platform must have at least as many cores as virtual workers: the
    // 8-thread rows use the paper's 8-core Nehalem, the 16-thread rows its
    // 16-core Barcelona.
    let mut violations = 0usize;
    for (workers, platform) in [(8usize, Platform::nehalem()), (16, Platform::barcelona())] {
        let comparison =
            compare_strategies(&dataset, workers, Workload::ModelOptimization, &platform)
                .expect("strategies succeed on a non-empty dataset");
        print_comparison(&comparison);

        // Regression gate: look rows up by strategy name so reordering or
        // inserting rows cannot silently degrade the check.
        let predicted_max = |name: &str| {
            comparison
                .rows
                .iter()
                .find(|r| r.assignment.strategy() == name)
                .unwrap_or_else(|| panic!("comparison is missing the {name} row"))
                .report
                .predicted_max
        };
        let cyclic = predicted_max("cyclic");
        let block = predicted_max("block");
        let lpt = predicted_max("weighted-lpt");
        envelope.measure(&format!("cyclic_predicted_max_w{workers}"), cyclic);
        envelope.measure(&format!("block_predicted_max_w{workers}"), block);
        envelope.measure(&format!("weighted_lpt_predicted_max_w{workers}"), lpt);
        if lpt > cyclic + 1e-9 {
            let msg = format!(
                "{workers} workers: weighted-lpt max predicted cost {lpt:.3} \
                 exceeds cyclic {cyclic:.3}"
            );
            eprintln!("REGRESSION ({msg})");
            envelope.violation(msg);
            violations += 1;
        }
        if lpt >= block {
            let msg = format!(
                "{workers} workers: weighted-lpt max predicted cost {lpt:.3} \
                 does not beat block {block:.3}"
            );
            eprintln!("REGRESSION ({msg})");
            envelope.violation(msg);
            violations += 1;
        }
    }
    println!("weighted-lpt packs by predicted cost (protein ≈25x DNA); trace-adaptive");
    println!("additionally corrects the cost model with a measured warm-up trace.");
    let path = "BENCH_strategy_report.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if violations > 0 {
        std::process::exit(1);
    }
}
