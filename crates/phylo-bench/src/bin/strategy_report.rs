//! Prints the scheduling-strategy comparison table: predicted and measured
//! imbalance plus predicted run time for cyclic, block, weighted-LPT and
//! trace-adaptive scheduling on the default mixed DNA/protein dataset.
//!
//! This binary doubles as the CI regression yardstick: it exits non-zero if
//! weighted-LPT's maximum predicted per-worker cost exceeds cyclic's, or
//! fails to beat block's, on the mixed dataset.
//!
//! Run with `cargo run --release -p phylo-bench --bin strategy_report`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use phylo_bench::scheduling::{compare_strategies, default_mixed_dataset, print_comparison};
use phylo_bench::Workload;
use phylo_perfmodel::Platform;

fn main() {
    let dataset = default_mixed_dataset();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    // Platform must have at least as many cores as virtual workers: the
    // 8-thread rows use the paper's 8-core Nehalem, the 16-thread rows its
    // 16-core Barcelona.
    let mut violations = 0usize;
    for (workers, platform) in [(8usize, Platform::nehalem()), (16, Platform::barcelona())] {
        let comparison =
            compare_strategies(&dataset, workers, Workload::ModelOptimization, &platform)
                .expect("strategies succeed on a non-empty dataset");
        print_comparison(&comparison);

        // Regression gate: look rows up by strategy name so reordering or
        // inserting rows cannot silently degrade the check.
        let predicted_max = |name: &str| {
            comparison
                .rows
                .iter()
                .find(|r| r.assignment.strategy() == name)
                .unwrap_or_else(|| panic!("comparison is missing the {name} row"))
                .report
                .predicted_max
        };
        let cyclic = predicted_max("cyclic");
        let block = predicted_max("block");
        let lpt = predicted_max("weighted-lpt");
        if lpt > cyclic + 1e-9 {
            eprintln!(
                "REGRESSION ({workers} workers): weighted-lpt max predicted cost {lpt:.3} \
                 exceeds cyclic {cyclic:.3}"
            );
            violations += 1;
        }
        if lpt >= block {
            eprintln!(
                "REGRESSION ({workers} workers): weighted-lpt max predicted cost {lpt:.3} \
                 does not beat block {block:.3}"
            );
            violations += 1;
        }
    }
    println!("weighted-lpt packs by predicted cost (protein ≈25x DNA); trace-adaptive");
    println!("additionally corrects the cost model with a measured warm-up trace.");
    if violations > 0 {
        std::process::exit(1);
    }
}
