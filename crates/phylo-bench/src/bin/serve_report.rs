//! The multi-tenant serving gate: 32 independent sessions (mixed DNA and
//! DNA+protein datasets) served concurrently on ONE shared 4-thread pool
//! versus the same 32 sessions run sequentially — one at a time through
//! the same pool, and back to back on dedicated 4-thread executors.
//!
//! One session has a worker death injected into its second dispatched op
//! (the initial-likelihood evaluate, before any parameter commit), so the
//! gate also exercises the recovery path under multi-tenancy.
//!
//! The binary self-gates (exits non-zero) unless:
//!
//! * concurrent serving beats the 32 sequential runs through the same pool
//!   on aggregate throughput (speedup ≥ 1.05) — the two sides share every
//!   per-op cost, so the ratio isolates what fused cross-tenant barriers
//!   buy and holds on any host,
//! * concurrent serving also stays within a parity bound of 32 dedicated
//!   per-session executors run back to back (≥ 0.80×): on a many-core
//!   host the pool wins this outright, on the single-core CI box the two
//!   are at parity, and a transport regression (e.g. a linger window on
//!   the hot path) drags it far below the bound,
//! * within each session class, the p95 session latency stays within 1.5×
//!   the class mean (weighted fair scheduling, no starved tenant),
//! * every session's final log likelihood is bit-identical to its solo run
//!   — including the session whose worker died (exactly one recovery
//!   there, zero everywhere else, exactly one pool panic observed),
//! * fused batches actually shared barriers across tenants
//!   (`max_batch_fused > 1`, fewer batches than ops).
//!
//! Run with `cargo run --release -p phylo-bench --bin serve_report`.

use std::time::Duration;

use phylo_bench::serving::{
    compare_serving, mixed_serving_fleet, p95, print_serve_comparison, CLASS_DNA, CLASS_MIXED,
};
use phylo_serve::TenantStrategy;
use phylo_telemetry::BenchEnvelope;

const SESSIONS: usize = 32;
const WORKERS: usize = 4;
const FAULT_SESSION: usize = 0;
const MIN_SPEEDUP: f64 = 1.05;
const MIN_DEDICATED_SPEEDUP: f64 = 0.80;
const MAX_P95_OVER_MEAN: f64 = 1.5;

fn main() {
    let fleet = mixed_serving_fleet(SESSIONS, 2026);
    println!(
        "fleet: {} sessions ({} dna, {} mixed dna+protein) on a {}-thread shared pool; \
         worker death injected into session {}\n",
        fleet.len(),
        fleet.iter().filter(|s| s.class == CLASS_DNA).count(),
        fleet.iter().filter(|s| s.class == CLASS_MIXED).count(),
        WORKERS,
        FAULT_SESSION
    );
    // Locality-tuned strategy: a narrow fusion width with a large service
    // quantum keeps only ~`max_batch` tenants' state hot on the workers'
    // caches at a time (32 interleaved tenants thrash them), while stride
    // accounting still spreads service fairly across the whole fleet.
    let strategy = TenantStrategy {
        max_sessions: SESSIONS * 2,
        max_batch: 4,
        batch_window: Duration::ZERO,
        quantum: 64,
    };
    let comparison = compare_serving(&fleet, WORKERS, strategy, FAULT_SESSION);
    print_serve_comparison(&comparison);

    let mut envelope = BenchEnvelope::new("serve_report", "mixed-serving-fleet")
        .run_num("sessions", SESSIONS as f64)
        .run_num("workers", WORKERS as f64)
        .run_num("fault_session", FAULT_SESSION as f64)
        .gate("min_aggregate_speedup", MIN_SPEEDUP)
        .gate("min_dedicated_speedup", MIN_DEDICATED_SPEEDUP)
        .gate("max_p95_over_mean", MAX_P95_OVER_MEAN)
        .gate("max_lnl_bit_drift", 0.0);
    envelope.measure("aggregate_speedup", comparison.aggregate_speedup());
    envelope.measure("dedicated_speedup", comparison.dedicated_speedup());
    envelope.measure(
        "sequential_total_s",
        comparison.sequential_total.as_secs_f64(),
    );
    envelope.measure(
        "serial_submission_total_s",
        comparison.serial_submission_total.as_secs_f64(),
    );
    envelope.measure(
        "concurrent_wall_s",
        comparison.concurrent_wall.as_secs_f64(),
    );
    envelope.measure("ops_dispatched", comparison.stats.ops_dispatched as f64);
    envelope.measure("batches", comparison.stats.batches as f64);
    envelope.measure("max_batch_fused", comparison.stats.max_batch_fused as f64);
    envelope.measure("worker_panics", comparison.stats.worker_panics as f64);

    // Gate 1: aggregate throughput — concurrent serving must beat serving
    // the same fleet one session at a time on the same pool.
    let speedup = comparison.aggregate_speedup();
    if speedup < MIN_SPEEDUP {
        let msg = format!(
            "concurrent serving speedup {speedup:.3}x over serial submission is below the \
             {MIN_SPEEDUP:.2}x gate (serial {:.2}s vs concurrent {:.2}s)",
            comparison.serial_submission_total.as_secs_f64(),
            comparison.concurrent_wall.as_secs_f64()
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }

    // Gate 1b: parity bound against dedicated per-session executors — a
    // transport regression on the hot path shows up here.
    let dedicated = comparison.dedicated_speedup();
    if dedicated < MIN_DEDICATED_SPEEDUP {
        let msg = format!(
            "concurrent serving fell to {dedicated:.3}x of the dedicated sequential runs \
             (bound {MIN_DEDICATED_SPEEDUP:.2}x): the pool's per-op transport regressed \
             (dedicated {:.2}s vs concurrent {:.2}s)",
            comparison.sequential_total.as_secs_f64(),
            comparison.concurrent_wall.as_secs_f64()
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }

    // Gate 2: fairness — within each class, p95 latency near the mean.
    for class in [CLASS_DNA, CLASS_MIXED] {
        let latencies = comparison.class_latencies(class);
        let mean = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
        let tail = p95(&latencies);
        let ratio = tail / mean.max(1e-12);
        envelope.measure(&format!("{class}_latency_mean_s"), mean);
        envelope.measure(&format!("{class}_latency_p95_s"), tail);
        envelope.measure(&format!("{class}_p95_over_mean"), ratio);
        if ratio > MAX_P95_OVER_MEAN {
            let msg = format!(
                "{class} sessions' p95 latency {tail:.3}s is {ratio:.2}x their mean {mean:.3}s \
                 (gate {MAX_P95_OVER_MEAN:.2}x): the pool starved part of the class"
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
        }
    }

    // Gate 3: correctness — pooled lnL bit-identical to the dedicated run,
    // recovery confined to the faulted session.
    let mut drifted = 0usize;
    for (i, record) in comparison.sessions.iter().enumerate() {
        if record.outcome.final_log_likelihood.to_bits() != record.solo.final_lnl.to_bits() {
            drifted += 1;
            let msg = format!(
                "session {} ({}) drifted on the shared pool: solo {:.12} vs pooled {:.12}",
                i, record.label, record.solo.final_lnl, record.outcome.final_log_likelihood
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
        }
        let expected = usize::from(i == FAULT_SESSION);
        if record.outcome.recoveries.len() != expected {
            let msg = format!(
                "session {} ({}) absorbed {} worker recoveries, expected {expected}",
                i,
                record.label,
                record.outcome.recoveries.len()
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
        }
    }
    envelope.measure("sessions_drifted", drifted as f64);
    if comparison.stats.worker_panics != 1 {
        let msg = format!(
            "expected exactly 1 injected pool panic, observed {}",
            comparison.stats.worker_panics
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }

    // Gate 4: the pool actually fused cross-tenant barriers.
    if comparison.stats.max_batch_fused <= 1
        || comparison.stats.batches >= comparison.stats.ops_dispatched
    {
        let msg = format!(
            "{} concurrent tenants never shared a barrier ({} ops, {} batches, max fused {})",
            SESSIONS,
            comparison.stats.ops_dispatched,
            comparison.stats.batches,
            comparison.stats.max_batch_fused
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }

    let path = "BENCH_serve.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if !envelope.passed() {
        std::process::exit(1);
    }
    println!(
        "\n{SESSIONS} concurrent sessions on one {WORKERS}-thread pool beat the same \
         {SESSIONS} sessions served one at a time {speedup:.2}x on aggregate throughput \
         ({dedicated:.2}x vs dedicated executors), with every session bit-identical to \
         its dedicated run — including the one whose worker died."
    );
}
