//! Runs every experiment of the paper in sequence (Figures 3-6 plus the three
//! prose results) and prints their tables. Used to populate EXPERIMENTS.md.
//! Control the dataset size with PLF_SCALE (default 0.02).

use phylo_bench::{
    generate_scaled, print_figure, run_figure_traces, run_traced, trace_summary, Workload,
};
use phylo_data::PartitionedPatterns;
use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_perfmodel::Platform;
use phylo_seqgen::datasets::{paper_real_world, paper_simulated, RealWorldKind};
use std::sync::Arc;

fn main() {
    // Figures 3-5: tree searches with per-partition branch lengths.
    let figures = [
        (
            "Figure 3: d50_50000 / p1000",
            paper_simulated(50, 50_000, 1_000, 350),
        ),
        (
            "Figure 4: d100_50000 / p1000",
            paper_simulated(100, 50_000, 1_000, 351),
        ),
        (
            "Figure 5: r125_19839 (34 variable-length partitions)",
            paper_real_world(RealWorldKind::Mammal125),
        ),
    ];
    for (title, spec) in figures {
        let dataset = generate_scaled(&spec);
        let traces = run_figure_traces(
            &dataset,
            BranchLengthMode::PerPartition,
            Workload::TreeSearch,
        );
        print_figure(title, &dataset, &traces);
    }

    // Figure 6: speedup comparison on the Nehalem.
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 352));
    let mut unpartitioned = dataset.clone();
    unpartitioned.patterns = Arc::new(PartitionedPatterns::merge_unpartitioned(&dataset.patterns));
    let platform = Platform::nehalem();
    println!("=== Figure 6: speedups on the Nehalem (unpartitioned vs newPAR vs oldPAR) ===");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "Threads", "Unpartitioned", "New", "Old"
    );
    let (seq_unpart, _) = run_traced(
        &unpartitioned,
        1,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let (seq_part, _) = run_traced(
        &dataset,
        1,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    for threads in [2usize, 4, 8] {
        let (unpart, _) = run_traced(
            &unpartitioned,
            threads,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            Workload::TreeSearch,
        );
        let (new_part, _) = run_traced(
            &dataset,
            threads,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            Workload::TreeSearch,
        );
        let (old_part, _) = run_traced(
            &dataset,
            threads,
            ParallelScheme::Old,
            BranchLengthMode::PerPartition,
            Workload::TreeSearch,
        );
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            threads,
            platform.speedup(&seq_unpart, &unpart),
            platform.speedup(&seq_part, &new_part),
            platform.speedup(&seq_part, &old_part),
        );
    }
    println!();

    // Prose A: joint branch lengths.
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 353));
    println!("=== Prose A: joint branch lengths (model optimization, 8 threads) ===");
    let (old_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::Old,
        BranchLengthMode::Joint,
        Workload::ModelOptimization,
    );
    let (new_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::New,
        BranchLengthMode::Joint,
        Workload::ModelOptimization,
    );
    trace_summary("oldPAR", &old_trace);
    trace_summary("newPAR", &new_trace);
    let p = Platform::nehalem();
    println!(
        "  Nehalem predicted improvement: {:.1}% (paper: ~5%)\n",
        100.0 * (1.0 - p.predict_runtime(&new_trace) / p.predict_runtime(&old_trace))
    );

    // Prose B: model optimization on a fixed tree, per-partition branches.
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 354));
    println!("=== Prose B: model optimization on a fixed tree (per-partition branch lengths, 8 threads) ===");
    let (old_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::ModelOptimization,
    );
    let (new_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::ModelOptimization,
    );
    trace_summary("oldPAR", &old_trace);
    trace_summary("newPAR", &new_trace);
    println!(
        "  Nehalem predicted improvement: {:.1}% (paper: 5-10%)\n",
        100.0 * (1.0 - p.predict_runtime(&new_trace) / p.predict_runtime(&old_trace))
    );

    // Prose C: protein vs DNA.
    println!("=== Prose C: protein vs DNA improvement (tree search, 8 threads, Barcelona) ===");
    let barcelona = Platform::barcelona();
    let protein = generate_scaled(&paper_real_world(RealWorldKind::Viral26));
    let (p_old, _) = run_traced(
        &protein,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let (p_new, _) = run_traced(
        &protein,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let dna = generate_scaled(&paper_simulated(26, 21_000, 1_000, 355));
    let (d_old, _) = run_traced(
        &dna,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    let (d_new, _) = run_traced(
        &dna,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::TreeSearch,
    );
    println!(
        "  protein improvement {:.2}x, DNA improvement {:.2}x (paper: protein gains only 5-10%)",
        barcelona.predict_runtime(&p_old) / barcelona.predict_runtime(&p_new),
        barcelona.predict_runtime(&d_old) / barcelona.predict_runtime(&d_new)
    );
}
