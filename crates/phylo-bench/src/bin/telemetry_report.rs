//! Self-gating telemetry report: measures the wall-clock overhead of the
//! telemetry subsystem on a real threaded optimize run, checks the event
//! stream for coherence against the kernel's own statistics, and renders a
//! per-region ASCII timeline (worker lanes, convergence-mask patterns,
//! reschedule markers) from a mask-aware adaptive run.
//!
//! Two workloads:
//!
//! * **overhead** — the default mixed DNA/protein dataset on a
//!   [`ThreadedExecutor`], best-of-N with telemetry fully on (regions +
//!   probes) vs fully off. Gates: on/off wall-clock ratio ≤ 1.05, and the
//!   final log likelihood **bit-identical** between the two (telemetry must
//!   never perturb a numeric result).
//! * **timeline** — the staggered-convergence dataset on virtual workers
//!   with the mask-aware within-round rescheduler, so the rendered timeline
//!   shows shrinking `#`/`.` masks and `>>>` reschedule markers.
//!
//! Writes the unified bench envelope to `BENCH_telemetry.json` and exits
//! non-zero on any gate violation.
//!
//! Run with `cargo run --release -p phylo-bench --bin telemetry_report`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use std::time::Instant;

use phylo_bench::scheduling::{
    default_categories, default_mixed_dataset, staggered_convergence_dataset,
};
use phylo_kernel::cost::TraceUnit;
use phylo_kernel::LikelihoodKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{
    optimize_model_parameters, optimize_model_parameters_adaptive, OptimizationReport,
    OptimizerConfig, ParallelScheme,
};
use phylo_parallel::{ThreadedExecutor, TracingExecutor};
use phylo_sched::{
    Assignment, Cyclic, PatternCosts, ReschedulePolicy, Rescheduler, ScheduleStrategy,
};
use phylo_seqgen::datasets::GeneratedDataset;
use phylo_telemetry::{
    BenchEnvelope, Telemetry, TelemetryConfig, TelemetryEvent, TelemetrySnapshot,
};

/// Best-of-N repeats for the overhead measurement; the minimum is robust to
/// scheduler noise on a shared CI host.
const REPEATS: usize = 5;
/// Overhead gate: telemetry-on wall clock must stay within 5% of off.
const OVERHEAD_MAX: f64 = 1.05;
/// Worker threads for the overhead run.
const THREADS: usize = 4;
/// Region lines printed before the timeline elides (markers always print).
const TIMELINE_REGION_LINES: usize = 48;

fn cyclic_assignment(dataset: &GeneratedDataset, workers: usize) -> (PatternCosts, Assignment) {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let assignment = Cyclic
        .assign(&costs, workers)
        .expect("cyclic accepts any non-empty dataset");
    (costs, assignment)
}

/// One timed threaded optimize run; `telemetry: None` leaves the kernel with
/// the zero-cost disabled handle.
fn threaded_run(
    dataset: &GeneratedDataset,
    assignment: &Assignment,
    telemetry: Option<&Telemetry>,
) -> (f64, OptimizationReport, u64) {
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = ThreadedExecutor::from_assignment(
        &dataset.patterns,
        assignment,
        dataset.tree.node_capacity(),
        &categories,
    )
    .expect("assignment was built for this dataset");
    let mut kernel = LikelihoodKernel::try_new(
        std::sync::Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    )
    .unwrap();
    if let Some(t) = telemetry {
        kernel.set_telemetry(t);
    }
    let config = OptimizerConfig::new(ParallelScheme::New);
    let start = Instant::now();
    let report =
        optimize_model_parameters(&mut kernel, &config).expect("no worker faults are injected");
    let seconds = start.elapsed().as_secs_f64();
    (seconds, report, kernel.stats().table_builds)
}

/// Runs the staggered-convergence workload with the mask-aware rescheduler
/// and telemetry on (probes off: one event per region, not per probe).
fn timeline_run(dataset: &GeneratedDataset) -> (TelemetrySnapshot, usize) {
    let workers = 16;
    let (costs, assignment) = cyclic_assignment(dataset, workers);
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = TracingExecutor::from_assignment(
        &dataset.patterns,
        &assignment,
        dataset.tree.node_capacity(),
        &categories,
    )
    .expect("assignment was built for this dataset");
    let mut kernel = LikelihoodKernel::try_new(
        std::sync::Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    )
    .unwrap();
    let telemetry = Telemetry::new(
        TelemetryConfig::default()
            .probes(false)
            .event_capacity(1 << 20),
    );
    kernel.set_telemetry(&telemetry);
    let policy = ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 12,
        unit: TraceUnit::Flops,
        max_reschedules: 4,
        mask_aware: true,
        mask_decay: 0.85,
    };
    let mut rescheduler = Rescheduler::with_telemetry(policy, &telemetry);
    let config = OptimizerConfig::new(ParallelScheme::New);
    let report = optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)
        .expect("virtual executors cannot lose workers");
    (telemetry.snapshot(), report.events.len())
}

/// One worker lane character: the worker's share of the region's slowest
/// lane, on a ten-step ASCII density ramp.
fn lane_char(seconds: f64, max: f64) -> char {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    if max <= 0.0 {
        return ' ';
    }
    let idx = ((seconds / max) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

fn mask_string(mask: &[bool]) -> String {
    mask.iter().map(|&a| if a { '#' } else { '.' }).collect()
}

/// Renders the per-region timeline: one line per region (sequence number,
/// op kind, convergence mask, wall time, per-worker load lanes), with
/// reschedule / death / recovery / round markers inline. Region lines elide
/// after `max_region_lines`; markers always print.
fn render_timeline(events: &[TelemetryEvent], max_region_lines: usize) -> String {
    use std::collections::HashMap;
    use std::fmt::Write;

    let mut out = String::new();
    let mut masks: HashMap<u64, String> = HashMap::new();
    let mut region_lines = 0usize;
    let mut elided = 0usize;
    for event in events {
        match event {
            TelemetryEvent::RegionStart { region, mask, .. } => {
                masks.insert(*region, mask_string(mask));
            }
            TelemetryEvent::RegionEnd {
                t,
                region,
                kind,
                seconds,
                worker_seconds,
                ..
            } => {
                let mask = masks.remove(region).unwrap_or_default();
                if region_lines >= max_region_lines {
                    elided += 1;
                    continue;
                }
                region_lines += 1;
                let max = worker_seconds.iter().copied().fold(0.0f64, f64::max);
                let lanes: String = worker_seconds.iter().map(|&s| lane_char(s, max)).collect();
                let _ = writeln!(
                    out,
                    "{t:>9.4}s  #{region:<5} {kind:<11} [{mask}] {:>9.1}us |{lanes}|",
                    seconds * 1e6
                );
            }
            TelemetryEvent::Reschedule {
                t,
                round,
                within_round,
                measured_imbalance,
                predicted_imbalance,
            } => {
                let when = if *within_round {
                    "within round"
                } else {
                    "round boundary"
                };
                let _ = writeln!(
                    out,
                    "{t:>9.4}s  >>> reschedule ({when}, round {round}): measured imbalance \
                     {measured_imbalance:.3} -> predicted {predicted_imbalance:.3}"
                );
            }
            TelemetryEvent::WorkerDeath { t, worker, region } => {
                let _ = writeln!(
                    out,
                    "{t:>9.4}s  !!! worker {worker} died in region #{region}"
                );
            }
            TelemetryEvent::WorkerRecovery { t, worker, attempt } => {
                let _ = writeln!(
                    out,
                    "{t:>9.4}s  +++ worker {worker} recovered (attempt {attempt})"
                );
            }
            TelemetryEvent::OptimizerRound {
                t,
                round,
                log_likelihood,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{t:>9.4}s  === round {round} done: lnL = {log_likelihood:.6}"
                );
            }
            _ => {}
        }
    }
    if elided > 0 {
        let _ = writeln!(out, "           ... ({elided} more regions elided)");
    }
    out
}

fn main() {
    let dataset = default_mixed_dataset();
    println!(
        "overhead dataset: {} ({} taxa, {} partitions, {} patterns), {THREADS} threads, \
         best of {REPEATS}",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let (_, assignment) = cyclic_assignment(&dataset, THREADS);

    // Telemetry OFF: the disabled handle, one pointer check per site.
    let mut off_best = f64::INFINITY;
    let mut off_lnl = f64::NAN;
    for _ in 0..REPEATS {
        let (seconds, report, _) = threaded_run(&dataset, &assignment, None);
        off_best = off_best.min(seconds);
        off_lnl = report.final_log_likelihood;
    }

    // Telemetry ON: everything recorded, including per-probe events.
    let mut on_best = f64::INFINITY;
    let mut on_lnl = f64::NAN;
    let mut on_rounds = 0usize;
    let mut kernel_builds = 0u64;
    let mut snapshot: Option<TelemetrySnapshot> = None;
    for _ in 0..REPEATS {
        let telemetry = Telemetry::new(TelemetryConfig::default().event_capacity(1 << 21));
        let (seconds, report, builds) = threaded_run(&dataset, &assignment, Some(&telemetry));
        on_best = on_best.min(seconds);
        on_lnl = report.final_log_likelihood;
        on_rounds = report.rounds;
        kernel_builds = builds;
        snapshot = Some(telemetry.snapshot());
    }
    let snap = snapshot.expect("REPEATS > 0");
    let ratio = on_best / off_best;
    let drift = (on_lnl - off_lnl).abs();
    println!(
        "telemetry off: {:>8.1}ms   on: {:>8.1}ms   overhead ratio: {ratio:.4} (gate <= {OVERHEAD_MAX})",
        off_best * 1e3,
        on_best * 1e3
    );
    println!("lnL off: {off_lnl:.9}   on: {on_lnl:.9}   drift: {drift:.3e} (gate: exactly 0)");
    let c = &snap.counters;
    println!(
        "events: {} recorded, {} dropped; {} regions, {} table builds, {} newton + {} brent \
         probes, tip hit rate {:.3}",
        c.events_recorded,
        c.events_dropped,
        c.regions_completed,
        c.table_builds,
        c.newton_probes,
        c.brent_probes,
        snap.tip_cache_hit_rate()
    );

    let timeline_dataset = staggered_convergence_dataset(2026);
    let (timeline_snap, timeline_reschedules) = timeline_run(&timeline_dataset);
    println!(
        "\ntimeline dataset: {} (16 virtual workers, mask-aware rescheduler)",
        timeline_dataset.spec.name
    );
    println!(
        "--- per-region timeline ({} regions, {} reschedules; lanes are per-worker load) ---",
        timeline_snap.counters.regions_completed, timeline_reschedules
    );
    print!(
        "{}",
        render_timeline(&timeline_snap.events, TIMELINE_REGION_LINES)
    );

    let mut envelope = BenchEnvelope::new("telemetry_report", &dataset.spec.name)
        .run_num("taxa", dataset.spec.taxa as f64)
        .run_num("partitions", dataset.spec.partition_count() as f64)
        .run_num("patterns", dataset.total_patterns() as f64)
        .run_num("threads", THREADS as f64)
        .run_num("repeats", REPEATS as f64)
        .run_str("timeline_dataset", &timeline_dataset.spec.name)
        .gate("overhead_max", OVERHEAD_MAX)
        .gate("drift_max", 0.0);
    envelope.measure("telemetry_off_seconds", off_best);
    envelope.measure("telemetry_on_seconds", on_best);
    envelope.measure("overhead_ratio", ratio);
    envelope.measure("lnl_drift_abs", drift);
    envelope.measure("regions_started", c.regions_started as f64);
    envelope.measure("regions_completed", c.regions_completed as f64);
    envelope.measure("events_recorded", c.events_recorded as f64);
    envelope.measure("events_dropped", c.events_dropped as f64);
    envelope.measure("table_builds_telemetry", c.table_builds as f64);
    envelope.measure("table_builds_kernel", kernel_builds as f64);
    envelope.measure("optimizer_rounds", c.optimizer_rounds as f64);
    envelope.measure("newton_probes", c.newton_probes as f64);
    envelope.measure("brent_probes", c.brent_probes as f64);
    envelope.measure("tip_hit_rate", snap.tip_cache_hit_rate());
    envelope.measure("timeline_reschedules", timeline_reschedules as f64);
    envelope.measure(
        "timeline_regions",
        timeline_snap.counters.regions_completed as f64,
    );

    // The NaN checks make a broken (empty or non-finite) measurement fail
    // the gate rather than slip past a <= comparison.
    if ratio.is_nan() || ratio > OVERHEAD_MAX {
        let msg = format!(
            "telemetry overhead ratio {ratio:.4} exceeds {OVERHEAD_MAX} \
             (on {on_best:.4}s vs off {off_best:.4}s)"
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if on_lnl.to_bits() != off_lnl.to_bits() {
        let msg =
            format!("telemetry perturbed the log likelihood: off {off_lnl:.12} vs on {on_lnl:.12}");
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if c.regions_started != c.regions_completed || c.worker_deaths != 0 {
        let msg = format!(
            "incoherent event stream: {} regions started, {} completed, {} deaths",
            c.regions_started, c.regions_completed, c.worker_deaths
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if c.table_builds != kernel_builds {
        let msg = format!(
            "telemetry counted {} table builds but the kernel reports {}",
            c.table_builds, kernel_builds
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if c.optimizer_rounds as usize != on_rounds {
        let msg = format!(
            "telemetry counted {} optimizer rounds but the report says {}",
            c.optimizer_rounds, on_rounds
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if c.events_dropped != 0 {
        let msg = format!(
            "{} events dropped: the event capacity is too small for the workload",
            c.events_dropped
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }
    if timeline_reschedules == 0 {
        let msg = "the timeline run's mask-aware rescheduler never fired".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
    }

    let path = "BENCH_telemetry.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if !envelope.passed() {
        std::process::exit(1);
    }
    println!("telemetry overhead within gate; event stream coherent; lnL bit-identical.");
}
