//! Real wall-clock measurement on the reproduction host: the same model
//! optimization workload executed with the persistent-thread executor under
//! oldPAR and newPAR at increasing thread counts. Complements the platform
//! model predictions with actual measurements (absolute numbers depend on this
//! machine; the old-vs-new ordering should not).

use phylo_bench::{dataset_scale, generate_scaled};
use phylo_kernel::LikelihoodKernel;
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{optimize_model_parameters, OptimizerConfig, ParallelScheme};
use phylo_parallel::{schedule, Cyclic, ThreadedExecutor};
use phylo_seqgen::datasets::paper_simulated;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 356));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut thread_counts = vec![1usize, 2, 4, 8, 16];
    thread_counts.retain(|&t| t <= cores);

    println!(
        "=== Measured wall-clock on this host ({cores} cores), d50_50000/p1000 at scale {} ===",
        dataset_scale()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Threads", "old [s]", "new [s]", "old/new"
    );

    let mut baseline = None;
    for &threads in &thread_counts {
        let mut times = Vec::new();
        for scheme in [ParallelScheme::Old, ParallelScheme::New] {
            let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
            let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
            let assignment = schedule(&dataset.patterns, &categories, threads, &Cyclic)
                .expect("thread counts in this experiment are positive");
            let executor = ThreadedExecutor::from_assignment(
                &dataset.patterns,
                &assignment,
                dataset.tree.node_capacity(),
                &categories,
            )
            .expect("assignment was built for this dataset");
            let mut kernel = LikelihoodKernel::try_new(
                Arc::clone(&dataset.patterns),
                dataset.tree.clone(),
                models,
                executor,
            )
            .unwrap();
            let config = OptimizerConfig::new(scheme);
            let start = Instant::now();
            let report = optimize_model_parameters(&mut kernel, &config)
                .expect("measurement run must not lose workers");
            times.push((start.elapsed().as_secs_f64(), report.final_log_likelihood));
        }
        let (t_old, _) = times[0];
        let (t_new, _) = times[1];
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.2}",
            threads,
            t_old,
            t_new,
            t_old / t_new
        );
        if threads == 1 {
            baseline = Some((t_old, t_new));
        }
    }
    if let Some((seq_old, seq_new)) = baseline {
        println!();
        println!("(sequential reference: old {seq_old:.3}s, new {seq_new:.3}s)");
    }
}
