//! Self-gating report for the shared per-branch table layer
//! (`phylo_kernel::tables`): per-region throughput of the table-based
//! kernels against the per-call reference on the default mixed DNA/protein
//! dataset, with the numerical-agreement and rescheduling-drift gates that
//! make the speedup a regression gate instead of a claim.
//!
//! Six checks, any failure exits non-zero:
//!
//! 1. **Agreement** — per-partition log likelihoods of the shared-table and
//!    per-call engines agree to ≤ 1e-12 (they are bit-for-bit identical by
//!    construction).
//! 2. **Throughput** — an identical likelihood + branch-optimization
//!    workload on 16 virtual workers must run ≥ 1.3× faster per region with
//!    shared tables (the per-call path makes all 16 workers redo the same
//!    O(states³·categories) eigen work per branch; the master builds each
//!    table once).
//! 3. **Dispatch** — the cache-blocked, width-specialized inner loops
//!    (`KernelDispatch::Blocked`, the engine default) must run repeated
//!    cold-CLV evaluation sweeps ≥ 2.5× faster per region than the scalar
//!    tabled reference (`KernelDispatch::Scalar`), with per-partition lnL
//!    agreement ≤ 1e-12 and bit-for-bit identity on DNA partitions. The
//!    sweep times `newview` + `evaluate` only: the sum-table/derivative ops
//!    are dispatch-independent and would dilute the ratio.
//! 4. **Calibration** — measured per-pattern cost ratio protein/DNA under
//!    the blocked kernel (the dispatch the scheduler actually packs for),
//!    gated against the analytic blocked ratio: the analytic model must stay
//!    within a factor 2 of the measurement, and protein must measure
//!    costlier than DNA (container timers are noisy, hence the loose floor).
//! 5. **Drift** — the staggered-convergence mask-aware rescheduling runs
//!    (tables on, the engine default) preserve the log likelihood to ≤ 1e-8
//!    across every mid-run migration.
//!
//! The measured numbers are also written to `BENCH_kernel_tables.json` in
//! the working directory — the first entry of the perf trajectory.
//!
//! Run with `cargo run --release -p phylo-bench --bin kernel_tables`.
//! Set `PLF_SCALE` (0, 1] to change the dataset size.

use std::sync::Arc;
use std::time::Instant;

use phylo_bench::scheduling::{compare_mask_resched, default_mixed_dataset};
use phylo_data::DataType;
use phylo_kernel::{KernelDispatch, LikelihoodKernel, SequentialKernel};
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{optimize_all_branches, OptimizerConfig, ParallelScheme};
use phylo_parallel::{schedule, Cyclic, TracingExecutor};
use phylo_perfmodel::CostCalibration;
use phylo_seqgen::GeneratedDataset;
use phylo_telemetry::BenchEnvelope;

const THROUGHPUT_GATE: f64 = 1.3;
const DISPATCH_GATE: f64 = 2.5;
const AGREEMENT_GATE: f64 = 1e-12;
const MODEL_DRIFT_FACTOR_GATE: f64 = 2.0;
const DRIFT_GATE: f64 = 1e-8;
const VIRTUAL_WORKERS: usize = 16;

/// One timed run of the standard workload (full likelihood + one
/// branch-smoothing pass) on `VIRTUAL_WORKERS` virtual workers. The workload
/// is deterministic and bit-for-bit identical for both kernel paths, so the
/// wall-clock ratio is a clean per-region throughput ratio.
struct WorkloadRun {
    seconds: f64,
    regions: u64,
    log_likelihood: f64,
}

fn run_workload(ds: &GeneratedDataset, shared_tables: bool) -> WorkloadRun {
    let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
    let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let assignment =
        schedule(&ds.patterns, &cats, VIRTUAL_WORKERS, &Cyclic).expect("non-empty dataset");
    let exec =
        TracingExecutor::from_assignment(&ds.patterns, &assignment, ds.tree.node_capacity(), &cats)
            .expect("assignment matches dataset");
    let mut kernel =
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
            .expect("consistent engine parts");
    kernel.set_shared_tables(shared_tables);
    let config = OptimizerConfig::search_phase(ParallelScheme::New);
    let start = Instant::now();
    let _ = kernel
        .try_log_likelihood()
        .expect("virtual workers cannot die");
    let (log_likelihood, _) =
        optimize_all_branches(&mut kernel, None, &config).expect("optimization succeeds");
    WorkloadRun {
        seconds: start.elapsed().as_secs_f64(),
        regions: kernel.sync_events(),
        log_likelihood,
    }
}

/// Best-of-`reps` wall clock for one configuration (minimum is the standard
/// noise-robust estimator for deterministic workloads; the headroom between
/// the measured ≈1.6x and the 1.3x gate absorbs the residual CI jitter).
fn best_of(ds: &GeneratedDataset, shared_tables: bool, reps: usize) -> WorkloadRun {
    (0..reps)
        .map(|_| run_workload(ds, shared_tables))
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("at least one rep")
}

/// Best-of-`reps` seconds for one full cold-CLV evaluation sweep (every
/// partition's newview chain plus the root evaluation) under the kernel's
/// currently selected dispatch, plus the per-partition log likelihoods.
fn cold_eval_sweep(kernel: &mut SequentialKernel, reps: usize) -> (f64, Vec<f64>) {
    let root = kernel.default_root_branch();
    let mask = kernel.full_mask();
    let mut best = f64::INFINITY;
    let mut lnl = Vec::new();
    for _ in 0..reps {
        kernel.invalidate_all();
        let start = Instant::now();
        lnl = kernel
            .try_log_likelihood_partitions(root, &mask)
            .expect("sequential evaluation succeeds");
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, lnl)
}

/// Measured seconds of likelihood work per pattern for one partition:
/// repeated single-partition evaluations from cold CLVs on the tabled
/// sequential engine.
fn seconds_per_pattern(kernel: &mut SequentialKernel, partition: usize, reps: usize) -> f64 {
    let root = kernel.default_root_branch();
    let mask = kernel.single_mask(partition);
    let patterns = kernel.patterns().partitions[partition].pattern_count();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        kernel.invalidate_all();
        let start = Instant::now();
        let _ = kernel
            .try_log_likelihood_partitions(root, &mask)
            .expect("sequential evaluation succeeds");
        best = best.min(start.elapsed().as_secs_f64());
    }
    best / patterns as f64
}

fn main() {
    let dataset = default_mixed_dataset();
    println!(
        "dataset: {} ({} taxa, {} partitions, {} patterns)\n",
        dataset.spec.name,
        dataset.spec.taxa,
        dataset.spec.partition_count(),
        dataset.total_patterns()
    );
    let mut envelope = BenchEnvelope::new("kernel_tables", &dataset.spec.name)
        .run_num("taxa", dataset.spec.taxa as f64)
        .run_num("partitions", dataset.spec.partition_count() as f64)
        .run_num("patterns", dataset.total_patterns() as f64)
        .run_num("virtual_workers", VIRTUAL_WORKERS as f64)
        .run_str("mode", "best-of-5")
        .gate("throughput_min", THROUGHPUT_GATE)
        .gate("dispatch_min", DISPATCH_GATE)
        .gate("agreement_max", AGREEMENT_GATE)
        .gate("model_drift_factor_max", MODEL_DRIFT_FACTOR_GATE)
        .gate("drift_max", DRIFT_GATE);
    let mut violations = 0usize;

    // 1. Agreement: shared tables vs per-call reference, per-partition lnL.
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let mut tabled = SequentialKernel::build(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models.clone(),
    )
    .unwrap();
    let mut reference =
        SequentialKernel::build(Arc::clone(&dataset.patterns), dataset.tree.clone(), models)
            .unwrap();
    reference.set_shared_tables(false);
    let mask = tabled.full_mask();
    let root = tabled.default_root_branch();
    let a = tabled
        .try_log_likelihood_partitions(root, &mask)
        .expect("tabled evaluation");
    let r = reference
        .try_log_likelihood_partitions(root, &mask)
        .expect("reference evaluation");
    let agreement: f64 = a
        .iter()
        .zip(r.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max);
    println!(
        "agreement: max per-partition |Δ lnL| = {agreement:.3e} (gate ≤ {AGREEMENT_GATE:.0e})"
    );
    if agreement.is_nan() || agreement > AGREEMENT_GATE {
        let msg = "table kernels disagree with the per-call reference".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }

    // 2. Per-region throughput on 16 virtual workers.
    let with_tables = best_of(&dataset, true, 5);
    let per_call = best_of(&dataset, false, 5);
    assert_eq!(
        with_tables.regions, per_call.regions,
        "identical workloads must issue identical region counts"
    );
    let lnl_gap = (with_tables.log_likelihood - per_call.log_likelihood).abs();
    let ratio = per_call.seconds / with_tables.seconds;
    println!(
        "\nthroughput ({} virtual workers, {} regions):",
        VIRTUAL_WORKERS, per_call.regions
    );
    println!(
        "  per-call   {:>8.3} s  ({:.1} regions/s)",
        per_call.seconds,
        per_call.regions as f64 / per_call.seconds
    );
    println!(
        "  shared     {:>8.3} s  ({:.1} regions/s)",
        with_tables.seconds,
        with_tables.regions as f64 / with_tables.seconds
    );
    println!("  ratio      {ratio:>8.2}x  (gate ≥ {THROUGHPUT_GATE}x)   |Δ lnL| = {lnl_gap:.2e}");
    if ratio.is_nan() || ratio < THROUGHPUT_GATE {
        let msg = format!(
            "shared tables only {ratio:.2}x faster than per-call (gate {THROUGHPUT_GATE}x)"
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }
    if lnl_gap.is_nan() || lnl_gap > 1e-8 {
        let msg = "the two paths optimized to different likelihoods".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }

    // 3. Blocked vs scalar dispatch on repeated cold-CLV evaluation sweeps.
    // `tabled` currently runs the blocked default; a second engine is pinned
    // to the scalar tabled reference.
    let mut scalar = SequentialKernel::build(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition),
    )
    .unwrap();
    scalar.set_dispatch(KernelDispatch::Scalar);
    assert_eq!(tabled.dispatch(), KernelDispatch::Blocked, "fast default");
    let (blocked_seconds, blocked_lnl) = cold_eval_sweep(&mut tabled, 5);
    let (scalar_seconds, scalar_lnl) = cold_eval_sweep(&mut scalar, 5);
    let dispatch_ratio = scalar_seconds / blocked_seconds;
    let mut dispatch_gap = 0.0f64;
    let mut dna_exact = true;
    for (i, (b, s)) in blocked_lnl.iter().zip(scalar_lnl.iter()).enumerate() {
        dispatch_gap = dispatch_gap.max((b - s).abs());
        if dataset.patterns.partitions[i].data_type == DataType::Dna && b.to_bits() != s.to_bits() {
            dna_exact = false;
        }
    }
    println!("\ndispatch (cold-CLV evaluation sweeps, sequential):");
    println!("  scalar     {scalar_seconds:>8.3} s");
    println!("  blocked    {blocked_seconds:>8.3} s");
    println!(
        "  ratio      {dispatch_ratio:>8.2}x  (gate ≥ {DISPATCH_GATE}x)   max |Δ lnL| = {dispatch_gap:.2e}, DNA bit-for-bit: {dna_exact}"
    );
    if dispatch_ratio.is_nan() || dispatch_ratio < DISPATCH_GATE {
        let msg = format!(
            "blocked dispatch only {dispatch_ratio:.2}x faster than scalar tabled (gate {DISPATCH_GATE}x)"
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }
    if dispatch_gap.is_nan() || dispatch_gap > AGREEMENT_GATE {
        let msg = format!(
            "blocked dispatch disagrees with the scalar reference by {dispatch_gap:.2e} (gate {AGREEMENT_GATE:.0e})"
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }
    if !dna_exact {
        let msg = "DNA partitions must be bit-for-bit identical across dispatches".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }

    // 4. Measured per-pattern cost calibration under the blocked kernel (the
    // dispatch the scheduler actually packs for), gated against the analytic
    // blocked ratio: the model may not drift beyond a factor 2 from the
    // hardware.
    let (dna_partition, protein_partition) = (0usize, dataset.spec.partition_count() - 1);
    let dna = seconds_per_pattern(&mut tabled, dna_partition, 3);
    let protein = seconds_per_pattern(&mut tabled, protein_partition, 3);
    if std::env::var("PLF_DISPATCH_DETAIL").is_ok() {
        let sdna = seconds_per_pattern(&mut scalar, dna_partition, 3);
        let sprot = seconds_per_pattern(&mut scalar, protein_partition, 3);
        println!("\n[detail] scalar  DNA {sdna:.3e}  protein {sprot:.3e} s/pattern");
        println!("[detail] blocked DNA {dna:.3e}  protein {protein:.3e} s/pattern");
        println!(
            "[detail] per-type ratio: DNA {:.2}x  protein {:.2}x",
            sdna / dna,
            sprot / protein
        );
    }
    let calibration = CostCalibration {
        dna_seconds_per_pattern: dna,
        protein_seconds_per_pattern: protein,
    };
    let categories = 4;
    let analytic_blocked = CostCalibration::analytic_ratio_blocked(categories);
    let drift_factor = calibration.analytic_drift_factor(analytic_blocked);
    println!("\ncost calibration (measured, blocked kernel):");
    println!("  DNA      {:.3e} s/pattern", dna);
    println!("  protein  {:.3e} s/pattern", protein);
    println!(
        "  ratio    {:.1}  (analytic blocked {:.1}, tabled {:.1}, per-call was {:.1}; drift factor {:.2}, gate ≤ {:.1})",
        calibration.ratio(),
        analytic_blocked,
        CostCalibration::analytic_ratio_tabled(categories),
        CostCalibration::analytic_ratio_per_call(categories),
        drift_factor,
        MODEL_DRIFT_FACTOR_GATE
    );
    let measured_ratio = calibration.ratio();
    if measured_ratio.is_nan() || measured_ratio <= 1.0 {
        let msg = "protein patterns must measure costlier than DNA".to_string();
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }
    if drift_factor.is_nan() || drift_factor > MODEL_DRIFT_FACTOR_GATE {
        let msg = format!(
            "analytic blocked ratio {analytic_blocked:.1} drifts {drift_factor:.2}x from the measured {measured_ratio:.1} (gate {MODEL_DRIFT_FACTOR_GATE}x)"
        );
        eprintln!("REGRESSION: {msg}");
        envelope.violation(msg);
        violations += 1;
    }

    // 5. Zero drift through the mask-aware/adaptive rescheduling runs (the
    // engines in there run with shared tables — the default).
    let staggered = staggered_convergence_dataset_local();
    let comparison =
        compare_mask_resched(&staggered, 16).expect("virtual executors cannot lose workers");
    let mut worst_drift = 0.0f64;
    for run in &comparison.runs {
        if run.max_lnl_drift.is_nan() || run.max_lnl_drift > DRIFT_GATE {
            let msg = format!(
                "{} drifted the log likelihood by {:.2e} across migrations",
                run.label, run.max_lnl_drift
            );
            eprintln!("REGRESSION: {msg}");
            envelope.violation(msg);
            violations += 1;
        }
        worst_drift = worst_drift.max(run.max_lnl_drift);
    }
    println!("\nrescheduling drift (tables on): max |Δ lnL| = {worst_drift:.2e} (gate ≤ {DRIFT_GATE:.0e})");

    // Emit the trajectory record in the shared envelope schema.
    envelope.measure("regions", per_call.regions as f64);
    envelope.measure("per_call_seconds", per_call.seconds);
    envelope.measure("shared_tables_seconds", with_tables.seconds);
    envelope.measure("throughput_ratio", ratio);
    envelope.measure("agreement_max_abs_dlnl", agreement);
    envelope.measure("dispatch_scalar_seconds", scalar_seconds);
    envelope.measure("dispatch_blocked_seconds", blocked_seconds);
    envelope.measure("dispatch_ratio", dispatch_ratio);
    envelope.measure("dispatch_agreement_max_abs_dlnl", dispatch_gap);
    envelope.measure("measured_cost_ratio", calibration.ratio());
    envelope.measure("analytic_blocked_ratio", analytic_blocked);
    envelope.measure("model_drift_factor", drift_factor);
    envelope.measure(
        "analytic_tabled_ratio",
        CostCalibration::analytic_ratio_tabled(categories),
    );
    envelope.measure(
        "analytic_per_call_ratio",
        CostCalibration::analytic_ratio_per_call(categories),
    );
    envelope.measure("resched_max_drift", worst_drift);
    let path = "BENCH_kernel_tables.json";
    match std::fs::write(path, envelope.to_json()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    if violations > 0 {
        std::process::exit(1);
    }
}

/// The staggered-convergence dataset of the `mask_resched` report, reused
/// here so the drift gate covers the exact runs the rescheduling yardstick
/// measures.
fn staggered_convergence_dataset_local() -> GeneratedDataset {
    phylo_bench::scheduling::staggered_convergence_dataset(2026)
}
