//! Prose result B: model-parameter optimization on a *fixed* tree (no tree
//! search) with per-partition branch lengths improves by 5-10% under newPAR,
//! because the full tree traversal per Brent step already gives every thread
//! more work per synchronization than the search phase does.

use phylo_bench::{generate_scaled, run_traced, trace_summary, Workload};
use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_perfmodel::Platform;
use phylo_seqgen::datasets::paper_simulated;

fn main() {
    let dataset = generate_scaled(&paper_simulated(50, 50_000, 1_000, 354));
    println!("=== Prose B: model parameter optimization on a fixed tree, per-partition branch lengths ===");
    let (old_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::Old,
        BranchLengthMode::PerPartition,
        Workload::ModelOptimization,
    );
    let (new_trace, _) = run_traced(
        &dataset,
        8,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        Workload::ModelOptimization,
    );
    trace_summary("oldPAR (8 threads)", &old_trace);
    trace_summary("newPAR (8 threads)", &new_trace);
    for platform in Platform::paper_platforms() {
        let t_old = platform.predict_runtime(&old_trace);
        let t_new = platform.predict_runtime(&new_trace);
        println!(
            "  {:<12} predicted: old {:.2}s, new {:.2}s  -> improvement {:.1}%",
            platform.name,
            t_old,
            t_new,
            100.0 * (t_old - t_new) / t_old
        );
    }
}
