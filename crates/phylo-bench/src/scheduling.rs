//! Strategy-comparison report: imbalance and predicted run time per
//! scheduling strategy, so scheduler regressions show up as numbers.
//!
//! For one dataset and worker count the report runs the same workload under
//! every [`ScheduleStrategy`] — the paper's `cyclic` and `block`, the
//! cost-aware `weighted-lpt`, and `trace-adaptive` seeded with a cyclic
//! warm-up trace — and tabulates, per strategy:
//!
//! * the **predicted** per-worker imbalance of the assignment (what the
//!   scheduler thought it achieved),
//! * the **measured** imbalance from the instrumented executor's trace,
//! * the predicted run time on a reference platform from `phylo-perfmodel`.
//!
//! `cargo run --release -p phylo-bench --bin strategy_report` prints the
//! table for the default mixed DNA/protein dataset; future PRs touching the
//! scheduler are expected to keep `weighted-lpt`'s max predicted cost at or
//! below `cyclic`'s and strictly below `block`'s on that dataset.

use std::sync::Arc;

use phylo_kernel::{cost::TraceUnit, LikelihoodKernel};
use phylo_models::{BranchLengthMode, ModelSet};
use phylo_optimize::{
    optimize_model_parameters_adaptive, OptimizeError, OptimizerConfig, ParallelScheme,
};
use phylo_parallel::{
    Assignment, Block, Cyclic, ExecutorOptions, PatternCosts, ReschedulePolicy, Rescheduler,
    SchedError, ScheduleStrategy, ThreadedExecutor, TraceAdaptive, WeightedLpt, WorkerSkew,
};
use phylo_perfmodel::{imbalance_report, ImbalanceReport, Platform};
use phylo_sched::worker_imbalance;
use phylo_seqgen::datasets::{mixed_dna_protein, GeneratedDataset};

use crate::{run_traced_assignment, Workload};

/// One strategy's outcome on the comparison workload.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// The assignment the strategy produced.
    pub assignment: Assignment,
    /// Predicted-vs-measured imbalance of the run.
    pub report: ImbalanceReport,
    /// Predicted run time in seconds on the reference platform.
    pub predicted_seconds: f64,
}

/// The full comparison: one row per strategy, same dataset and worker count.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Dataset name.
    pub dataset: String,
    /// Worker count the schedules were built for.
    pub workers: usize,
    /// Reference platform used for the run-time predictions.
    pub platform: String,
    /// Rows in strategy order: cyclic, block, weighted-lpt, trace-adaptive.
    pub rows: Vec<StrategyRow>,
}

/// Per-partition Γ category counts of the default models for a dataset
/// (`ModelSet::default_for` gives every partition `DEFAULT_CATEGORIES`, so
/// this avoids building — and discarding — the models' eigendecompositions).
pub fn default_categories(dataset: &GeneratedDataset) -> Vec<usize> {
    vec![phylo_models::DEFAULT_CATEGORIES; dataset.patterns.partition_count()]
}

/// Builds the trace-adaptive assignment for a dataset: a cyclic warm-up run
/// is traced, then its measurement corrects the analytic cost model.
///
/// # Errors
///
/// Propagates any [`SchedError`] from the underlying strategies.
pub fn adaptive_assignment(
    dataset: &GeneratedDataset,
    workers: usize,
    workload: Workload,
) -> Result<Assignment, SchedError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let warmup = Cyclic.assign(&costs, workers)?;
    let (trace, _) = run_traced_assignment(
        dataset,
        &warmup,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        workload,
    );
    TraceAdaptive::new(warmup, &trace)?.assign(&costs, workers)
}

/// Runs the comparison workload under all four strategies.
///
/// # Errors
///
/// Propagates any [`SchedError`] from the underlying strategies.
///
/// # Panics
///
/// Panics if `platform` has fewer cores than `workers`
/// ([`Platform::predict_runtime`]'s contract).
pub fn compare_strategies(
    dataset: &GeneratedDataset,
    workers: usize,
    workload: Workload,
    platform: &Platform,
) -> Result<StrategyComparison, SchedError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);

    let run = |assignment: &Assignment| {
        run_traced_assignment(
            dataset,
            assignment,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            workload,
        )
        .0
    };
    let row = |assignment: Assignment, trace: &phylo_kernel::cost::WorkTrace| StrategyRow {
        report: imbalance_report(&assignment, trace),
        predicted_seconds: platform.predict_runtime(trace),
        assignment,
    };

    // The cyclic run doubles as the trace-adaptive warm-up measurement.
    let cyclic = Cyclic.assign(&costs, workers)?;
    let cyclic_trace = run(&cyclic);
    let adaptive = TraceAdaptive::new(cyclic.clone(), &cyclic_trace)?.assign(&costs, workers)?;

    let mut rows = vec![row(cyclic, &cyclic_trace)];
    for assignment in [
        Block.assign(&costs, workers)?,
        WeightedLpt.assign(&costs, workers)?,
        adaptive,
    ] {
        let trace = run(&assignment);
        rows.push(row(assignment, &trace));
    }

    Ok(StrategyComparison {
        dataset: dataset.spec.name.clone(),
        workers,
        platform: platform.name.clone(),
        rows,
    })
}

/// The default comparison dataset: 12 DNA genes plus 4 protein genes. The
/// protein tail carries ≈25× per-pattern cost, so count-based schemes
/// misbalance it and the cost-aware strategies have something to win.
pub fn default_mixed_dataset() -> GeneratedDataset {
    let scale = crate::dataset_scale();
    let columns = ((600.0 * scale / 0.02).round() as usize).clamp(40, 4000);
    mixed_dna_protein(12, 12, 4, columns, 2009).generate()
}

/// Outcome of the adaptive-rescheduling experiment: measured wall-clock
/// imbalance (max/mean per-worker seconds under a standardized probe
/// workload) of the static schedules against a run that rescheduled
/// mid-flight from its own measurements, with one artificially skewed
/// worker.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveComparison {
    /// Dataset name.
    pub dataset: String,
    /// Worker count of every run.
    pub workers: usize,
    /// The artificial skew applied to one worker in every run.
    pub skew: WorkerSkew,
    /// Measured imbalance of the static cyclic schedule.
    pub cyclic_imbalance: f64,
    /// Measured imbalance of the static weighted-LPT schedule.
    pub lpt_imbalance: f64,
    /// Measured imbalance after the mid-run reschedule (of the post-
    /// migration ownership, same probe workload).
    pub adaptive_imbalance: f64,
    /// The live measured imbalance that triggered the reschedule (0.0 if
    /// the policy never fired).
    pub trigger_imbalance: f64,
    /// Number of mid-run reschedules that happened.
    pub reschedules: usize,
    /// Largest |Δ log likelihood| across the migrations (must be ≤ 1e-8).
    pub max_lnl_drift: f64,
}

fn timed_skewed_kernel(
    dataset: &GeneratedDataset,
    assignment: &Assignment,
    skew: WorkerSkew,
) -> LikelihoodKernel<ThreadedExecutor> {
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = ThreadedExecutor::with_options(
        &dataset.patterns,
        assignment,
        dataset.tree.node_capacity(),
        &categories,
        ExecutorOptions {
            timed: true,
            skew: Some(skew),
        },
    )
    .expect("assignment was built for this dataset");
    LikelihoodKernel::try_new(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    )
    .unwrap()
}

/// Measures the wall-clock imbalance of the kernel's *current* ownership
/// with a standardized probe workload (`repeats` full likelihood
/// recomputations), so static and rescheduled runs are compared on the same
/// footing. Discards whatever trace had accumulated before.
pub fn probe_wall_clock_imbalance(
    kernel: &mut LikelihoodKernel<ThreadedExecutor>,
    repeats: usize,
) -> f64 {
    let _ = kernel.executor_mut().take_trace();
    for _ in 0..repeats.max(1) {
        kernel.invalidate_all();
        let _ = kernel
            .try_log_likelihood()
            .expect("probe workload runs on healthy workers");
    }
    let trace = kernel.executor_mut().take_trace();
    worker_imbalance(&trace.per_worker_total_in(TraceUnit::Seconds))
}

/// Runs the adaptive-rescheduling experiment: static cyclic and LPT
/// baselines against a cyclic-started run whose [`Rescheduler`] watches the
/// real wall clock, all with `skew.worker` artificially slowed. Every run's
/// imbalance is measured with the same probe workload.
///
/// # Errors
///
/// Propagates any [`SchedError`] from the underlying strategies and any
/// [`OptimizeError`] from the adaptive driver.
pub fn compare_adaptive_resched(
    dataset: &GeneratedDataset,
    workers: usize,
    skew: WorkerSkew,
    probe_repeats: usize,
) -> Result<AdaptiveComparison, OptimizeError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let cyclic = Cyclic
        .assign(&costs, workers)
        .map_err(OptimizeError::Sched)?;
    let lpt = WeightedLpt
        .assign(&costs, workers)
        .map_err(OptimizeError::Sched)?;

    let mut cyclic_kernel = timed_skewed_kernel(dataset, &cyclic, skew);
    let cyclic_imbalance = probe_wall_clock_imbalance(&mut cyclic_kernel, probe_repeats);
    drop(cyclic_kernel);

    let mut lpt_kernel = timed_skewed_kernel(dataset, &lpt, skew);
    let lpt_imbalance = probe_wall_clock_imbalance(&mut lpt_kernel, probe_repeats);
    drop(lpt_kernel);

    // The adaptive run starts from the same cyclic schedule; one optimizer
    // round accumulates the live wall-clock trace, then the rescheduler
    // migrates ownership and the probe measures the new placement.
    let mut kernel = timed_skewed_kernel(dataset, &cyclic, skew);
    let mut rescheduler = Rescheduler::new(ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 16,
        unit: TraceUnit::Seconds,
        max_reschedules: 1,
        mask_aware: false,
        mask_decay: 0.85,
    });
    let config = OptimizerConfig::search_phase(ParallelScheme::New);
    let adaptive =
        optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)?;
    let adaptive_imbalance = probe_wall_clock_imbalance(&mut kernel, probe_repeats);

    Ok(AdaptiveComparison {
        dataset: dataset.spec.name.clone(),
        workers,
        skew,
        cyclic_imbalance,
        lpt_imbalance,
        adaptive_imbalance,
        trigger_imbalance: adaptive
            .events
            .first()
            .map_or(0.0, |e| e.measured_imbalance),
        reschedules: adaptive.events.len(),
        // total_cmp ranks NaN above +inf, so a NaN drift propagates into the
        // gate instead of being masked by f64::max(0.0, NaN) == 0.0.
        max_lnl_drift: adaptive
            .events
            .iter()
            .map(|e| e.log_likelihood_drift())
            .max_by(f64::total_cmp)
            .unwrap_or(0.0),
    })
}

/// One configuration's outcome in the mask-aware rescheduling experiment.
#[derive(Debug, Clone)]
pub struct MaskRunStats {
    /// Configuration label (static cyclic / between-round / mask-aware).
    pub label: String,
    /// Mid-run ownership migrations that happened.
    pub reschedules: usize,
    /// How many of them fired *within* a round (mask-aware only).
    pub within_round_reschedules: usize,
    /// Measured FLOP imbalance over the *masked* regions of the whole run —
    /// the regions where part of the dataset had converged, i.e. the oldPAR-
    /// like phases whose balance the paper's analysis is about. 1.0 is
    /// perfect; computed as workers × critical-path / total over the run's
    /// accumulated trace epochs. Migrations fire mid-run, so this aggregate
    /// still contains the pre-trigger (cyclic) phases of every run.
    pub masked_imbalance: f64,
    /// Measured FLOP imbalance over all regions of the run.
    pub overall_imbalance: f64,
    /// Measured masked-region FLOP imbalance of the run's *final placement*
    /// under the standardized probe workload (a fresh pass of the same
    /// staggered-convergence optimization) — the placement-vs-placement
    /// comparison the gate uses, free of each run's pre-trigger history.
    pub probe_masked_imbalance: f64,
    /// Probe imbalance over all regions of the final placement.
    pub probe_overall_imbalance: f64,
    /// Largest |Δ log likelihood| across the migrations (0.0 for none).
    pub max_lnl_drift: f64,
    /// Final log likelihood of the run (placement-invariant across
    /// configurations).
    pub final_lnl: f64,
}

/// The mask-aware rescheduling experiment: static cyclic vs between-round-
/// only rescheduling vs mask-aware within-round rescheduling, all on the
/// same staggered-convergence dataset and virtual workers (FLOP unit, fully
/// deterministic).
#[derive(Debug, Clone)]
pub struct MaskComparison {
    /// Dataset name.
    pub dataset: String,
    /// Virtual worker count of every run.
    pub workers: usize,
    /// The four runs, in the order static / between-round / mask-union
    /// (legacy equal-weight window, `mask_decay = 1.0`) / mask-aware
    /// (decay-weighted window).
    pub runs: Vec<MaskRunStats>,
}

impl MaskComparison {
    /// The run with the given label.
    ///
    /// # Panics
    ///
    /// Panics if the label is missing (a bug in the experiment driver).
    pub fn run(&self, label: &str) -> &MaskRunStats {
        self.runs
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("comparison is missing the {label} run"))
    }
}

/// A DNA dataset whose partitions converge at staggered rates because their
/// gene lengths differ 5×: long genes (lots of data, sharp likelihoods)
/// converge their Newton streams quickly, the short genes' flat likelihoods
/// keep iterating. Late in every branch's Newton stream only the slow
/// partitions stay live, so the cyclic placement's balance over the *live*
/// set — not over the totals — determines the measured imbalance.
pub fn staggered_convergence_dataset(seed: u64) -> GeneratedDataset {
    use phylo_data::DataType;
    use phylo_seqgen::datasets::DatasetSpec;
    // Twelve pairs of one 40-column and one 8-column DNA gene. With 16
    // workers the cyclic arithmetic works out as follows: each pair is 48
    // patterns ≡ 0 (mod 16), so every long gene starts at an offset ≡ 0 —
    // its 8 surplus patterns (40 = 2·16 + 8) always land on workers 0–7 —
    // and every short gene starts at an offset ≡ 8, landing *entirely* on
    // workers 8–15. Under the full mask the two effects cancel exactly
    // (every worker owns 3 patterns per pair), so the totals are balanced
    // and a total-cost (between-round) rescheduler has nothing to fix. But
    // the gene lengths differ 5×, so the partitions converge at staggered
    // rates — the short genes' flat likelihoods keep their Newton streams
    // alive longest — and the late, partial convergence masks are heavily
    // skewed: short-gene phases run entirely on workers 8–15 (measured
    // imbalance 2.0) while long-gene phases overload workers 0–7. Only a
    // mask-aware, within-round repack can react to that shape.
    let mut layout = Vec::new();
    for _ in 0..12 {
        layout.push(40usize);
        layout.push(8);
    }
    DatasetSpec {
        name: "staggered_pairs_40x8".to_string(),
        taxa: 8,
        partition_columns: layout,
        data_type: DataType::Dna,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.0,
        seed,
    }
    .generate()
}

fn mask_policy(mask_aware: bool) -> ReschedulePolicy {
    ReschedulePolicy {
        imbalance_threshold: 1.25,
        min_regions: 12,
        unit: TraceUnit::Flops,
        max_reschedules: 4,
        mask_aware,
        mask_decay: 0.85,
    }
}

/// Builds a virtual-worker kernel over `assignment` with the dataset's
/// default per-partition models (the common setup of every mask-experiment
/// run and probe).
fn staggered_kernel(
    dataset: &GeneratedDataset,
    assignment: &Assignment,
) -> LikelihoodKernel<phylo_parallel::TracingExecutor> {
    use phylo_parallel::TracingExecutor;
    let models = ModelSet::default_for(&dataset.patterns, BranchLengthMode::PerPartition);
    let categories: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
    let executor = TracingExecutor::from_assignment(
        &dataset.patterns,
        assignment,
        dataset.tree.node_capacity(),
        &categories,
    )
    .expect("assignment was built for this dataset");
    LikelihoodKernel::try_new(
        Arc::clone(&dataset.patterns),
        dataset.tree.clone(),
        models,
        executor,
    )
    .unwrap()
}

/// Measures a placement: runs the full staggered-convergence workload on
/// virtual workers under `assignment` and returns the masked-region and
/// overall FLOP imbalance of the trace.
fn probe_placement(dataset: &GeneratedDataset, assignment: &Assignment) -> (f64, f64) {
    let mut kernel = staggered_kernel(dataset, assignment);
    let config = OptimizerConfig::new(ParallelScheme::New);
    phylo_optimize::optimize_model_parameters(&mut kernel, &config)
        .expect("virtual executors cannot lose workers");
    let trace = kernel.executor_mut().take_trace();
    (
        1.0 / trace.masked_overall_balance_in(TraceUnit::Flops),
        1.0 / trace.overall_balance_in(TraceUnit::Flops),
    )
}

/// Runs one configuration of the mask experiment on virtual workers
/// (`policy: None` = static, no rescheduling) and measures both the run
/// itself (event epochs + the final live epoch) and its final placement
/// under the standardized probe.
fn mask_run(
    dataset: &GeneratedDataset,
    workers: usize,
    label: &str,
    policy: Option<ReschedulePolicy>,
) -> Result<MaskRunStats, OptimizeError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let cyclic = Cyclic
        .assign(&costs, workers)
        .map_err(OptimizeError::Sched)?;
    let mut kernel = staggered_kernel(dataset, &cyclic);
    let config = OptimizerConfig::new(ParallelScheme::New);

    let (events, final_lnl) = match policy {
        Some(policy) => {
            let mut rescheduler = Rescheduler::new(policy);
            let report =
                optimize_model_parameters_adaptive(&mut kernel, &config, &mut rescheduler, &costs)?;
            (report.events, report.report.final_log_likelihood)
        }
        None => {
            let report = phylo_optimize::optimize_model_parameters(&mut kernel, &config)?;
            (Vec::new(), report.final_log_likelihood)
        }
    };

    // The full run's measurements: the epoch traces captured at each
    // migration plus whatever the executor accumulated since the last one.
    let mut full = phylo_kernel::cost::WorkTrace::new(workers);
    for event in &events {
        full.extend(&event.epoch_trace)
            .expect("all epochs ran on the same worker count");
    }
    full.extend(&kernel.executor_mut().take_trace())
        .expect("all epochs ran on the same worker count");

    // Placement-vs-placement comparison: re-run the identical workload on
    // the run's final assignment, from scratch.
    let final_assignment = kernel.executor_mut().assignment().clone();
    let (probe_masked_imbalance, probe_overall_imbalance) =
        probe_placement(dataset, &final_assignment);

    Ok(MaskRunStats {
        label: label.to_string(),
        reschedules: events.len(),
        within_round_reschedules: events.iter().filter(|e| e.within_round).count(),
        masked_imbalance: 1.0 / full.masked_overall_balance_in(TraceUnit::Flops),
        overall_imbalance: 1.0 / full.overall_balance_in(TraceUnit::Flops),
        probe_masked_imbalance,
        probe_overall_imbalance,
        max_lnl_drift: events
            .iter()
            .map(|e| e.log_likelihood_drift())
            .max_by(f64::total_cmp)
            .unwrap_or(0.0),
        final_lnl,
    })
}

/// Runs the full mask-aware rescheduling comparison: the same newPAR model-
/// optimization workload under (a) the static cyclic schedule, (b) cyclic
/// with the plain between-round rescheduler, (c) cyclic with the mask-aware
/// rescheduler on the *legacy* equal-weight trailing-window union
/// (`mask_decay = 1.0`), (d) cyclic with the mask-aware rescheduler on the
/// decay-weighted window — all thresholds identical, all on virtual workers
/// with deterministic FLOP measurements. Runs (c) and (d) are the gate's
/// union-vs-decayed before/after pair.
///
/// # Errors
///
/// Propagates [`OptimizeError`] from the adaptive drivers.
pub fn compare_mask_resched(
    dataset: &GeneratedDataset,
    workers: usize,
) -> Result<MaskComparison, OptimizeError> {
    let runs = vec![
        mask_run(dataset, workers, "static cyclic", None)?,
        mask_run(dataset, workers, "between-round", Some(mask_policy(false)))?,
        mask_run(
            dataset,
            workers,
            "mask-union",
            Some(ReschedulePolicy {
                mask_decay: 1.0,
                ..mask_policy(true)
            }),
        )?,
        mask_run(dataset, workers, "mask-aware", Some(mask_policy(true)))?,
    ];
    Ok(MaskComparison {
        dataset: dataset.spec.name.clone(),
        workers,
        runs,
    })
}

/// Prints the mask experiment as a small table.
pub fn print_mask_comparison(c: &MaskComparison) {
    println!(
        "=== convergence-mask rescheduling on {} ({} virtual workers, FLOP unit) ===",
        c.dataset, c.workers
    );
    println!(
        "{:<16} {:>8} {:>9} {:>13} {:>13} {:>13} {:>13} {:>11}",
        "schedule",
        "resched",
        "in-round",
        "run masked",
        "run overall",
        "probe masked",
        "probe overall",
        "lnL drift"
    );
    for run in &c.runs {
        println!(
            "{:<16} {:>8} {:>9} {:>13.3} {:>13.3} {:>13.3} {:>13.3} {:>11.2e}",
            run.label,
            run.reschedules,
            run.within_round_reschedules,
            run.masked_imbalance,
            run.overall_imbalance,
            run.probe_masked_imbalance,
            run.probe_overall_imbalance,
            run.max_lnl_drift
        );
    }
    // The satellite's before/after line: the legacy trailing-window union vs
    // the decay-weighted window, same thresholds, same workload.
    let union = c.run("mask-union");
    let decayed = c.run("mask-aware");
    println!(
        "mask window before/after: union (decay 1.00) probe masked {:.3} → \
         decayed probe masked {:.3} ({} vs {} reschedules)",
        union.probe_masked_imbalance,
        decayed.probe_masked_imbalance,
        union.reschedules,
        decayed.reschedules
    );
    println!();
}

/// Prints the adaptive-rescheduling experiment as a small table.
pub fn print_adaptive_comparison(c: &AdaptiveComparison) {
    println!(
        "=== adaptive rescheduling on {} ({} workers, worker {} skewed by {} ns/pattern) ===",
        c.dataset, c.workers, c.skew.worker, c.skew.nanos_per_pattern
    );
    println!("{:<24} {:>22}", "schedule", "measured imbalance");
    println!("{:<24} {:>22.3}", "static cyclic", c.cyclic_imbalance);
    println!("{:<24} {:>22.3}", "static weighted-lpt", c.lpt_imbalance);
    println!("{:<24} {:>22.3}", "adaptive-resched", c.adaptive_imbalance);
    println!(
        "reschedules: {} (trigger imbalance {:.3}); max lnL drift across migrations: {:.2e}",
        c.reschedules, c.trigger_imbalance, c.max_lnl_drift
    );
    println!();
}

/// Prints one comparison as a fixed-width table.
pub fn print_comparison(comparison: &StrategyComparison) {
    println!(
        "=== scheduling strategies on {} ({} workers, platform {}) ===",
        comparison.dataset, comparison.workers, comparison.platform
    );
    println!("{} {:>12}", ImbalanceReport::header(), "pred sec");
    for row in &comparison.rows {
        println!("{} {:>12.4}", row.report.format(), row.predicted_seconds);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mixed() -> GeneratedDataset {
        mixed_dna_protein(6, 4, 2, 24, 41).generate()
    }

    /// The PR's acceptance criterion: on a mixed DNA/protein dataset the
    /// cost-aware LPT strategy achieves strictly lower maximum per-worker
    /// predicted cost than the contiguous block scheme, and never exceeds
    /// cyclic.
    #[test]
    fn weighted_lpt_beats_block_on_mixed_benchmark_dataset() {
        // The benchmark dataset's shape at test-friendly scale: 12 DNA + 4
        // protein partitions.
        let ds = mixed_dna_protein(10, 12, 4, 80, 2009).generate();
        let categories = default_categories(&ds);
        let costs = PatternCosts::analytic(&ds.patterns, &categories);
        for workers in [4usize, 8, 16] {
            let lpt = WeightedLpt.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            assert!(
                lpt.max_cost() < block.max_cost(),
                "{workers} workers: LPT max {} must beat block max {}",
                lpt.max_cost(),
                block.max_cost()
            );
            assert!(
                lpt.max_cost() <= cyclic.max_cost() + 1e-9,
                "{workers} workers: LPT max {} vs cyclic max {}",
                lpt.max_cost(),
                cyclic.max_cost()
            );
        }
    }

    #[test]
    fn comparison_produces_all_four_strategies() {
        let ds = tiny_mixed();
        let comparison =
            compare_strategies(&ds, 4, Workload::ModelOptimization, &Platform::nehalem()).unwrap();
        let names: Vec<&str> = comparison
            .rows
            .iter()
            .map(|r| r.assignment.strategy())
            .collect();
        assert_eq!(
            names,
            vec!["cyclic", "block", "weighted-lpt", "trace-adaptive"]
        );
        for row in &comparison.rows {
            assert!(row.predicted_seconds > 0.0);
            assert!(row.report.measured_imbalance >= 1.0 - 1e-9);
            assert_eq!(row.report.workers, 4);
        }
        // The cost-aware strategies must not predict worse balance than block.
        let block = &comparison.rows[1].report;
        let lpt = &comparison.rows[2].report;
        assert!(lpt.predicted_imbalance <= block.predicted_imbalance + 1e-9);
    }

    #[test]
    fn adaptive_assignment_covers_the_dataset() {
        let ds = tiny_mixed();
        let assignment = adaptive_assignment(&ds, 3, Workload::ModelOptimization).unwrap();
        assert_eq!(assignment.pattern_count(), ds.patterns.total_patterns());
        assert_eq!(assignment.worker_count(), 3);
        assert_eq!(assignment.strategy(), "trace-adaptive");
    }

    #[test]
    fn adaptive_resched_comparison_produces_consistent_fields() {
        let ds = tiny_mixed();
        let skew = WorkerSkew {
            worker: 0,
            nanos_per_pattern: 5_000,
        };
        let c = compare_adaptive_resched(&ds, 3, skew, 2).unwrap();
        assert_eq!(c.workers, 3);
        assert_eq!(c.skew, skew);
        // Imbalances are max/mean ratios and therefore ≥ 1 by definition.
        assert!(c.cyclic_imbalance >= 1.0 - 1e-9);
        assert!(c.lpt_imbalance >= 1.0 - 1e-9);
        assert!(c.adaptive_imbalance >= 1.0 - 1e-9);
        // Whatever the timing noise, migrations must never move the lnL.
        assert!(c.max_lnl_drift <= 1e-8, "drift {}", c.max_lnl_drift);
    }
}
