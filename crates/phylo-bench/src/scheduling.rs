//! Strategy-comparison report: imbalance and predicted run time per
//! scheduling strategy, so scheduler regressions show up as numbers.
//!
//! For one dataset and worker count the report runs the same workload under
//! every [`ScheduleStrategy`] — the paper's `cyclic` and `block`, the
//! cost-aware `weighted-lpt`, and `trace-adaptive` seeded with a cyclic
//! warm-up trace — and tabulates, per strategy:
//!
//! * the **predicted** per-worker imbalance of the assignment (what the
//!   scheduler thought it achieved),
//! * the **measured** imbalance from the instrumented executor's trace,
//! * the predicted run time on a reference platform from `phylo-perfmodel`.
//!
//! `cargo run --release -p phylo-bench --bin strategy_report` prints the
//! table for the default mixed DNA/protein dataset; future PRs touching the
//! scheduler are expected to keep `weighted-lpt`'s max predicted cost at or
//! below `cyclic`'s and strictly below `block`'s on that dataset.

use phylo_models::BranchLengthMode;
use phylo_optimize::ParallelScheme;
use phylo_parallel::{
    Assignment, Block, Cyclic, PatternCosts, SchedError, ScheduleStrategy, TraceAdaptive,
    WeightedLpt,
};
use phylo_perfmodel::{imbalance_report, ImbalanceReport, Platform};
use phylo_seqgen::datasets::{mixed_dna_protein, GeneratedDataset};

use crate::{run_traced_assignment, Workload};

/// One strategy's outcome on the comparison workload.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// The assignment the strategy produced.
    pub assignment: Assignment,
    /// Predicted-vs-measured imbalance of the run.
    pub report: ImbalanceReport,
    /// Predicted run time in seconds on the reference platform.
    pub predicted_seconds: f64,
}

/// The full comparison: one row per strategy, same dataset and worker count.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Dataset name.
    pub dataset: String,
    /// Worker count the schedules were built for.
    pub workers: usize,
    /// Reference platform used for the run-time predictions.
    pub platform: String,
    /// Rows in strategy order: cyclic, block, weighted-lpt, trace-adaptive.
    pub rows: Vec<StrategyRow>,
}

/// Per-partition Γ category counts of the default models for a dataset
/// (`ModelSet::default_for` gives every partition `DEFAULT_CATEGORIES`, so
/// this avoids building — and discarding — the models' eigendecompositions).
pub fn default_categories(dataset: &GeneratedDataset) -> Vec<usize> {
    vec![phylo_models::DEFAULT_CATEGORIES; dataset.patterns.partition_count()]
}

/// Builds the trace-adaptive assignment for a dataset: a cyclic warm-up run
/// is traced, then its measurement corrects the analytic cost model.
///
/// # Errors
///
/// Propagates any [`SchedError`] from the underlying strategies.
pub fn adaptive_assignment(
    dataset: &GeneratedDataset,
    workers: usize,
    workload: Workload,
) -> Result<Assignment, SchedError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);
    let warmup = Cyclic.assign(&costs, workers)?;
    let (trace, _) = run_traced_assignment(
        dataset,
        &warmup,
        ParallelScheme::New,
        BranchLengthMode::PerPartition,
        workload,
    );
    TraceAdaptive::new(warmup, &trace)?.assign(&costs, workers)
}

/// Runs the comparison workload under all four strategies.
///
/// # Errors
///
/// Propagates any [`SchedError`] from the underlying strategies.
///
/// # Panics
///
/// Panics if `platform` has fewer cores than `workers`
/// ([`Platform::predict_runtime`]'s contract).
pub fn compare_strategies(
    dataset: &GeneratedDataset,
    workers: usize,
    workload: Workload,
    platform: &Platform,
) -> Result<StrategyComparison, SchedError> {
    let categories = default_categories(dataset);
    let costs = PatternCosts::analytic(&dataset.patterns, &categories);

    let run = |assignment: &Assignment| {
        run_traced_assignment(
            dataset,
            assignment,
            ParallelScheme::New,
            BranchLengthMode::PerPartition,
            workload,
        )
        .0
    };
    let row = |assignment: Assignment, trace: &phylo_kernel::cost::WorkTrace| StrategyRow {
        report: imbalance_report(&assignment, trace),
        predicted_seconds: platform.predict_runtime(trace),
        assignment,
    };

    // The cyclic run doubles as the trace-adaptive warm-up measurement.
    let cyclic = Cyclic.assign(&costs, workers)?;
    let cyclic_trace = run(&cyclic);
    let adaptive = TraceAdaptive::new(cyclic.clone(), &cyclic_trace)?.assign(&costs, workers)?;

    let mut rows = vec![row(cyclic, &cyclic_trace)];
    for assignment in [
        Block.assign(&costs, workers)?,
        WeightedLpt.assign(&costs, workers)?,
        adaptive,
    ] {
        let trace = run(&assignment);
        rows.push(row(assignment, &trace));
    }

    Ok(StrategyComparison {
        dataset: dataset.spec.name.clone(),
        workers,
        platform: platform.name.clone(),
        rows,
    })
}

/// The default comparison dataset: 12 DNA genes plus 4 protein genes. The
/// protein tail carries ≈25× per-pattern cost, so count-based schemes
/// misbalance it and the cost-aware strategies have something to win.
pub fn default_mixed_dataset() -> GeneratedDataset {
    let scale = crate::dataset_scale();
    let columns = ((600.0 * scale / 0.02).round() as usize).clamp(40, 4000);
    mixed_dna_protein(12, 12, 4, columns, 2009).generate()
}

/// Prints one comparison as a fixed-width table.
pub fn print_comparison(comparison: &StrategyComparison) {
    println!(
        "=== scheduling strategies on {} ({} workers, platform {}) ===",
        comparison.dataset, comparison.workers, comparison.platform
    );
    println!("{} {:>12}", ImbalanceReport::header(), "pred sec");
    for row in &comparison.rows {
        println!("{} {:>12.4}", row.report.format(), row.predicted_seconds);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mixed() -> GeneratedDataset {
        mixed_dna_protein(6, 4, 2, 24, 41).generate()
    }

    /// The PR's acceptance criterion: on a mixed DNA/protein dataset the
    /// cost-aware LPT strategy achieves strictly lower maximum per-worker
    /// predicted cost than the contiguous block scheme, and never exceeds
    /// cyclic.
    #[test]
    fn weighted_lpt_beats_block_on_mixed_benchmark_dataset() {
        // The benchmark dataset's shape at test-friendly scale: 12 DNA + 4
        // protein partitions.
        let ds = mixed_dna_protein(10, 12, 4, 80, 2009).generate();
        let categories = default_categories(&ds);
        let costs = PatternCosts::analytic(&ds.patterns, &categories);
        for workers in [4usize, 8, 16] {
            let lpt = WeightedLpt.assign(&costs, workers).unwrap();
            let block = Block.assign(&costs, workers).unwrap();
            let cyclic = Cyclic.assign(&costs, workers).unwrap();
            assert!(
                lpt.max_cost() < block.max_cost(),
                "{workers} workers: LPT max {} must beat block max {}",
                lpt.max_cost(),
                block.max_cost()
            );
            assert!(
                lpt.max_cost() <= cyclic.max_cost() + 1e-9,
                "{workers} workers: LPT max {} vs cyclic max {}",
                lpt.max_cost(),
                cyclic.max_cost()
            );
        }
    }

    #[test]
    fn comparison_produces_all_four_strategies() {
        let ds = tiny_mixed();
        let comparison =
            compare_strategies(&ds, 4, Workload::ModelOptimization, &Platform::nehalem()).unwrap();
        let names: Vec<&str> = comparison
            .rows
            .iter()
            .map(|r| r.assignment.strategy())
            .collect();
        assert_eq!(
            names,
            vec!["cyclic", "block", "weighted-lpt", "trace-adaptive"]
        );
        for row in &comparison.rows {
            assert!(row.predicted_seconds > 0.0);
            assert!(row.report.measured_imbalance >= 1.0 - 1e-9);
            assert_eq!(row.report.workers, 4);
        }
        // The cost-aware strategies must not predict worse balance than block.
        let block = &comparison.rows[1].report;
        let lpt = &comparison.rows[2].report;
        assert!(lpt.predicted_imbalance <= block.predicted_imbalance + 1e-9);
    }

    #[test]
    fn adaptive_assignment_covers_the_dataset() {
        let ds = tiny_mixed();
        let assignment = adaptive_assignment(&ds, 3, Workload::ModelOptimization).unwrap();
        assert_eq!(assignment.pattern_count(), ds.patterns.total_patterns());
        assert_eq!(assignment.worker_count(), 3);
        assert_eq!(assignment.strategy(), "trace-adaptive");
    }
}
