//! Discrete Γ model of among-site rate heterogeneity (Yang, 1994).
//!
//! The Γ model assumes that the evolutionary rate of each alignment column is
//! drawn from a gamma distribution with shape `α` and mean 1 (rate `β = α`).
//! Because integrating over the continuous distribution is too expensive, the
//! distribution is discretized into `k` equal-probability categories and each
//! category is represented by its mean rate. The likelihood of a site is then
//! the average of its likelihoods under the `k` category rates.
//!
//! This module computes those category rates. The paper's kernel uses the
//! standard `k = 4` categories.

use crate::special::{gamma_quantile, incomplete_gamma_p};

/// Default number of discrete Γ rate categories used by the kernel.
pub const DEFAULT_CATEGORIES: usize = 4;

/// Lower bound enforced on the α shape parameter during optimization.
pub const MIN_ALPHA: f64 = 0.02;
/// Upper bound enforced on the α shape parameter during optimization.
pub const MAX_ALPHA: f64 = 1000.0;

/// Computes the mean rates of `categories` equal-probability categories of a
/// Γ(α, β=α) distribution (mean-1 gamma), following Yang (1994).
///
/// The returned vector has length `categories`, is strictly increasing, and its
/// arithmetic mean is 1 (up to floating-point error), so multiplying branch
/// lengths by a category rate never changes the expected number of
/// substitutions averaged over categories.
///
/// # Panics
///
/// Panics if `categories == 0` or `alpha` is not strictly positive.
pub fn discrete_gamma_rates(alpha: f64, categories: usize) -> Vec<f64> {
    assert!(categories > 0, "at least one rate category is required");
    assert!(
        alpha.is_finite() && alpha > 0.0,
        "alpha must be positive and finite, got {alpha}"
    );

    if categories == 1 {
        return vec![1.0];
    }

    let k = categories as f64;
    let beta = alpha;

    // Category boundaries: quantiles of the Γ(α, β) distribution at i/k.
    let mut cutpoints = Vec::with_capacity(categories + 1);
    cutpoints.push(0.0);
    for i in 1..categories {
        cutpoints.push(gamma_quantile(i as f64 / k, alpha, beta));
    }
    cutpoints.push(f64::INFINITY);

    // Mean of the distribution restricted to [b_i, b_{i+1}]:
    //   E[X | b_i <= X < b_{i+1}] * (1/k)
    // = (α/β) [P(α+1, β b_{i+1}) - P(α+1, β b_i)]
    // so the category mean rate is k times that.
    let mut rates = Vec::with_capacity(categories);
    for i in 0..categories {
        let upper = if cutpoints[i + 1].is_finite() {
            incomplete_gamma_p(alpha + 1.0, beta * cutpoints[i + 1])
        } else {
            1.0
        };
        let lower = if cutpoints[i] > 0.0 {
            incomplete_gamma_p(alpha + 1.0, beta * cutpoints[i])
        } else {
            0.0
        };
        let mean = (alpha / beta) * (upper - lower) * k;
        rates.push(mean.max(0.0));
    }

    // Normalize exactly to mean 1 to absorb the small numerical error; this is
    // what RAxML/PAML effectively do as well.
    let sum: f64 = rates.iter().sum();
    if sum > 0.0 {
        let norm = k / sum;
        for r in &mut rates {
            *r *= norm;
        }
    }
    rates
}

/// Per-category rates together with their (uniform) probabilities.
///
/// A convenience wrapper that most model code uses; the probabilities are all
/// `1 / categories` in the equal-probability discretization.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteGamma {
    /// Shape parameter α the rates were computed for.
    pub alpha: f64,
    /// Mean rate of each category, strictly increasing, averaging to 1.
    pub rates: Vec<f64>,
}

impl DiscreteGamma {
    /// Builds the discretization for shape `alpha` with `categories` categories.
    pub fn new(alpha: f64, categories: usize) -> Self {
        Self {
            alpha,
            rates: discrete_gamma_rates(alpha, categories),
        }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.rates.len()
    }

    /// Probability of each category (uniform discretization).
    pub fn category_probability(&self) -> f64 {
        1.0 / self.rates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn single_category_is_rate_one() {
        assert_eq!(discrete_gamma_rates(0.5, 1), vec![1.0]);
        assert_eq!(discrete_gamma_rates(10.0, 1), vec![1.0]);
    }

    #[test]
    fn rates_average_to_one() {
        for &alpha in &[0.05, 0.1, 0.3, 0.5, 1.0, 2.0, 10.0, 100.0] {
            for &k in &[2usize, 4, 8] {
                let rates = discrete_gamma_rates(alpha, k);
                let mean = rates.iter().sum::<f64>() / k as f64;
                assert!(
                    approx_eq(mean, 1.0, 1e-9),
                    "alpha={alpha} k={k} mean={mean}"
                );
            }
        }
    }

    #[test]
    fn rates_are_strictly_increasing() {
        for &alpha in &[0.1, 0.5, 1.0, 5.0] {
            let rates = discrete_gamma_rates(alpha, 4);
            for w in rates.windows(2) {
                assert!(w[0] < w[1], "rates must increase: {rates:?}");
            }
        }
    }

    #[test]
    fn large_alpha_approaches_uniform_rates() {
        // As α → ∞ the gamma distribution concentrates at 1, so all category
        // rates approach 1.
        let rates = discrete_gamma_rates(500.0, 4);
        for r in rates {
            assert!((r - 1.0).abs() < 0.1, "rate {r} should be close to 1");
        }
    }

    #[test]
    fn small_alpha_is_strongly_skewed() {
        // Small α means most sites are nearly invariant and a few are fast.
        let rates = discrete_gamma_rates(0.1, 4);
        assert!(
            rates[0] < 0.01,
            "slowest category should be ~0, got {}",
            rates[0]
        );
        assert!(
            rates[3] > 2.0,
            "fastest category should be large, got {}",
            rates[3]
        );
    }

    #[test]
    fn matches_paml_reference_alpha_half() {
        // Reference category rates for α = 0.5, k = 4 (mean-of-category
        // discretization), as produced by PAML/RAxML: approximately
        // 0.0334, 0.2519, 0.8203, 2.8944.
        let rates = discrete_gamma_rates(0.5, 4);
        let expected = [0.033_388, 0.251_916, 0.820_268, 2.894_428];
        for (r, e) in rates.iter().zip(expected.iter()) {
            assert!((r - e).abs() < 5e-4, "rate {r} vs reference {e}");
        }
    }

    #[test]
    fn matches_paml_reference_alpha_one() {
        // Reference category rates for α = 1.0, k = 4: approximately
        // 0.1369, 0.4768, 1.0000, 2.3863.
        let rates = discrete_gamma_rates(1.0, 4);
        let expected = [0.136_954, 0.476_625, 1.000_151, 2.386_270];
        for (r, e) in rates.iter().zip(expected.iter()) {
            assert!((r - e).abs() < 5e-3, "rate {r} vs reference {e}");
        }
    }

    #[test]
    fn discrete_gamma_wrapper() {
        let dg = DiscreteGamma::new(0.7, 4);
        assert_eq!(dg.categories(), 4);
        assert!(approx_eq(dg.category_probability(), 0.25, 1e-15));
        assert_eq!(dg.rates, discrete_gamma_rates(0.7, 4));
    }
}
