//! Safeguarded one-dimensional Newton–Raphson iteration.
//!
//! Branch lengths in the likelihood kernel are optimized with Newton–Raphson
//! on the log-likelihood as a function of a single branch length, using the
//! analytic first and second derivatives produced by the kernel (the RAxML
//! `makenewz` routine). As with [`crate::brent`], the algorithm is exposed in
//! two forms:
//!
//! * [`newton_maximize`] — a plain sequential driver, and
//! * [`NewtonState`] — a resumable propose/update state machine so that the
//!   `newPAR` scheme can advance the Newton iterations of *all* partitions in
//!   lock-step within one parallel region per iteration.

/// Outcome of a Newton–Raphson maximization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonResult {
    /// Located maximizer.
    pub xmax: f64,
    /// Number of derivative evaluations performed.
    pub evaluations: usize,
    /// Whether the step-size tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Step request from the resumable Newton state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NewtonStep {
    /// Evaluate the first and second derivative of the objective here.
    Evaluate(f64),
    /// The iteration has converged; `NewtonState::current` is the maximizer.
    Converged,
}

/// Resumable state of a safeguarded Newton–Raphson iteration for maximizing a
/// one-dimensional, typically concave, objective on a bounded interval.
///
/// The safeguards mirror what RAxML's branch-length optimization does:
///
/// * iterates are clamped to `[lower, upper]`,
/// * if the second derivative is not negative (the objective is locally not
///   concave), the iterate is pushed towards the boundary indicated by the
///   gradient sign rather than taking the raw Newton step,
/// * steps are damped to at most a factor-of-four change per iteration to
///   avoid overshooting on nearly flat likelihood surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonState {
    lower: f64,
    upper: f64,
    /// Current iterate.
    pub current: f64,
    previous: f64,
    tol: f64,
    iterations: usize,
    max_iter: usize,
    converged: bool,
}

impl NewtonState {
    /// Creates a new iteration starting from `start` on `[lower, upper]`.
    ///
    /// `tol` is the absolute step-size tolerance, `max_iter` caps the number of
    /// derivative evaluations.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty, the start lies outside it, or `tol` is
    /// not positive.
    pub fn new(start: f64, lower: f64, upper: f64, tol: f64, max_iter: usize) -> Self {
        assert!(lower < upper, "invalid interval [{lower}, {upper}]");
        assert!(tol > 0.0, "tolerance must be positive");
        assert!(
            start >= lower && start <= upper,
            "start {start} outside [{lower}, {upper}]"
        );
        Self {
            lower,
            upper,
            current: start,
            previous: f64::NAN,
            tol,
            iterations: 0,
            max_iter,
            converged: false,
        }
    }

    /// Whether the iteration has converged.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of derivative evaluations consumed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Proposes the abscissa at which the derivatives should be evaluated next,
    /// or reports convergence (either because the last step was smaller than
    /// the tolerance or because the iteration cap was reached).
    pub fn propose(&self) -> NewtonStep {
        if self.converged || self.iterations >= self.max_iter {
            NewtonStep::Converged
        } else {
            NewtonStep::Evaluate(self.current)
        }
    }

    /// Incorporates the first (`d1`) and second (`d2`) derivative of the
    /// objective at the previously proposed point and computes the next
    /// iterate.
    pub fn update(&mut self, d1: f64, d2: f64) {
        self.iterations += 1;
        self.previous = self.current;

        let x = self.current;
        let mut next = if d2 < 0.0 && d1.is_finite() && d2.is_finite() {
            // Standard Newton step for a maximum.
            x - d1 / d2
        } else if d1 > 0.0 {
            // Not locally concave but the objective still increases: move up.
            x * 4.0
        } else {
            // Objective decreases: move down.
            x / 4.0
        };

        // Damping: never move by more than a factor of four relative to a
        // positive iterate; for iterates near zero fall back to absolute steps.
        if x > 0.0 && next > 0.0 {
            if next > 4.0 * x {
                next = 4.0 * x;
            } else if next < x / 4.0 {
                next = x / 4.0;
            }
        }
        if !next.is_finite() {
            next = x;
        }
        next = next.max(self.lower).min(self.upper);

        let step = (next - x).abs();
        self.current = next;
        if step <= self.tol {
            self.converged = true;
        }
        if self.iterations >= self.max_iter {
            self.converged = true;
        }
    }
}

/// Maximizes an objective with analytic derivatives on `[lower, upper]`.
///
/// `derivatives(x)` must return `(f'(x), f''(x))`. Returns the located
/// maximizer together with bookkeeping information. The function value itself
/// is never needed, matching how branch-length optimization works in the
/// kernel (only the derivatives are computed from the sum table).
pub fn newton_maximize<F: FnMut(f64) -> (f64, f64)>(
    mut derivatives: F,
    start: f64,
    lower: f64,
    upper: f64,
    tol: f64,
    max_iter: usize,
) -> NewtonResult {
    let mut state = NewtonState::new(start, lower, upper, tol, max_iter);
    let mut evaluations = 0usize;
    loop {
        match state.propose() {
            NewtonStep::Converged => break,
            NewtonStep::Evaluate(x) => {
                let (d1, d2) = derivatives(x);
                evaluations += 1;
                state.update(d1, d2);
            }
        }
    }
    NewtonResult {
        xmax: state.current,
        evaluations,
        converged: state.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn concave_quadratic() {
        // f(x) = -(x - 3)^2, maximum at 3.
        let res = newton_maximize(|x| (-2.0 * (x - 3.0), -2.0), 0.5, 1e-8, 10.0, 1e-10, 50);
        assert!(res.converged);
        assert!(approx_eq(res.xmax, 3.0, 1e-8), "xmax = {}", res.xmax);
        // A quadratic converges in very few Newton steps.
        assert!(res.evaluations <= 6);
    }

    #[test]
    fn log_like_objective() {
        // f(x) = ln(x) - x, maximum at x = 1.
        let res = newton_maximize(
            |x| (1.0 / x - 1.0, -1.0 / (x * x)),
            0.1,
            1e-8,
            50.0,
            1e-12,
            100,
        );
        assert!(res.converged);
        assert!(approx_eq(res.xmax, 1.0, 1e-6), "xmax = {}", res.xmax);
    }

    #[test]
    fn respects_upper_bound() {
        // Monotone increasing objective: maximum at the upper bound.
        let res = newton_maximize(|_x| (1.0, -1e-9), 0.5, 1e-8, 2.0, 1e-10, 200);
        assert!(res.xmax <= 2.0);
        assert!(res.xmax > 1.9, "xmax = {}", res.xmax);
    }

    #[test]
    fn respects_lower_bound() {
        // Monotone decreasing objective: maximum at the lower bound.
        let res = newton_maximize(|_x| (-1.0, -1e-9), 0.5, 1e-3, 2.0, 1e-10, 200);
        assert!(res.xmax >= 1e-3);
        assert!(res.xmax < 0.01, "xmax = {}", res.xmax);
    }

    #[test]
    fn handles_non_concave_region() {
        // f(x) = x^3 on [0.01, 1.5] has positive second derivative everywhere;
        // the safeguard should still walk towards the upper bound because the
        // gradient is positive.
        let res = newton_maximize(|x| (3.0 * x * x, 6.0 * x), 0.02, 0.01, 1.5, 1e-10, 200);
        assert!(res.xmax > 1.0, "xmax = {}", res.xmax);
    }

    #[test]
    fn iteration_cap_reports_convergence_flag() {
        let res = newton_maximize(
            |x| (1.0 / x - 1.0, -1.0 / (x * x)),
            40.0,
            1e-8,
            50.0,
            1e-14,
            2,
        );
        // Only two iterations allowed; state machine flags completion anyway.
        assert!(res.evaluations <= 2);
        assert!(res.converged);
    }

    #[test]
    fn stepwise_state_matches_driver() {
        let f = |x: f64| (1.0 / x - 0.5, -1.0 / (x * x));
        let reference = newton_maximize(f, 0.3, 1e-8, 20.0, 1e-12, 100);

        let mut state = NewtonState::new(0.3, 1e-8, 20.0, 1e-12, 100);
        loop {
            match state.propose() {
                NewtonStep::Converged => break,
                NewtonStep::Evaluate(x) => {
                    let (d1, d2) = f(x);
                    state.update(d1, d2);
                }
            }
        }
        assert!(approx_eq(state.current, reference.xmax, 1e-10));
        // maximum of ln(x) - 0.5x is at x = 2.
        assert!(approx_eq(state.current, 2.0, 1e-6));
    }

    #[test]
    #[should_panic]
    fn rejects_start_outside_interval() {
        NewtonState::new(5.0, 0.0, 1.0, 1e-8, 10);
    }
}
