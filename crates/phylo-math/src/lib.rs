//! Numerical substrate for the phylogenetic likelihood kernel reproduction.
//!
//! This crate provides the small set of numerical building blocks the rest of
//! the workspace relies on:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma, normal and
//!   chi-square quantiles,
//! * [`gamma_rates`] — the discrete Γ model of among-site rate heterogeneity
//!   (Yang 1994),
//! * [`eigen`] — a cyclic Jacobi eigensolver for small symmetric matrices,
//!   used to diagonalize reversible substitution models,
//! * [`brent`] — Brent's derivative-free one-dimensional minimizer, used for
//!   the Q-matrix and α-shape parameter estimates,
//! * [`newton`] — a safeguarded one-dimensional Newton–Raphson iteration, used
//!   for branch-length optimization,
//! * [`matrix`] — tiny dense row-major matrix helpers for state-space sized
//!   (4×4 / 20×20) matrices.
//!
//! Everything here is deterministic, allocation-light and independent of the
//! rest of the workspace so that it can be tested in isolation.
//!
//! ```
//! use phylo_math::gamma_rates::discrete_gamma_rates;
//!
//! // Four discrete Γ rate categories: mean-one, ascending.
//! let rates = discrete_gamma_rates(0.5, 4);
//! assert_eq!(rates.len(), 4);
//! let mean: f64 = rates.iter().sum::<f64>() / 4.0;
//! assert!((mean - 1.0).abs() < 1e-8);
//! assert!(rates.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![forbid(unsafe_code)]

pub mod brent;
pub mod eigen;
pub mod gamma_rates;
pub mod matrix;
pub mod newton;
pub mod special;

/// Default relative tolerance used by equality helpers in tests.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal up to a combined absolute and
/// relative tolerance `tol`.
///
/// This is the comparison used throughout the workspace's tests; it treats two
/// non-finite values of the same kind (both `+inf`, both `-inf`, both NaN) as
/// equal so that degenerate likelihoods can be compared meaningfully.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

/// Clamps `x` into the closed interval `[lo, hi]`.
///
/// Panics in debug builds if `lo > hi`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp called with inverted bounds");
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1_000_000.0, 1_000_000.001, 1e-8));
        assert!(!approx_eq(1.0, 1.1, 1e-8));
    }

    #[test]
    fn approx_eq_nan_and_inf() {
        assert!(approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(!approx_eq(f64::INFINITY, 1.0, 1e-9));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9));
    }

    #[test]
    fn clamp_basic() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}
