//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! Reversible substitution models are diagonalized by symmetrizing the rate
//! matrix with the stationary frequencies and computing the eigensystem of the
//! symmetric result. State spaces are tiny (4 or 20), so the classic Jacobi
//! rotation method is simple, robust and plenty fast.

use crate::matrix::SquareMatrix;

/// Eigendecomposition of a symmetric matrix: `A = V · diag(values) · Vᵀ`.
///
/// `vectors` stores the eigenvectors as *columns*, i.e. `vectors[(i, k)]` is
/// the i-th component of the k-th eigenvector. Eigenpairs are sorted by
/// ascending eigenvalue.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored column-wise.
    pub vectors: SquareMatrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Panics
///
/// Panics if the matrix is not symmetric (up to `1e-9` absolute tolerance) or
/// if the iteration fails to converge, which cannot happen for well-formed
/// finite symmetric input.
pub fn symmetric_eigen(a: &SquareMatrix) -> SymmetricEigen {
    assert!(
        a.is_symmetric(1e-9),
        "symmetric_eigen requires a symmetric matrix"
    );
    let n = a.dim();
    let mut a = a.clone();
    let mut v = SquareMatrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        // Sum of absolute off-diagonal elements: convergence criterion.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)].abs();
            }
        }
        if off < 1e-300 || off < 1e-15 * frobenius(&a).max(1.0) {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // tan of rotation angle, choosing the smaller rotation.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                let tau = s / (1.0 + c);

                // Update A = Jᵀ A J.
                a[(p, p)] = app - t * apq;
                a[(q, q)] = aqq + t * apq;
                a[(p, q)] = 0.0;
                a[(q, p)] = 0.0;
                for i in 0..n {
                    if i != p && i != q {
                        let aip = a[(i, p)];
                        let aiq = a[(i, q)];
                        a[(i, p)] = aip - s * (aiq + tau * aip);
                        a[(p, i)] = a[(i, p)];
                        a[(i, q)] = aiq + s * (aip - tau * aiq);
                        a[(q, i)] = a[(i, q)];
                    }
                }
                // Accumulate eigenvectors: V = V J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip - s * (viq + tau * vip);
                    v[(i, q)] = viq + s * (vip - tau * viq);
                }
            }
        }
    }

    // Extract eigenvalues and sort ascending together with their vectors.
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&x, &y| {
        values[x]
            .partial_cmp(&values[y])
            .expect("finite eigenvalues")
    });

    let mut sorted_values = Vec::with_capacity(n);
    let mut sorted_vectors = SquareMatrix::zeros(n);
    for (new_col, &old_col) in order.iter().enumerate() {
        sorted_values.push(values[old_col]);
        for i in 0..n {
            sorted_vectors[(i, new_col)] = v[(i, old_col)];
        }
    }

    SymmetricEigen {
        values: sorted_values,
        vectors: sorted_vectors,
    }
}

fn frobenius(a: &SquareMatrix) -> f64 {
    a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
}

impl SymmetricEigen {
    /// Reconstructs `V · diag(values) · Vᵀ`; useful for testing.
    pub fn reconstruct(&self) -> SquareMatrix {
        let n = self.values.len();
        let mut scaled = self.vectors.clone();
        // scale columns by eigenvalues
        for k in 0..n {
            for i in 0..n {
                scaled[(i, k)] = self.vectors[(i, k)] * self.values[k];
            }
        }
        scaled.matmul(&self.vectors.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn check_decomposition(a: &SquareMatrix) {
        let eig = symmetric_eigen(a);
        let rec = eig.reconstruct();
        assert!(
            rec.max_abs_diff(a) < 1e-9,
            "reconstruction error {} too large",
            rec.max_abs_diff(a)
        );
        // Eigenvectors must be orthonormal.
        let vtv = eig.vectors.transpose().matmul(&eig.vectors);
        let id = SquareMatrix::identity(a.dim());
        assert!(vtv.max_abs_diff(&id) < 1e-9, "eigenvectors not orthonormal");
        // Eigenvalues ascending.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = SquareMatrix::from_rows(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let eig = symmetric_eigen(&a);
        assert!(approx_eq(eig.values[0], 1.0, 1e-12));
        assert!(approx_eq(eig.values[1], 2.0, 1e-12));
        assert!(approx_eq(eig.values[2], 3.0, 1e-12));
        check_decomposition(&a);
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = SquareMatrix::from_rows(2, &[2.0, 1.0, 1.0, 2.0]);
        let eig = symmetric_eigen(&a);
        assert!(approx_eq(eig.values[0], 1.0, 1e-12));
        assert!(approx_eq(eig.values[1], 3.0, 1e-12));
        check_decomposition(&a);
    }

    #[test]
    fn four_by_four_random_symmetric() {
        // Deterministic "random" symmetric matrix.
        let mut a = SquareMatrix::zeros(4);
        let mut seed = 1u64;
        for i in 0..4 {
            for j in i..4 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5;
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        check_decomposition(&a);
    }

    #[test]
    fn twenty_by_twenty_structured() {
        // A symmetric tridiagonal-ish 20x20 matrix, similar in size to a
        // protein model.
        let n = 20;
        let mut a = SquareMatrix::zeros(n);
        for i in 0..n {
            a[(i, i)] = 2.0 + i as f64 * 0.1;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        check_decomposition(&a);
    }

    #[test]
    fn trace_is_preserved() {
        let a = SquareMatrix::from_rows(3, &[4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 5.0]);
        let eig = symmetric_eigen(&a);
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        let eig_sum: f64 = eig.values.iter().sum();
        assert!(approx_eq(trace, eig_sum, 1e-10));
    }

    #[test]
    #[should_panic]
    fn rejects_asymmetric_input() {
        let a = SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        symmetric_eigen(&a);
    }
}
