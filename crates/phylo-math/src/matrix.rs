//! Tiny dense, row-major square matrices sized for substitution models.
//!
//! Substitution models operate on 4×4 (nucleotide) or 20×20 (amino acid)
//! matrices. These are small enough that a simple heap-allocated row-major
//! representation with straightforward loops is both clear and fast; there is
//! no need for a general linear-algebra dependency.

/// A dense, row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Creates an `n × n` matrix filled with zeros.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice of length `n * n`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must have n*n entries");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Matrix dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn matmul(&self, other: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch in matmul");
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "dimension mismatch in matvec");
        let mut out = vec![0.0; self.n];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += row[j] * v[j];
            }
            *out_i = acc;
        }
        out
    }

    /// Transpose of the matrix.
    pub fn transpose(&self) -> SquareMatrix {
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute difference between two matrices.
    pub fn max_abs_diff(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Checks symmetry up to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_times_anything() {
        let id = SquareMatrix::identity(3);
        let m = SquareMatrix::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(id.matmul(&m), m);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = SquareMatrix::from_rows(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let v = a.matvec(&[1.0, 1.0]);
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = SquareMatrix::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let sym = SquareMatrix::from_rows(2, &[1.0, 2.0, 2.0, 3.0]);
        let asym = SquareMatrix::from_rows(2, &[1.0, 2.0, 2.5, 3.0]);
        assert!(sym.is_symmetric(1e-12));
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn dot_product() {
        assert!(approx_eq(
            dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]),
            32.0,
            0.0
        ));
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_bad_length() {
        SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0]);
    }
}
