//! Brent's derivative-free one-dimensional minimizer.
//!
//! The paper's "classic" maximum-likelihood implementations optimize the Q
//! matrix rates and the Γ shape parameter α with Brent's algorithm (Brent,
//! 1973). This module provides a faithful implementation of the bounded
//! minimizer (golden-section search with parabolic interpolation), plus a
//! resumable, step-wise variant used by the `newPAR` scheme where one Brent
//! iteration must be advanced simultaneously for every partition.

/// Golden ratio constant used by Brent's method.
const CGOLD: f64 = 0.381_966_011_250_105_1;
/// Minimal absolute tolerance guard.
const ZEPS: f64 = 1e-12;

/// Result of a Brent minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentResult {
    /// Abscissa of the located minimum.
    pub xmin: f64,
    /// Function value at `xmin`.
    pub fmin: f64,
    /// Number of function evaluations performed.
    pub evaluations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Minimizes `f` over the bracket `[a, b]` with relative tolerance `tol`.
///
/// `max_iter` bounds the number of iterations (each iteration costs one
/// function evaluation after the initial bracketing evaluation).
///
/// # Panics
///
/// Panics if `a >= b` or `tol <= 0`.
pub fn brent_minimize<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> BrentResult {
    assert!(a < b, "invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");

    let mut state = BrentState::new(a, b);
    let mut evaluations = 0usize;
    // Initial evaluation at the golden-section point.
    let mut fx = f(state.x);
    evaluations += 1;
    state.set_initial_value(fx);

    let mut converged = false;
    for _ in 0..max_iter {
        match state.propose(tol) {
            BrentStep::Converged => {
                converged = true;
                break;
            }
            BrentStep::Evaluate(u) => {
                fx = f(u);
                evaluations += 1;
                state.update(u, fx);
            }
        }
    }

    BrentResult {
        xmin: state.x,
        fmin: state.fx,
        evaluations,
        converged,
    }
}

/// A single step request from the resumable Brent state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BrentStep {
    /// The optimizer wants the objective evaluated at this abscissa.
    Evaluate(f64),
    /// The bracket has shrunk below tolerance; `BrentState::x` is the minimum.
    Converged,
}

/// Resumable state of Brent's method.
///
/// The classic formulation is a loop that evaluates the objective once per
/// iteration. The `newPAR` parallelization needs to advance *many* Brent
/// optimizations (one per partition) in lock-step, evaluating all their
/// pending abscissae inside a single parallel region. `BrentState` exposes the
/// algorithm as `propose` / `update` pairs to make that possible, and
/// [`brent_minimize`] is a thin sequential driver over it so that both code
/// paths share the same logic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentState {
    a: f64,
    b: f64,
    /// Best abscissa found so far.
    pub x: f64,
    /// Objective value at `x`.
    pub fx: f64,
    w: f64,
    v: f64,
    fw: f64,
    fv: f64,
    /// Distance moved on the step before last.
    e: f64,
    d: f64,
    initialized: bool,
}

impl BrentState {
    /// Creates a new state for the bracket `[a, b]`; the first proposal is the
    /// golden-section point.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a < b, "invalid bracket [{a}, {b}]");
        let x = a + CGOLD * (b - a);
        Self {
            a,
            b,
            x,
            fx: f64::INFINITY,
            w: x,
            v: x,
            fw: f64::INFINITY,
            fv: f64::INFINITY,
            e: 0.0,
            d: 0.0,
            initialized: false,
        }
    }

    /// Records the objective value at the initial point (`self.x`).
    pub fn set_initial_value(&mut self, fx: f64) {
        self.fx = fx;
        self.fw = fx;
        self.fv = fx;
        self.initialized = true;
    }

    /// Returns the abscissa of the initial evaluation.
    pub fn initial_point(&self) -> f64 {
        self.x
    }

    /// Proposes the next point to evaluate, or reports convergence.
    ///
    /// # Panics
    ///
    /// Panics if called before [`BrentState::set_initial_value`].
    pub fn propose(&mut self, tol: f64) -> BrentStep {
        assert!(
            self.initialized,
            "BrentState::set_initial_value must be called first"
        );
        let xm = 0.5 * (self.a + self.b);
        let tol1 = tol * self.x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;

        if (self.x - xm).abs() <= tol2 - 0.5 * (self.b - self.a) {
            return BrentStep::Converged;
        }

        let mut use_golden = true;
        if self.e.abs() > tol1 {
            // Attempt parabolic interpolation through x, w, v.
            let r = (self.x - self.w) * (self.fx - self.fv);
            let mut q = (self.x - self.v) * (self.fx - self.fw);
            let mut p = (self.x - self.v) * q - (self.x - self.w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let etemp = self.e;
            if p.abs() < (0.5 * q * etemp).abs()
                && p > q * (self.a - self.x)
                && p < q * (self.b - self.x)
            {
                // Parabolic step accepted.
                self.e = self.d;
                self.d = p / q;
                let u = self.x + self.d;
                if u - self.a < tol2 || self.b - u < tol2 {
                    self.d = if xm - self.x >= 0.0 { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            self.e = if self.x >= xm {
                self.a - self.x
            } else {
                self.b - self.x
            };
            self.d = CGOLD * self.e;
        }

        let u = if self.d.abs() >= tol1 {
            self.x + self.d
        } else {
            self.x + if self.d >= 0.0 { tol1 } else { -tol1 }
        };
        BrentStep::Evaluate(u)
    }

    /// Incorporates the objective value `fu` observed at the proposed point `u`.
    pub fn update(&mut self, u: f64, fu: f64) {
        if fu <= self.fx {
            if u >= self.x {
                self.a = self.x;
            } else {
                self.b = self.x;
            }
            self.v = self.w;
            self.fv = self.fw;
            self.w = self.x;
            self.fw = self.fx;
            self.x = u;
            self.fx = fu;
        } else {
            if u < self.x {
                self.a = u;
            } else {
                self.b = u;
            }
            if fu <= self.fw || self.w == self.x {
                self.v = self.w;
                self.fv = self.fw;
                self.w = u;
                self.fw = fu;
            } else if fu <= self.fv || self.v == self.x || self.v == self.w {
                self.v = u;
                self.fv = fu;
            }
        }
    }

    /// Current best function value.
    pub fn best_value(&self) -> f64 {
        self.fx
    }

    /// Current best abscissa.
    pub fn best_point(&self) -> f64 {
        self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn quadratic_minimum() {
        let res = brent_minimize(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 10.0, 1e-10, 200);
        assert!(res.converged);
        assert!(approx_eq(res.xmin, 2.0, 1e-6), "xmin = {}", res.xmin);
        assert!(approx_eq(res.fmin, 1.0, 1e-10));
    }

    #[test]
    fn quartic_asymmetric() {
        let res = brent_minimize(|x| (x - 0.3).powi(4) + 0.5 * x, -2.0, 2.0, 1e-12, 300);
        assert!(res.converged);
        // Analytic minimum of (x-0.3)^4 + 0.5x: derivative 4(x-0.3)^3 + 0.5 = 0
        // => x = 0.3 - (0.125)^{1/3} = 0.3 - 0.5 = -0.2
        assert!(approx_eq(res.xmin, -0.2, 1e-5), "xmin = {}", res.xmin);
    }

    #[test]
    fn cosine_minimum() {
        let res = brent_minimize(|x: f64| x.cos(), 2.0, 5.0, 1e-10, 200);
        assert!(res.converged);
        assert!(approx_eq(res.xmin, std::f64::consts::PI, 1e-6));
        assert!(approx_eq(res.fmin, -1.0, 1e-10));
    }

    #[test]
    fn minimum_at_boundary() {
        // Monotone increasing function: minimum is at the left edge of the
        // bracket; Brent should converge very near it.
        let res = brent_minimize(|x| x, 1.0, 3.0, 1e-8, 200);
        assert!(res.converged);
        assert!(res.xmin < 1.001, "xmin = {}", res.xmin);
    }

    #[test]
    fn stepwise_state_matches_driver() {
        // Drive BrentState manually and confirm it reaches the same minimum as
        // the convenience wrapper.
        let f = |x: f64| (x - 1.5).powi(2) + 3.0;
        let mut state = BrentState::new(0.0, 4.0);
        state.set_initial_value(f(state.initial_point()));
        let mut iterations = 0;
        loop {
            match state.propose(1e-10) {
                BrentStep::Converged => break,
                BrentStep::Evaluate(u) => {
                    state.update(u, f(u));
                }
            }
            iterations += 1;
            assert!(iterations < 500, "failed to converge");
        }
        let reference = brent_minimize(f, 0.0, 4.0, 1e-10, 500);
        assert!(approx_eq(state.best_point(), reference.xmin, 1e-8));
        assert!(approx_eq(state.best_value(), reference.fmin, 1e-12));
    }

    #[test]
    fn evaluation_count_is_reported() {
        let res = brent_minimize(|x| (x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-10, 200);
        assert!(res.evaluations > 5);
        assert!(res.evaluations < 100);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_bracket() {
        brent_minimize(|x| x, 1.0, 1.0, 1e-8, 10);
    }
}
