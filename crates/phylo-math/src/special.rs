//! Special functions: log-gamma, regularized incomplete gamma, and quantiles
//! of the standard normal, chi-square and gamma distributions.
//!
//! These are the ingredients of the discrete Γ model of rate heterogeneity
//! (Yang, 1994): computing the per-category rates requires the gamma quantile
//! function (via the chi-square quantile) and the regularized lower incomplete
//! gamma function.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), which is accurate to
/// roughly 15 significant digits over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");

    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. Computed with the series expansion for
/// `x < a + 1` and the continued fraction for the complement otherwise
/// (Numerical Recipes `gser`/`gcf`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn incomplete_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "incomplete_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "incomplete_gamma_p requires x >= 0, got {x}");

    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn incomplete_gamma_q(a: f64, x: f64) -> f64 {
    1.0 - incomplete_gamma_p(a, x)
}

const MAX_ITER: usize = 400;
const EPS: f64 = 1e-15;
const FPMIN: f64 = 1e-300;

/// Series representation of `P(a, x)`, valid (rapidly convergent) for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Continued-fraction representation of `Q(a, x)`, valid for `x >= a + 1`.
fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Uses Acklam's rational approximation (relative error below 1.15e-9) with a
/// single Halley refinement step, which pushes the accuracy close to machine
/// precision for `p` well inside `(0, 1)`.
///
/// # Panics
///
/// Panics if `p <= 0` or `p >= 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires 0 < p < 1, got {p}"
    );

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method on Φ(x) - p = 0.
    let e = 0.5 * erfc_scalar(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Complementary error function, via the incomplete gamma function.
fn erfc_scalar(x: f64) -> f64 {
    if x >= 0.0 {
        incomplete_gamma_q(0.5, x * x)
    } else {
        1.0 + incomplete_gamma_p(0.5, x * x)
    }
}

/// Quantile of the chi-square distribution with `nu` degrees of freedom.
///
/// Uses the Wilson–Hilferty approximation as the starting point and refines it
/// with Newton iterations on the regularized incomplete gamma function.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` or `nu <= 0`.
pub fn chi_square_quantile(p: f64, nu: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "chi_square_quantile requires 0 < p < 1, got {p}"
    );
    assert!(nu > 0.0, "chi_square_quantile requires nu > 0, got {nu}");

    let a = nu / 2.0;

    // Wilson–Hilferty starting value.
    let z = normal_quantile(p);
    let wh = nu * (1.0 - 2.0 / (9.0 * nu) + z * (2.0 / (9.0 * nu)).sqrt()).powi(3);
    let mut x = if wh.is_finite() && wh > 0.0 { wh } else { nu };

    // For very small degrees of freedom the WH approximation can be poor; use
    // an alternative start based on the small-x series of P(a, x):
    // P(a, x) ≈ x^a / (a Γ(a)) ⇒ x ≈ (p a Γ(a))^{1/a}.
    if nu < 0.5 || !x.is_finite() || x <= 0.0 {
        let lg = ln_gamma(a);
        x = (p * a).powf(1.0 / a) * (lg / a).exp() * 2.0;
        if !x.is_finite() || x <= 0.0 {
            x = nu;
        }
    }

    // Newton iterations on F(x) = P(a, x/2) - p, F'(x) = pdf of chi-square.
    let gln = ln_gamma(a);
    for _ in 0..100 {
        let f = incomplete_gamma_p(a, x / 2.0) - p;
        // chi-square pdf.
        let ln_pdf = (a - 1.0) * (x / 2.0).ln() - x / 2.0 - gln - std::f64::consts::LN_2;
        let pdf = ln_pdf.exp();
        if pdf <= 0.0 || !pdf.is_finite() {
            break;
        }
        let step = f / pdf;
        let mut next = x - step;
        // Keep the iterate strictly positive.
        if next <= 0.0 {
            next = x / 2.0;
        }
        let done = (next - x).abs() <= 1e-12 * x.max(1e-12);
        x = next;
        if done {
            break;
        }
    }
    x
}

/// Quantile of the gamma distribution with shape `alpha` and rate `beta`
/// (mean `alpha / beta`).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`, or `alpha`/`beta` are not positive.
pub fn gamma_quantile(p: f64, alpha: f64, beta: f64) -> f64 {
    assert!(
        alpha > 0.0 && beta > 0.0,
        "gamma_quantile requires positive shape and rate"
    );
    chi_square_quantile(p, 2.0 * alpha) / (2.0 * beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let factorials: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in factorials.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!(
                approx_eq(ln_gamma(n), f.ln(), 1e-12),
                "ln_gamma({n}) = {}, expected {}",
                ln_gamma(n),
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!(approx_eq(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(3/2) = sqrt(pi)/2
        assert!(approx_eq(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(incomplete_gamma_p(1.0, 0.0), 0.0);
        assert!(incomplete_gamma_p(1.0, 700.0) > 1.0 - 1e-12);
    }

    #[test]
    fn incomplete_gamma_exponential_case() {
        // For a = 1 the gamma distribution is exponential: P(1, x) = 1 - e^{-x}.
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expected = 1.0 - (-x).exp();
            assert!(
                approx_eq(incomplete_gamma_p(1.0, x), expected, 1e-12),
                "P(1, {x})"
            );
        }
    }

    #[test]
    fn incomplete_gamma_known_values() {
        // Reference values computed with scipy.special.gammainc.
        assert!(approx_eq(
            incomplete_gamma_p(0.5, 0.5),
            0.682_689_492_137_085_9,
            1e-10
        ));
        assert!(approx_eq(
            incomplete_gamma_p(2.0, 2.0),
            0.593_994_150_290_161_9,
            1e-10
        ));
        assert!(approx_eq(
            incomplete_gamma_p(5.0, 1.0),
            0.003_659_846_827_343_713,
            1e-9
        ));
        assert!(approx_eq(
            incomplete_gamma_p(0.3, 4.0),
            0.997_977_489_354_389_2,
            1e-9
        ));
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.1, 0.5, 1.0, 3.7, 10.0] {
            for &x in &[0.01, 0.5, 1.0, 4.0, 20.0] {
                let s = incomplete_gamma_p(a, x) + incomplete_gamma_q(a, x);
                assert!(approx_eq(s, 1.0, 1e-12), "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn normal_quantile_symmetry_and_median() {
        assert!(approx_eq(normal_quantile(0.5), 0.0, 1e-12));
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            assert!(approx_eq(
                normal_quantile(p),
                -normal_quantile(1.0 - p),
                1e-9
            ));
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        // Reference values from scipy.stats.norm.ppf.
        assert!(approx_eq(
            normal_quantile(0.975),
            1.959_963_984_540_054,
            1e-8
        ));
        assert!(approx_eq(
            normal_quantile(0.025),
            -1.959_963_984_540_054,
            1e-8
        ));
        assert!(approx_eq(normal_quantile(0.841_344_746_068_543), 1.0, 1e-7));
    }

    #[test]
    fn chi_square_quantile_roundtrip() {
        for &nu in &[0.5, 1.0, 2.0, 4.0, 10.0, 50.0] {
            for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
                let x = chi_square_quantile(p, nu);
                let back = incomplete_gamma_p(nu / 2.0, x / 2.0);
                assert!(approx_eq(back, p, 1e-7), "nu={nu} p={p} x={x} back={back}");
            }
        }
    }

    #[test]
    fn chi_square_quantile_known_values() {
        // Reference values from scipy.stats.chi2.ppf.
        assert!(approx_eq(
            chi_square_quantile(0.95, 1.0),
            3.841_458_820_694_124,
            1e-6
        ));
        assert!(approx_eq(
            chi_square_quantile(0.95, 10.0),
            18.307_038_053_275_146,
            1e-6
        ));
        assert!(approx_eq(
            chi_square_quantile(0.5, 2.0),
            1.386_294_361_119_890_6,
            1e-8
        ));
    }

    #[test]
    fn gamma_quantile_exponential_case() {
        // Exponential with rate 1: quantile(p) = -ln(1-p).
        for &p in &[0.1, 0.5, 0.9] {
            assert!(approx_eq(
                gamma_quantile(p, 1.0, 1.0),
                -(1.0 - p).ln(),
                1e-7
            ));
        }
    }

    #[test]
    fn gamma_quantile_monotone_in_p() {
        let alpha = 0.47;
        let mut prev = 0.0;
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let q = gamma_quantile(p, alpha, alpha);
            assert!(q > prev, "quantile must be strictly increasing");
            prev = q;
        }
    }
}
