//! Unrooted binary phylogenetic trees.
//!
//! The likelihood kernel works on unrooted, strictly binary trees: the `n`
//! taxa sit at the leaves, the `n − 2` inner nodes represent extinct common
//! ancestors, and the `2n − 3` branches carry the expected number of
//! substitutions between the nodes they connect. A *virtual root* can be
//! placed on any branch to evaluate the likelihood; under time-reversible
//! models the score does not depend on that placement.
//!
//! Modules:
//!
//! * [`topology`] — the arena-based tree structure, leaf/internal bookkeeping,
//!   branch indexing and stepwise leaf insertion,
//! * [`traversal`] — rooted post-order traversal plans (the "traversal lists"
//!   the master thread builds in the paper's Section IV),
//! * [`spr`] — subtree pruning and regrafting moves with undo information,
//!   the topological move used by the tree-search phase,
//! * [`newick`] — Newick parsing and serialization,
//! * [`random`] — deterministic random topologies and branch lengths.
//!
//! ```
//! use phylo_tree::newick;
//!
//! let tree = newick::parse_newick("((t1,t2),(t3,t4));").unwrap();
//! assert_eq!(tree.taxa(), &["t1", "t2", "t3", "t4"]);
//! // An unrooted binary tree on n taxa has 2n − 3 branches.
//! assert_eq!(tree.branch_count(), 5);
//! assert!(tree.is_complete());
//! // Serialization round-trips the topology.
//! let text = newick::to_newick(&tree);
//! assert_eq!(newick::parse_newick(&text).unwrap().bipartitions(), tree.bipartitions());
//! ```

#![forbid(unsafe_code)]

pub mod newick;
pub mod random;
pub mod spr;
pub mod topology;
pub mod traversal;

pub use topology::{BranchId, NodeId, Tree};
pub use traversal::{orientation_toward_branch, TraversalPlan, TraversalStep};

/// Errors produced while building or manipulating trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The Newick string could not be parsed; the payload describes why.
    Parse(String),
    /// A tree operation was attempted on a malformed or incomplete tree.
    Invalid(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Parse(msg) => write!(f, "newick parse error: {msg}"),
            TreeError::Invalid(msg) => write!(f, "invalid tree operation: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}
