//! Deterministic random tree generation.
//!
//! The paper's simulated datasets are generated on seed trees "from real-world
//! analyses"; we do not have those trees, so the dataset generator draws
//! random topologies by stepwise addition (every unrooted topology is
//! reachable) and random branch lengths. All randomness flows through the
//! caller-supplied RNG so datasets are exactly reproducible from a seed.

use rand::Rng;

use crate::topology::Tree;

/// Default mean branch length for randomly generated trees, in expected
/// substitutions per site. 0.1 is a typical value for empirical phylogenies.
pub const DEFAULT_MEAN_BRANCH_LENGTH: f64 = 0.1;

/// Generates a random unrooted binary topology over `names` by random-order
/// stepwise addition, with exponentially distributed branch lengths of mean
/// [`DEFAULT_MEAN_BRANCH_LENGTH`].
pub fn random_tree<R: Rng>(names: &[String], rng: &mut R) -> Tree {
    random_tree_with_lengths(names, DEFAULT_MEAN_BRANCH_LENGTH, rng)
}

/// Generates a random unrooted binary topology with exponentially distributed
/// branch lengths of the given mean.
///
/// # Panics
///
/// Panics if fewer than three names are supplied or `mean_branch_length` is
/// not positive.
pub fn random_tree_with_lengths<R: Rng>(
    names: &[String],
    mean_branch_length: f64,
    rng: &mut R,
) -> Tree {
    assert!(names.len() >= 3, "need at least three taxa");
    assert!(
        mean_branch_length > 0.0,
        "mean branch length must be positive"
    );

    // Random insertion order.
    let mut order: Vec<usize> = (0..names.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    let mut tree = Tree::initial_triplet(names.to_vec(), [order[0], order[1], order[2]]);
    for &leaf in &order[3..] {
        let branch = rng.gen_range(0..tree.branch_count());
        tree.insert_leaf(leaf, branch, exponential(mean_branch_length, rng));
    }

    // Redraw every branch length so the early branches are not biased by the
    // repeated halving that stepwise insertion performs.
    for b in 0..tree.branch_count() {
        tree.set_branch_length(b, exponential(mean_branch_length, rng));
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

/// Draws an exponentially distributed value with the given mean, clamped away
/// from zero so it is always a usable branch length.
fn exponential<R: Rng>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn generated_trees_are_valid() {
        for n in [3usize, 4, 5, 10, 50, 125] {
            let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
            let t = random_tree(&names(n), &mut rng);
            assert!(t.validate().is_ok(), "n = {n}");
            assert_eq!(t.branch_count(), 2 * n - 3);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let a = random_tree(&names(20), &mut rng1);
        let b = random_tree(&names(20), &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_topologies() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let a = random_tree(&names(20), &mut rng1);
        let b = random_tree(&names(20), &mut rng2);
        assert_ne!(a.bipartitions(), b.bipartitions());
    }

    #[test]
    fn branch_lengths_are_positive_and_reasonable() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = random_tree_with_lengths(&names(30), 0.05, &mut rng);
        let mean: f64 = t.branch_lengths().iter().sum::<f64>() / t.branch_count() as f64;
        for &l in t.branch_lengths() {
            assert!(l > 0.0);
        }
        assert!(
            mean > 0.01 && mean < 0.2,
            "mean branch length {mean} implausible"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_too_few_taxa() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        random_tree(&names(2), &mut rng);
    }
}
