//! Newick tree serialization and parsing.
//!
//! Unrooted binary trees are written rooted at an internal node with a
//! trifurcation, e.g. `(A:0.1,B:0.2,(C:0.3,D:0.4):0.5);`. The parser also
//! accepts rooted (bifurcating-root) files and unroots them by merging the two
//! root branches, which is how most phylogenetics software treats such input.

use crate::topology::{NodeId, Tree, DEFAULT_BRANCH_LENGTH};
use crate::TreeError;

/// Serializes the tree as a Newick string with branch lengths.
///
/// The output is rooted at the internal node adjacent to leaf 0, which yields
/// a canonical trifurcating representation of the unrooted tree.
pub fn to_newick(tree: &Tree) -> String {
    let anchor = tree.neighbors(0)[0].0;
    let mut out = String::from("(");
    let neighbors: Vec<(NodeId, usize)> = tree.neighbors(anchor).to_vec();
    for (i, &(child, branch)) in neighbors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_subtree(tree, child, anchor, &mut out);
        out.push_str(&format!(":{}", format_length(tree.branch_length(branch))));
    }
    out.push_str(");");
    out
}

fn write_subtree(tree: &Tree, node: NodeId, parent: NodeId, out: &mut String) {
    if tree.is_leaf(node) {
        out.push_str(tree.taxon_name(node));
        return;
    }
    out.push('(');
    let children: Vec<(NodeId, usize)> = tree
        .neighbors(node)
        .iter()
        .copied()
        .filter(|&(n, _)| n != parent)
        .collect();
    for (i, &(child, branch)) in children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_subtree(tree, child, node, out);
        out.push_str(&format!(":{}", format_length(tree.branch_length(branch))));
    }
    out.push(')');
}

fn format_length(len: f64) -> String {
    format!("{len:.8}")
}

/// Parses a Newick string into an unrooted binary [`Tree`].
///
/// Taxon leaf ids are assigned in order of appearance in the string. Missing
/// branch lengths default to [`DEFAULT_BRANCH_LENGTH`]; internal node labels
/// (support values) are ignored.
///
/// # Errors
///
/// Returns [`TreeError::Parse`] for syntax errors and [`TreeError::Invalid`]
/// if the described tree is not strictly binary after unrooting.
pub fn parse_newick(text: &str) -> Result<Tree, TreeError> {
    let mut parser = Parser {
        chars: text.trim().chars().collect(),
        pos: 0,
    };
    let root = parser.parse_clade()?;
    parser.skip_whitespace();
    if parser.peek() == Some(':') {
        // A root branch length; read and discard.
        parser.pos += 1;
        parser.parse_number()?;
    }
    parser.skip_whitespace();
    if parser.peek() == Some(';') {
        parser.pos += 1;
    }
    parser.skip_whitespace();
    if parser.pos != parser.chars.len() {
        return Err(TreeError::Parse(format!(
            "trailing characters after position {}",
            parser.pos
        )));
    }
    build_tree(root)
}

/// Intermediate recursive structure produced by the parser.
#[derive(Debug)]
struct Clade {
    name: Option<String>,
    length: Option<f64>,
    children: Vec<Clade>,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_clade(&mut self) -> Result<Clade, TreeError> {
        self.skip_whitespace();
        let mut clade = Clade {
            name: None,
            length: None,
            children: Vec::new(),
        };
        if self.peek() == Some('(') {
            self.pos += 1;
            loop {
                let child = self.parse_clade()?;
                clade.children.push(child);
                self.skip_whitespace();
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(')') => {
                        self.pos += 1;
                        break;
                    }
                    other => {
                        return Err(TreeError::Parse(format!(
                            "expected ',' or ')' at position {}, found {other:?}",
                            self.pos
                        )))
                    }
                }
            }
        }
        // Optional label (taxon name for leaves, support value for inner nodes).
        self.skip_whitespace();
        let label = self.parse_label();
        if !label.is_empty() {
            clade.name = Some(label);
        }
        // Optional branch length.
        self.skip_whitespace();
        if self.peek() == Some(':') {
            self.pos += 1;
            clade.length = Some(self.parse_number()?);
        }
        if clade.children.is_empty() && clade.name.is_none() {
            return Err(TreeError::Parse(format!(
                "unnamed leaf at position {}",
                self.pos
            )));
        }
        Ok(clade)
    }

    fn parse_label(&mut self) -> String {
        let mut label = String::new();
        while let Some(c) = self.peek() {
            if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' || c.is_whitespace() {
                break;
            }
            label.push(c);
            self.pos += 1;
        }
        label
    }

    fn parse_number(&mut self) -> Result<f64, TreeError> {
        self.skip_whitespace();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map_err(|_| {
            TreeError::Parse(format!(
                "invalid branch length '{text}' at position {start}"
            ))
        })
    }
}

fn build_tree(mut root: Clade) -> Result<Tree, TreeError> {
    // Unroot a bifurcating root by merging its two child branches.
    if root.children.len() == 2 {
        let second = root.children.pop().expect("two children");
        let merged_len = second.length.unwrap_or(DEFAULT_BRANCH_LENGTH)
            + root.children[0].length.unwrap_or(DEFAULT_BRANCH_LENGTH);
        if second.children.is_empty() {
            // The second child is a leaf: graft it under the first child's clade
            // is not possible without creating a degree-2 node, so instead make
            // the *first* child the new root if it is internal.
            let first = root.children.pop().expect("one child");
            if first.children.is_empty() {
                return Err(TreeError::Invalid(
                    "cannot unroot a two-leaf tree; at least 3 taxa are required".into(),
                ));
            }
            let mut new_root = first;
            new_root.children.push(Clade {
                length: Some(merged_len),
                ..second
            });
            new_root.length = None;
            root = new_root;
        } else {
            let mut new_second = second;
            new_second.length = Some(merged_len);
            // If the first child is a leaf, re-root at the (internal) second
            // child and hang the leaf off it with the merged branch length;
            // otherwise re-root at the first child and hang the second child
            // off it.
            if root.children[0].children.is_empty() {
                // First child is a leaf: root the tree at the second child.
                let leaf = root.children.pop().expect("leaf child");
                let mut new_root = new_second;
                new_root.children.push(Clade {
                    length: Some(merged_len),
                    ..leaf
                });
                new_root.length = None;
                root = new_root;
            } else {
                // Both children internal: merge by making the second child a
                // child of the first with the combined branch length.
                let mut new_root = root.children.pop().expect("first child");
                new_root.children.push(new_second);
                new_root.length = None;
                root = new_root;
            }
        }
    }
    if root.children.len() < 3 {
        return Err(TreeError::Invalid(format!(
            "root must have at least 3 children after unrooting, found {}",
            root.children.len()
        )));
    }

    // First pass: collect taxa in order of appearance and check binarity.
    let mut taxa = Vec::new();
    collect_taxa(&root, &mut taxa, true)?;
    let n_taxa = taxa.len();
    if n_taxa < 3 {
        return Err(TreeError::Invalid("fewer than 3 taxa".into()));
    }

    // Second pass: assign node ids and emit edges.
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(2 * n_taxa - 3);
    let mut next_internal = n_taxa;
    let mut leaf_cursor = 0usize;
    let root_id = next_internal;
    next_internal += 1;
    for child in &root.children {
        emit_edges(
            child,
            root_id,
            &mut leaf_cursor,
            &mut next_internal,
            &mut edges,
        )?;
    }
    Tree::from_edges(taxa, &edges)
}

fn collect_taxa(clade: &Clade, taxa: &mut Vec<String>, is_root: bool) -> Result<(), TreeError> {
    if clade.children.is_empty() {
        let name = clade
            .name
            .clone()
            .ok_or_else(|| TreeError::Parse("leaf without a name".into()))?;
        if taxa.contains(&name) {
            return Err(TreeError::Parse(format!("duplicate taxon name '{name}'")));
        }
        taxa.push(name);
        return Ok(());
    }
    let expected = if is_root { 3 } else { 2 };
    if clade.children.len() != expected {
        return Err(TreeError::Invalid(format!(
            "node with {} children found; the tree must be strictly binary (multifurcations are not supported)",
            clade.children.len()
        )));
    }
    for c in &clade.children {
        collect_taxa(c, taxa, false)?;
    }
    Ok(())
}

fn emit_edges(
    clade: &Clade,
    parent: NodeId,
    leaf_cursor: &mut usize,
    next_internal: &mut NodeId,
    edges: &mut Vec<(NodeId, NodeId, f64)>,
) -> Result<(), TreeError> {
    let length = clade.length.unwrap_or(DEFAULT_BRANCH_LENGTH);
    if clade.children.is_empty() {
        let id = *leaf_cursor;
        *leaf_cursor += 1;
        edges.push((parent, id, length));
        return Ok(());
    }
    let id = *next_internal;
    *next_internal += 1;
    edges.push((parent, id, length));
    for c in &clade.children {
        emit_edges(c, id, leaf_cursor, next_internal, edges)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parse_simple_trifurcating() {
        let t = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.5);").unwrap();
        assert_eq!(t.n_taxa(), 4);
        assert!(t.validate().is_ok());
        assert_eq!(t.taxa(), &["A", "B", "C", "D"]);
        // Pendant branch of A has length 0.1.
        let a = t.leaf_by_name("A").unwrap();
        let (_, b) = t.neighbors(a)[0];
        assert!((t.branch_length(b) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn parse_rooted_bifurcating_is_unrooted() {
        // Rooted version of the same 4-taxon tree.
        let t = parse_newick("((A:0.1,B:0.2):0.25,(C:0.3,D:0.4):0.25);").unwrap();
        assert_eq!(t.n_taxa(), 4);
        assert!(t.validate().is_ok());
        assert_eq!(t.branch_count(), 5);
        // The two root branches merge into one of length 0.5.
        let reference = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.5);").unwrap();
        assert_eq!(t.bipartitions(), reference.bipartitions());
    }

    #[test]
    fn parse_missing_lengths_get_default() {
        let t = parse_newick("(A,B,(C,D));").unwrap();
        for b in t.branches() {
            assert!((t.branch_length(b) - DEFAULT_BRANCH_LENGTH).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip_preserves_topology_and_lengths() {
        for seed in 0..5u64 {
            let names: Vec<String> = (0..20).map(|i| format!("taxon_{i}")).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let t = random_tree(&names, &mut rng);
            let text = to_newick(&t);
            let back = parse_newick(&text).unwrap();
            assert_eq!(back.n_taxa(), t.n_taxa());
            assert_eq!(back.bipartitions(), t.bipartitions(), "seed {seed}");
            // Total tree length is preserved.
            let len_a: f64 = t.branch_lengths().iter().sum();
            let len_b: f64 = back.branch_lengths().iter().sum();
            assert!(
                (len_a - len_b).abs() < 1e-5,
                "seed {seed}: {len_a} vs {len_b}"
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(parse_newick("").is_err());
        assert!(parse_newick("(A:0.1,B:0.2").is_err());
        assert!(parse_newick("(A:0.1,B:0.2,C:0.x);").is_err());
        assert!(parse_newick("(A,B);").is_err());
        assert!(parse_newick("(A,A,B);").is_err());
        assert!(parse_newick("(A,B,C,D);").is_err());
        assert!(parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.5); trailing").is_err());
    }

    #[test]
    fn parse_scientific_notation_lengths() {
        let t = parse_newick("(A:1e-3,B:2.5E-2,(C:1.0e0,D:0.4):5e-1);").unwrap();
        let a = t.leaf_by_name("A").unwrap();
        let (_, b) = t.neighbors(a)[0];
        assert!((t.branch_length(b) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn internal_labels_are_ignored() {
        let t = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4)95:0.5);").unwrap();
        assert_eq!(t.n_taxa(), 4);
    }

    #[test]
    fn large_round_trip() {
        let names: Vec<String> = (0..100).map(|i| format!("sp{i}")).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let t = random_tree(&names, &mut rng);
        let back = parse_newick(&to_newick(&t)).unwrap();
        assert_eq!(back.bipartitions(), t.bipartitions());
    }
}
