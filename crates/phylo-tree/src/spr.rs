//! Subtree pruning and regrafting (SPR).
//!
//! The tree-search phase of RAxML-style programs improves the topology with
//! SPR moves: a subtree is clipped out of the tree and re-inserted on another
//! branch within a bounded radius of its original position. This module
//! provides the topological operation itself (with undo information) and the
//! enumeration of candidate moves; the search strategy lives in
//! `phylo-search`.

use crate::topology::{BranchId, NodeId, Tree};
use crate::TreeError;

/// Description of an SPR move before it is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SprMove {
    /// The internal node that is clipped out together with its subtree.
    pub pruned_node: NodeId,
    /// The neighbor of `pruned_node` whose branch stays attached; the subtree
    /// on that side moves along with `pruned_node`.
    pub subtree_neighbor: NodeId,
    /// The branch onto which `pruned_node` is regrafted.
    pub target_branch: BranchId,
}

/// Undo record returned by [`apply`]; feed it to [`undo`] to restore the tree
/// exactly (topology and branch lengths).
#[derive(Debug, Clone, PartialEq)]
pub struct SprUndo {
    mv: SprMove,
    /// Branch that connected `pruned_node` to the first merged neighbor.
    kept_branch: BranchId,
    kept_neighbor: NodeId,
    kept_length: f64,
    /// Branch that connected `pruned_node` to the second merged neighbor; it
    /// is reused as one half of the split target branch.
    freed_branch: BranchId,
    freed_neighbor: NodeId,
    freed_length: f64,
    /// Original endpoints and length of the target branch.
    target_ends: (NodeId, NodeId),
    target_length: f64,
    /// Internal nodes whose conditional likelihood vectors are affected by the
    /// move (the path between the old and the new attachment point, plus the
    /// pruned node itself). The kernel uses this to invalidate its cache.
    pub affected_nodes: Vec<NodeId>,
    /// The two branches incident to `pruned_node` after regrafting (useful for
    /// local branch-length optimization around the insertion point).
    pub inserted_branches: [BranchId; 3],
}

impl SprUndo {
    /// The SPR move this record undoes.
    pub fn spr_move(&self) -> SprMove {
        self.mv
    }

    /// The branch that now connects the two former neighbors of the pruned
    /// node (its length is the sum of the two merged branches).
    pub fn merged_branch(&self) -> BranchId {
        self.kept_branch
    }
}

/// Applies an SPR move, returning the undo record.
///
/// # Errors
///
/// Returns [`TreeError::Invalid`] if the move is not well formed: the pruned
/// node must be internal, the subtree neighbor must be adjacent to it, and the
/// target branch must lie in the remaining tree (not in the pruned subtree and
/// not incident to the pruned node).
pub fn apply(tree: &mut Tree, mv: SprMove) -> Result<SprUndo, TreeError> {
    let p = mv.pruned_node;
    if tree.is_leaf(p) {
        return Err(TreeError::Invalid(format!("pruned node {p} is a leaf")));
    }
    let neighbors: Vec<(NodeId, BranchId)> = tree.neighbors(p).to_vec();
    if neighbors.len() != 3 {
        return Err(TreeError::Invalid(format!(
            "node {p} does not have three neighbors"
        )));
    }
    let subtree_entry = neighbors
        .iter()
        .find(|&&(n, _)| n == mv.subtree_neighbor)
        .copied()
        .ok_or_else(|| {
            TreeError::Invalid(format!(
                "node {} is not adjacent to pruned node {p}",
                mv.subtree_neighbor
            ))
        })?;
    let remaining: Vec<(NodeId, BranchId)> = neighbors
        .into_iter()
        .filter(|&(n, _)| n != mv.subtree_neighbor)
        .collect();
    let (q, bq) = remaining[0];
    let (r, br) = remaining[1];

    // The target branch must not be incident to p and must not lie inside the
    // pruned subtree (the side of `subtree_neighbor`).
    if mv.target_branch == bq || mv.target_branch == br || mv.target_branch == subtree_entry.1 {
        return Err(TreeError::Invalid(
            "target branch is incident to the pruned node".into(),
        ));
    }
    let pruned_side = tree.nodes_on_side(subtree_entry.1, mv.subtree_neighbor);
    let (tx, ty) = tree.branch_endpoints(mv.target_branch);
    if pruned_side.contains(&tx) || pruned_side.contains(&ty) {
        return Err(TreeError::Invalid(
            "target branch lies inside the pruned subtree".into(),
        ));
    }

    let kept_length = tree.branch_length(bq);
    let freed_length = tree.branch_length(br);
    let target_length = tree.branch_length(mv.target_branch);

    // --- Prune: join q and r with branch bq, free branch br. ---
    {
        let adjacency = tree.adjacency_mut();
        // p keeps only the subtree neighbor.
        adjacency[p].retain(|&(n, _)| n == mv.subtree_neighbor);
        // q's entry for bq now points to r.
        for e in &mut adjacency[q] {
            if e.1 == bq {
                e.0 = r;
            }
        }
        // r loses br and gains bq towards q.
        adjacency[r].retain(|&(_, b)| b != br);
        adjacency[r].push((q, bq));
    }
    tree.branch_ends_mut()[bq] = (q, r);
    tree.branch_lengths_mut()[bq] =
        (kept_length + freed_length).min(crate::topology::MAX_BRANCH_LENGTH);

    // --- Regraft: split the target branch (x, y) into (x, p) and (p, y). ---
    let (x, y) = tree.branch_endpoints(mv.target_branch);
    {
        let adjacency = tree.adjacency_mut();
        // y's entry for the target branch is replaced by the freed branch br.
        for e in &mut adjacency[y] {
            if e.1 == mv.target_branch {
                e.0 = p;
                e.1 = br;
            }
        }
        // x's entry for the target branch now points to p.
        for e in &mut adjacency[x] {
            if e.1 == mv.target_branch {
                e.0 = p;
            }
        }
        adjacency[p].push((x, mv.target_branch));
        adjacency[p].push((y, br));
    }
    tree.branch_ends_mut()[mv.target_branch] = (x, p);
    tree.branch_ends_mut()[br] = (p, y);
    let half = (target_length * 0.5).max(crate::topology::MIN_BRANCH_LENGTH);
    tree.branch_lengths_mut()[mv.target_branch] = half;
    tree.branch_lengths_mut()[br] = half;

    // Affected nodes: the path (in the new topology) from the merge point to
    // the insertion point, plus the pruned node.
    let mut affected = path_between(tree, q, p);
    if !affected.contains(&r) {
        affected.push(r);
    }
    if !affected.contains(&p) {
        affected.push(p);
    }
    affected.retain(|&n| !tree.is_leaf(n));

    Ok(SprUndo {
        mv,
        kept_branch: bq,
        kept_neighbor: q,
        kept_length,
        freed_branch: br,
        freed_neighbor: r,
        freed_length,
        target_ends: (x, y),
        target_length,
        affected_nodes: affected,
        inserted_branches: [mv.target_branch, br, subtree_entry.1],
    })
}

/// Reverses a previously applied SPR move.
///
/// The tree must be in exactly the state [`apply`] left it in (no intervening
/// topology changes).
pub fn undo(tree: &mut Tree, undo: &SprUndo) {
    let p = undo.mv.pruned_node;
    let (x, y) = undo.target_ends;
    let bq = undo.kept_branch;
    let br = undo.freed_branch;
    let q = undo.kept_neighbor;
    let r = undo.freed_neighbor;
    let bt = undo.mv.target_branch;

    // --- Undo regraft: restore the target branch (x, y), detach p from x/y. ---
    {
        let adjacency = tree.adjacency_mut();
        adjacency[p].retain(|&(n, _)| n == undo.mv.subtree_neighbor);
        for e in &mut adjacency[x] {
            if e.1 == bt {
                e.0 = y;
            }
        }
        for e in &mut adjacency[y] {
            if e.1 == br {
                e.0 = x;
                e.1 = bt;
            }
        }
    }
    tree.branch_ends_mut()[bt] = (x, y);
    tree.branch_lengths_mut()[bt] = undo.target_length;

    // --- Undo prune: split (q, r) back into (q, p) and (p, r). ---
    {
        let adjacency = tree.adjacency_mut();
        for e in &mut adjacency[q] {
            if e.1 == bq {
                e.0 = p;
            }
        }
        adjacency[r].retain(|&(_, b)| b != bq);
        adjacency[r].push((p, br));
        adjacency[p].push((q, bq));
        adjacency[p].push((r, br));
    }
    tree.branch_ends_mut()[bq] = (q, p);
    tree.branch_lengths_mut()[bq] = undo.kept_length;
    tree.branch_ends_mut()[br] = (p, r);
    tree.branch_lengths_mut()[br] = undo.freed_length;
}

/// Enumerates the candidate SPR moves for pruning at `pruned_node` keeping the
/// subtree towards `subtree_neighbor`, with regraft targets at most `radius`
/// branches away from the pruning site.
pub fn candidate_moves(
    tree: &Tree,
    pruned_node: NodeId,
    subtree_neighbor: NodeId,
    radius: usize,
) -> Vec<SprMove> {
    if tree.is_leaf(pruned_node) {
        return Vec::new();
    }
    let neighbors: Vec<(NodeId, BranchId)> = tree.neighbors(pruned_node).to_vec();
    let subtree_branch = match neighbors.iter().find(|&&(n, _)| n == subtree_neighbor) {
        Some(&(_, b)) => b,
        None => return Vec::new(),
    };
    let incident: Vec<BranchId> = neighbors.iter().map(|&(_, b)| b).collect();
    let pruned_side = tree.nodes_on_side(subtree_branch, subtree_neighbor);

    // Candidate targets: within `radius` of any branch incident to the pruned
    // node, not incident to it, and not inside the pruned subtree.
    let mut seen = std::collections::HashSet::new();
    let mut targets = Vec::new();
    for &b in &incident {
        for t in tree.branches_within_radius(b, radius) {
            if incident.contains(&t) || !seen.insert(t) {
                continue;
            }
            let (x, y) = tree.branch_endpoints(t);
            if pruned_side.contains(&x) || pruned_side.contains(&y) {
                continue;
            }
            targets.push(t);
        }
    }
    targets
        .into_iter()
        .map(|target_branch| SprMove {
            pruned_node,
            subtree_neighbor,
            target_branch,
        })
        .collect()
}

/// Nodes on the unique path between `from` and `to` (inclusive).
pub fn path_between(tree: &Tree, from: NodeId, to: NodeId) -> Vec<NodeId> {
    use std::collections::VecDeque;
    if from == to {
        return vec![from];
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; tree.node_capacity()];
    let mut queue = VecDeque::new();
    queue.push_back(from);
    prev[from] = Some(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            break;
        }
        for &(next, _) in tree.neighbors(n) {
            if prev[next].is_none() {
                prev[next] = Some(n);
                queue.push_back(next);
            }
        }
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur].expect("path must exist in a connected tree");
        path.push(cur);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_tree(n: usize, seed: u64) -> Tree {
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        random_tree(&names, &mut rng)
    }

    fn first_valid_move(tree: &Tree) -> SprMove {
        for p in tree.internal_nodes() {
            for &(s, _) in tree.neighbors(p) {
                let moves = candidate_moves(tree, p, s, 10);
                if let Some(&mv) = moves.first() {
                    return mv;
                }
            }
        }
        panic!("no valid SPR move found");
    }

    #[test]
    fn apply_preserves_tree_invariants() {
        let mut tree = test_tree(12, 7);
        let mv = first_valid_move(&tree);
        let undo_rec = apply(&mut tree, mv).unwrap();
        assert!(tree.validate().is_ok(), "tree invalid after SPR");
        assert_eq!(tree.branch_count(), 2 * 12 - 3);
        assert!(!undo_rec.affected_nodes.is_empty());
    }

    #[test]
    fn apply_then_undo_restores_everything() {
        for seed in 0..5 {
            let mut tree = test_tree(10, seed);
            let original = tree.clone();
            let mv = first_valid_move(&tree);
            let undo_rec = apply(&mut tree, mv).unwrap();
            // The move must actually change the topology.
            assert_ne!(tree.bipartitions(), original.bipartitions(), "seed {seed}");
            undo(&mut tree, &undo_rec);
            assert!(tree.validate().is_ok());
            assert_eq!(tree.bipartitions(), original.bipartitions());
            // Branch lengths restored exactly.
            for b in original.branches() {
                assert!((tree.branch_length(b) - original.branch_length(b)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn candidate_moves_never_target_pruned_subtree() {
        let tree = test_tree(15, 3);
        for p in tree.internal_nodes() {
            for &(s, sb) in tree.neighbors(p) {
                let pruned_side = tree.nodes_on_side(sb, s);
                for mv in candidate_moves(&tree, p, s, 5) {
                    let (x, y) = tree.branch_endpoints(mv.target_branch);
                    assert!(!pruned_side.contains(&x));
                    assert!(!pruned_side.contains(&y));
                }
            }
        }
    }

    #[test]
    fn all_candidate_moves_apply_and_undo_cleanly() {
        let tree = test_tree(9, 11);
        let p = tree.internal_nodes().next().unwrap();
        let (s, _) = tree.neighbors(p)[0];
        for mv in candidate_moves(&tree, p, s, 3) {
            let mut t = tree.clone();
            let u = apply(&mut t, mv).unwrap();
            assert!(t.validate().is_ok());
            undo(&mut t, &u);
            assert_eq!(t.bipartitions(), tree.bipartitions());
        }
    }

    #[test]
    fn radius_limits_candidates() {
        let tree = test_tree(20, 5);
        let p = tree.internal_nodes().next().unwrap();
        let (s, _) = tree.neighbors(p)[0];
        let near = candidate_moves(&tree, p, s, 1);
        let far = candidate_moves(&tree, p, s, 10);
        assert!(near.len() <= far.len());
        assert!(!far.is_empty());
    }

    #[test]
    fn rejects_invalid_moves() {
        let mut tree = test_tree(8, 2);
        // Pruning a leaf is invalid.
        let leaf_move = SprMove {
            pruned_node: 0,
            subtree_neighbor: 1,
            target_branch: 0,
        };
        assert!(apply(&mut tree, leaf_move).is_err());

        // Target incident to the pruned node is invalid.
        let p = tree.internal_nodes().next().unwrap();
        let (s, _) = tree.neighbors(p)[0];
        let (_, incident_branch) = tree.neighbors(p)[1];
        let bad = SprMove {
            pruned_node: p,
            subtree_neighbor: s,
            target_branch: incident_branch,
        };
        assert!(apply(&mut tree, bad).is_err());
    }

    #[test]
    fn path_between_endpoints() {
        let tree = test_tree(10, 1);
        let path = path_between(&tree, 0, 5);
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 5);
        // Consecutive path nodes are adjacent.
        for w in path.windows(2) {
            assert!(tree.branch_between(w[0], w[1]).is_some());
        }
        assert_eq!(path_between(&tree, 3, 3), vec![3]);
    }

    #[test]
    fn affected_nodes_are_internal_and_include_insertion_point() {
        let mut tree = test_tree(12, 9);
        let mv = first_valid_move(&tree);
        let u = apply(&mut tree, mv).unwrap();
        assert!(u.affected_nodes.contains(&mv.pruned_node));
        for &n in &u.affected_nodes {
            assert!(!tree.is_leaf(n));
        }
    }
}
