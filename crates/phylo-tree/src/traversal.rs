//! Rooted traversal plans ("traversal lists").
//!
//! To evaluate the likelihood, a virtual root is placed on a branch and the
//! conditional likelihood vectors (CLVs) of the internal nodes are computed
//! bottom-up, children before parents. The master thread of the parallel
//! runtime builds such a *traversal list* (full during model optimization,
//! partial during the tree-search phase, cf. Section IV of the paper) and the
//! workers then process the listed nodes for their share of the alignment
//! patterns.

use crate::topology::{BranchId, NodeId, Tree};

/// One entry of a traversal list: compute the CLV of `node` (oriented towards
/// the virtual root) from the CLVs/tip states of its two children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalStep {
    /// Internal node whose CLV is to be (re)computed.
    pub node: NodeId,
    /// First child (away from the root).
    pub left: NodeId,
    /// Branch connecting `node` and `left`.
    pub left_branch: BranchId,
    /// Second child (away from the root).
    pub right: NodeId,
    /// Branch connecting `node` and `right`.
    pub right_branch: BranchId,
    /// The neighbor of `node` that lies towards the virtual root; the CLV
    /// computed by this step is oriented towards it.
    pub towards: NodeId,
}

/// A complete traversal plan for a given virtual root placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalPlan {
    /// Branch the virtual root is placed on.
    pub root_branch: BranchId,
    /// First endpoint of the root branch.
    pub root_left: NodeId,
    /// Second endpoint of the root branch.
    pub root_right: NodeId,
    /// Steps in post-order: every child CLV appears before its parent's.
    pub steps: Vec<TraversalStep>,
}

impl TraversalPlan {
    /// Builds a *full* traversal plan: every internal node's CLV is listed.
    pub fn full(tree: &Tree, root_branch: BranchId) -> Self {
        Self::build(tree, root_branch, |_node, _towards| false)
    }

    /// Builds a *partial* traversal plan: subtrees for which
    /// `is_valid(node, towards)` reports an already valid CLV (oriented
    /// towards the root) are skipped entirely.
    ///
    /// The closure receives the internal node id and the neighbor it must be
    /// oriented towards for the current root placement.
    pub fn partial<F: Fn(NodeId, NodeId) -> bool>(
        tree: &Tree,
        root_branch: BranchId,
        is_valid: F,
    ) -> Self {
        Self::build(tree, root_branch, is_valid)
    }

    fn build<F: Fn(NodeId, NodeId) -> bool>(
        tree: &Tree,
        root_branch: BranchId,
        is_valid: F,
    ) -> Self {
        debug_assert!(tree.is_complete(), "traversal requires a complete tree");
        let (root_left, root_right) = tree.branch_endpoints(root_branch);
        let mut steps = Vec::new();
        for (start, parent) in [(root_left, root_right), (root_right, root_left)] {
            collect_side(tree, start, parent, &is_valid, &mut steps);
        }
        Self {
            root_branch,
            root_left,
            root_right,
            steps,
        }
    }

    /// Number of CLV updates the plan performs.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan performs no CLV updates.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// For every node, the neighbor that lies on the path towards `branch`
/// (i.e. the direction a conditional likelihood vector must be oriented in to
/// be usable for an evaluation rooted on `branch`). The endpoints of `branch`
/// point at each other.
///
/// The kernel uses this to decide which cached CLVs stay valid after a branch
/// length or topology change.
pub fn orientation_toward_branch(tree: &Tree, branch: BranchId) -> Vec<Option<NodeId>> {
    use std::collections::VecDeque;
    let mut toward: Vec<Option<NodeId>> = vec![None; tree.node_capacity()];
    let (a, b) = tree.branch_endpoints(branch);
    toward[a] = Some(b);
    toward[b] = Some(a);
    let mut queue = VecDeque::new();
    queue.push_back(a);
    queue.push_back(b);
    let mut visited = vec![false; tree.node_capacity()];
    visited[a] = true;
    visited[b] = true;
    while let Some(node) = queue.pop_front() {
        for &(next, br) in tree.neighbors(node) {
            if br == branch || visited[next] {
                continue;
            }
            visited[next] = true;
            // From `next`, the path towards the branch goes through `node`.
            toward[next] = Some(node);
            queue.push_back(next);
        }
    }
    toward
}

/// Post-order collection of the steps on one side of the virtual root.
///
/// `node` is the current node, `parent` the neighbor towards the root. If the
/// CLV of `node` towards `parent` is already valid the whole subtree is
/// skipped, which is what makes partial traversals cheap.
fn collect_side<F: Fn(NodeId, NodeId) -> bool>(
    tree: &Tree,
    node: NodeId,
    parent: NodeId,
    is_valid: &F,
    steps: &mut Vec<TraversalStep>,
) {
    if tree.is_leaf(node) {
        return;
    }
    if is_valid(node, parent) {
        return;
    }
    // Children = the two neighbors that are not the parent.
    let mut children = [(0usize, 0usize); 2];
    let mut idx = 0;
    for &(neighbor, branch) in tree.neighbors(node) {
        if neighbor != parent {
            children[idx] = (neighbor, branch);
            idx += 1;
        }
    }
    debug_assert_eq!(idx, 2, "internal node must have exactly two children");

    for &(child, _) in &children {
        collect_side(tree, child, node, is_valid, steps);
    }
    steps.push(TraversalStep {
        node,
        left: children[0].0,
        left_branch: children[0].1,
        right: children[1].0,
        right_branch: children[1].1,
        towards: parent,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Tree;

    fn chain_tree(n: usize) -> Tree {
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let order: Vec<usize> = (0..n).collect();
        // Always insert on the most recently created pendant branch, producing
        // a caterpillar ("chain") topology with maximal depth.
        Tree::stepwise(names, &order, |branches| branches - 1)
    }

    #[test]
    fn full_traversal_lists_every_internal_node_once() {
        let t = chain_tree(10);
        for root in t.branches() {
            let plan = TraversalPlan::full(&t, root);
            assert_eq!(plan.len(), t.internal_count());
            let mut nodes: Vec<_> = plan.steps.iter().map(|s| s.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(
                nodes.len(),
                t.internal_count(),
                "each internal node exactly once"
            );
        }
    }

    #[test]
    fn post_order_children_before_parents() {
        let t = chain_tree(12);
        let plan = TraversalPlan::full(&t, 0);
        let mut seen = std::collections::HashSet::new();
        for step in &plan.steps {
            // Any internal child must already have been computed.
            for child in [step.left, step.right] {
                if !t.is_leaf(child) {
                    assert!(seen.contains(&child), "child {child} used before computed");
                }
            }
            seen.insert(step.node);
        }
    }

    #[test]
    fn steps_reference_incident_branches() {
        let t = chain_tree(8);
        let plan = TraversalPlan::full(&t, 3);
        for step in &plan.steps {
            assert_eq!(
                t.branch_between(step.node, step.left),
                Some(step.left_branch)
            );
            assert_eq!(
                t.branch_between(step.node, step.right),
                Some(step.right_branch)
            );
            // `towards` is the third neighbor.
            assert!(t
                .neighbors(step.node)
                .iter()
                .any(|&(n, _)| n == step.towards));
        }
    }

    #[test]
    fn partial_traversal_with_all_valid_is_empty() {
        let t = chain_tree(9);
        let plan = TraversalPlan::partial(&t, 1, |_n, _p| true);
        assert!(plan.is_empty());
    }

    #[test]
    fn partial_traversal_skips_valid_subtrees() {
        let t = chain_tree(9);
        let full = TraversalPlan::full(&t, 0);
        // Mark the first computed node (deepest in the traversal) as valid:
        // exactly that one step should disappear, its ancestors must stay.
        let valid_node = full.steps[0].node;
        let valid_towards = full.steps[0].towards;
        let partial = TraversalPlan::partial(&t, 0, |n, p| n == valid_node && p == valid_towards);
        assert_eq!(partial.len(), full.len() - 1);
        assert!(partial.steps.iter().all(|s| s.node != valid_node));
    }

    #[test]
    fn root_endpoints_match_branch() {
        let t = chain_tree(6);
        for root in t.branches() {
            let plan = TraversalPlan::full(&t, root);
            let (a, b) = t.branch_endpoints(root);
            assert_eq!((plan.root_left, plan.root_right), (a, b));
        }
    }

    #[test]
    fn orientation_toward_branch_points_along_paths() {
        let t = chain_tree(10);
        for branch in t.branches() {
            let toward = orientation_toward_branch(&t, branch);
            let (a, b) = t.branch_endpoints(branch);
            assert_eq!(toward[a], Some(b));
            assert_eq!(toward[b], Some(a));
            // Every connected node has an orientation, and following it leads
            // to the branch endpoints without cycles.
            for node in 0..t.n_taxa() {
                let mut cur = node;
                let mut hops = 0;
                while cur != a && cur != b {
                    cur = toward[cur].expect("orientation must exist");
                    hops += 1;
                    assert!(hops <= t.node_capacity(), "orientation cycles");
                }
            }
        }
    }

    #[test]
    fn triplet_has_single_step() {
        let names: Vec<String> = (0..3).map(|i| format!("t{i}")).collect();
        let t = Tree::initial_triplet(names, [0, 1, 2]);
        let plan = TraversalPlan::full(&t, 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.steps[0].node, 3);
    }
}
