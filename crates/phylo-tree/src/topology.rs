//! Arena-based unrooted binary tree topology.
//!
//! Leaves have node ids `0..n_taxa` (the id doubles as the taxon index into
//! the alignment); internal nodes get the ids `n_taxa..2·n_taxa − 2`. Branches
//! have stable integer ids `0..2·n_taxa − 3`, which is what the kernel uses to
//! index per-branch (and per-partition) branch-length vectors.

use crate::TreeError;

/// Identifier of a tree node (leaf or internal).
pub type NodeId = usize;
/// Identifier of a branch (edge).
pub type BranchId = usize;

/// Default branch length used when nothing better is known (RAxML uses 0.1 as
/// its starting branch length as well).
pub const DEFAULT_BRANCH_LENGTH: f64 = 0.1;

/// Smallest branch length the optimizers are allowed to produce.
pub const MIN_BRANCH_LENGTH: f64 = 1.0e-8;
/// Largest branch length the optimizers are allowed to produce.
pub const MAX_BRANCH_LENGTH: f64 = 10.0;

/// An unrooted, strictly binary phylogenetic tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    taxa: Vec<String>,
    /// Per-node adjacency: `(neighbor, connecting branch)`. Leaves have one
    /// entry, fully connected internal nodes have three.
    adjacency: Vec<Vec<(NodeId, BranchId)>>,
    /// Branch endpoints, indexed by branch id.
    branch_ends: Vec<(NodeId, NodeId)>,
    /// Branch lengths, indexed by branch id. These are the "joint" lengths;
    /// per-partition branch length vectors live in the kernel and are
    /// initialized from these values.
    branch_lengths: Vec<f64>,
    n_taxa: usize,
    next_internal: NodeId,
}

impl Tree {
    /// Creates the initial three-taxon star: taxa `t0`, `t1`, `t2` joined at
    /// one internal node, with all other leaves allocated but not yet
    /// connected (they are attached later with [`Tree::insert_leaf`]).
    ///
    /// # Panics
    ///
    /// Panics if fewer than three taxa are supplied, the three seed indices
    /// are not distinct, or any seed index is out of range.
    pub fn initial_triplet(taxa: Vec<String>, seed: [usize; 3]) -> Self {
        let n_taxa = taxa.len();
        assert!(n_taxa >= 3, "an unrooted binary tree needs at least 3 taxa");
        assert!(seed[0] != seed[1] && seed[1] != seed[2] && seed[0] != seed[2]);
        assert!(
            seed.iter().all(|&s| s < n_taxa),
            "seed taxon index out of range"
        );

        let node_capacity = 2 * n_taxa - 2;
        let mut tree = Self {
            taxa,
            adjacency: vec![Vec::new(); node_capacity],
            branch_ends: Vec::with_capacity(2 * n_taxa - 3),
            branch_lengths: Vec::with_capacity(2 * n_taxa - 3),
            n_taxa,
            next_internal: n_taxa,
        };
        let center = tree.allocate_internal();
        for &leaf in &seed {
            tree.connect(center, leaf, DEFAULT_BRANCH_LENGTH);
        }
        tree
    }

    /// Builds a fully resolved tree by inserting the taxa in the order given
    /// by `insertion_order` (the first three become the seed triplet, each
    /// further taxon is attached to the branch selected by `pick_branch`,
    /// which receives the current number of branches and must return a valid
    /// branch id).
    pub fn stepwise<F: FnMut(usize) -> BranchId>(
        taxa: Vec<String>,
        insertion_order: &[usize],
        mut pick_branch: F,
    ) -> Self {
        assert_eq!(
            insertion_order.len(),
            taxa.len(),
            "insertion order must cover all taxa"
        );
        let seed = [insertion_order[0], insertion_order[1], insertion_order[2]];
        let mut tree = Tree::initial_triplet(taxa, seed);
        for &leaf in &insertion_order[3..] {
            let branch = pick_branch(tree.branch_count());
            tree.insert_leaf(leaf, branch, DEFAULT_BRANCH_LENGTH);
        }
        tree
    }

    fn allocate_internal(&mut self) -> NodeId {
        let id = self.next_internal;
        assert!(id < 2 * self.n_taxa - 2, "internal node arena exhausted");
        self.next_internal += 1;
        id
    }

    fn connect(&mut self, a: NodeId, b: NodeId, length: f64) -> BranchId {
        let id = self.branch_ends.len();
        self.branch_ends.push((a, b));
        self.branch_lengths.push(length);
        self.adjacency[a].push((b, id));
        self.adjacency[b].push((a, id));
        id
    }

    /// Attaches the (so far unconnected) leaf `leaf` to `branch`, splitting it
    /// with a fresh internal node. The original branch keeps its id for the
    /// half adjacent to its first endpoint; the other half and the new
    /// pendant branch get fresh ids. Returns the id of the new pendant branch.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not an unconnected leaf or `branch` is invalid.
    pub fn insert_leaf(&mut self, leaf: NodeId, branch: BranchId, pendant_length: f64) -> BranchId {
        assert!(leaf < self.n_taxa, "only leaves can be inserted");
        assert!(
            self.adjacency[leaf].is_empty(),
            "leaf {leaf} is already connected"
        );
        assert!(
            branch < self.branch_ends.len(),
            "branch {branch} out of range"
        );

        let (x, y) = self.branch_ends[branch];
        let old_len = self.branch_lengths[branch];
        let v = self.allocate_internal();

        // Re-point the existing branch from (x, y) to (x, v).
        self.detach_adjacency(y, branch);
        self.branch_ends[branch] = (x, v);
        self.branch_lengths[branch] = old_len * 0.5;
        self.adjacency[v].push((x, branch));
        self.replace_neighbor(x, branch, v);

        // New branch (v, y) for the other half.
        self.connect(v, y, old_len * 0.5);
        // Pendant branch (v, leaf).
        self.connect(v, leaf, pendant_length)
    }

    fn detach_adjacency(&mut self, node: NodeId, branch: BranchId) {
        let pos = self.adjacency[node]
            .iter()
            .position(|&(_, b)| b == branch)
            .expect("branch must be incident to node");
        self.adjacency[node].swap_remove(pos);
    }

    fn replace_neighbor(&mut self, node: NodeId, branch: BranchId, new_neighbor: NodeId) {
        for entry in &mut self.adjacency[node] {
            if entry.1 == branch {
                entry.0 = new_neighbor;
                return;
            }
        }
        panic!("branch {branch} not incident to node {node}");
    }

    /// Number of taxa (leaves).
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Taxon names; the index is the leaf's node id.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Name of the taxon at leaf `leaf`.
    pub fn taxon_name(&self, leaf: NodeId) -> &str {
        &self.taxa[leaf]
    }

    /// Node id of the taxon with the given name.
    pub fn leaf_by_name(&self, name: &str) -> Option<NodeId> {
        self.taxa.iter().position(|t| t == name)
    }

    /// Total number of allocated node slots (`2·n_taxa − 2`).
    pub fn node_capacity(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of branches currently present.
    pub fn branch_count(&self) -> usize {
        self.branch_ends.len()
    }

    /// Number of internal nodes currently connected.
    pub fn internal_count(&self) -> usize {
        self.next_internal - self.n_taxa
    }

    /// Whether every taxon has been attached (`2·n_taxa − 3` branches).
    pub fn is_complete(&self) -> bool {
        self.branch_count() == 2 * self.n_taxa - 3
            && (0..self.n_taxa).all(|l| !self.adjacency[l].is_empty())
    }

    /// Is `node` a leaf?
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        node < self.n_taxa
    }

    /// The `(neighbor, branch)` pairs incident to `node`.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, BranchId)] {
        &self.adjacency[node]
    }

    /// Endpoints of `branch`.
    #[inline]
    pub fn branch_endpoints(&self, branch: BranchId) -> (NodeId, NodeId) {
        self.branch_ends[branch]
    }

    /// The endpoint of `branch` that is not `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of `branch`.
    pub fn other_end(&self, branch: BranchId, node: NodeId) -> NodeId {
        let (a, b) = self.branch_ends[branch];
        if a == node {
            b
        } else if b == node {
            a
        } else {
            panic!("node {node} is not an endpoint of branch {branch}");
        }
    }

    /// Length of `branch`.
    #[inline]
    pub fn branch_length(&self, branch: BranchId) -> f64 {
        self.branch_lengths[branch]
    }

    /// Sets the length of `branch`, clamping into the supported range.
    pub fn set_branch_length(&mut self, branch: BranchId, length: f64) {
        self.branch_lengths[branch] = length.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH);
    }

    /// All branch lengths, indexed by branch id.
    pub fn branch_lengths(&self) -> &[f64] {
        &self.branch_lengths
    }

    /// The branch connecting `a` and `b`, if any.
    pub fn branch_between(&self, a: NodeId, b: NodeId) -> Option<BranchId> {
        self.adjacency[a]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, br)| br)
    }

    /// Ids of the connected internal nodes.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.n_taxa..self.next_internal).filter(move |&n| !self.adjacency[n].is_empty())
    }

    /// Ids of all branches.
    pub fn branches(&self) -> impl Iterator<Item = BranchId> {
        0..self.branch_count()
    }

    /// Branches whose both endpoints are internal nodes.
    pub fn internal_branches(&self) -> Vec<BranchId> {
        self.branches()
            .filter(|&b| {
                let (x, y) = self.branch_ends[b];
                !self.is_leaf(x) && !self.is_leaf(y)
            })
            .collect()
    }

    /// Structural validation: correct node degrees, consistent adjacency and
    /// branch tables, connectedness and the expected branch count.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Invalid`] describing the first violated invariant.
    pub fn validate(&self) -> Result<(), TreeError> {
        if !self.is_complete() {
            return Err(TreeError::Invalid(format!(
                "tree is incomplete: {} branches for {} taxa",
                self.branch_count(),
                self.n_taxa
            )));
        }
        for node in 0..self.node_capacity() {
            let deg = self.adjacency[node].len();
            let expected = if self.is_leaf(node) { 1 } else { 3 };
            if (node < self.next_internal || self.is_leaf(node)) && deg != expected {
                return Err(TreeError::Invalid(format!(
                    "node {node} has degree {deg}, expected {expected}"
                )));
            }
            for &(neighbor, branch) in &self.adjacency[node] {
                let (a, b) = self.branch_ends[branch];
                if !(a == node && b == neighbor || b == node && a == neighbor) {
                    return Err(TreeError::Invalid(format!(
                        "adjacency of node {node} disagrees with branch {branch} endpoints"
                    )));
                }
            }
        }
        // Connectedness via BFS over branches.
        let mut seen = vec![false; self.node_capacity()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(node) = stack.pop() {
            for &(next, _) in &self.adjacency[node] {
                if !seen[next] {
                    seen[next] = true;
                    count += 1;
                    stack.push(next);
                }
            }
        }
        let expected_nodes = self.n_taxa + self.internal_count();
        if count != expected_nodes {
            return Err(TreeError::Invalid(format!(
                "tree is disconnected: reached {count} of {expected_nodes} nodes"
            )));
        }
        Ok(())
    }

    /// Collects the branches reachable within `radius` edges of `start`
    /// (excluding `start` itself). Used to bound the regrafting region of
    /// lazy SPR moves.
    pub fn branches_within_radius(&self, start: BranchId, radius: usize) -> Vec<BranchId> {
        use std::collections::VecDeque;
        let mut dist: Vec<Option<usize>> = vec![None; self.branch_count()];
        dist[start] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(start);
        let mut out = Vec::new();
        while let Some(b) = queue.pop_front() {
            let d = dist[b].unwrap();
            if d >= radius {
                continue;
            }
            let (x, y) = self.branch_ends[b];
            for node in [x, y] {
                for &(_, nb) in &self.adjacency[node] {
                    if dist[nb].is_none() {
                        dist[nb] = Some(d + 1);
                        out.push(nb);
                        queue.push_back(nb);
                    }
                }
            }
        }
        out
    }

    /// Returns the set of nodes on the side of `branch` that contains `node`
    /// (including `node` itself, excluding the other endpoint's side).
    pub fn nodes_on_side(&self, branch: BranchId, node: NodeId) -> Vec<NodeId> {
        let (a, b) = self.branch_ends[branch];
        assert!(node == a || node == b, "node must be an endpoint of branch");
        let mut seen = vec![false; self.node_capacity()];
        let mut stack = vec![node];
        seen[node] = true;
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &(next, br) in &self.adjacency[n] {
                if br == branch || seen[next] {
                    continue;
                }
                seen[next] = true;
                stack.push(next);
            }
        }
        out
    }

    /// Splits the leaf set according to `branch`: the names on the side of the
    /// first endpoint, sorted. Used to compare topologies irrespective of node
    /// numbering (two trees are equal iff their bipartition sets are equal).
    pub fn bipartitions(&self) -> Vec<Vec<String>> {
        let mut splits = Vec::new();
        for b in self.branches() {
            let (x, _) = self.branch_endpoints(b);
            let side: Vec<String> = self
                .nodes_on_side(b, x)
                .into_iter()
                .filter(|&n| self.is_leaf(n))
                .map(|n| self.taxa[n].clone())
                .collect();
            let mut side = side;
            side.sort();
            // Canonicalize: always store the side that contains the first taxon.
            let all: Vec<String> = {
                let mut t = self.taxa.clone();
                t.sort();
                t
            };
            let complement: Vec<String> =
                all.iter().filter(|t| !side.contains(t)).cloned().collect();
            // Canonical side: the one containing the lexicographically smallest
            // taxon name, so the result is independent of leaf numbering.
            let canonical = if side.contains(&all[0]) {
                side
            } else {
                complement
            };
            splits.push(canonical);
        }
        splits.sort();
        splits.dedup();
        splits
    }

    /// Builds a tree directly from an edge list.
    ///
    /// Leaves must use node ids `0..taxa.len()` and internal nodes the ids
    /// `taxa.len()..2·taxa.len() − 2`; each edge is `(a, b, length)`. This is
    /// the constructor used by the Newick parser.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Invalid`] if the resulting structure is not a
    /// valid unrooted binary tree.
    pub fn from_edges(
        taxa: Vec<String>,
        edges: &[(NodeId, NodeId, f64)],
    ) -> Result<Self, TreeError> {
        let n_taxa = taxa.len();
        if n_taxa < 3 {
            return Err(TreeError::Invalid(
                "an unrooted binary tree needs at least 3 taxa".into(),
            ));
        }
        let node_capacity = 2 * n_taxa - 2;
        if edges.len() != 2 * n_taxa - 3 {
            return Err(TreeError::Invalid(format!(
                "expected {} edges for {} taxa, got {}",
                2 * n_taxa - 3,
                n_taxa,
                edges.len()
            )));
        }
        let mut tree = Self {
            taxa,
            adjacency: vec![Vec::new(); node_capacity],
            branch_ends: Vec::with_capacity(edges.len()),
            branch_lengths: Vec::with_capacity(edges.len()),
            n_taxa,
            next_internal: node_capacity,
        };
        for &(a, b, len) in edges {
            if a >= node_capacity || b >= node_capacity || a == b {
                return Err(TreeError::Invalid(format!(
                    "edge ({a}, {b}) references invalid nodes"
                )));
            }
            tree.connect(a, b, len.clamp(MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH));
        }
        tree.validate()?;
        Ok(tree)
    }

    /// Mutable access used by the SPR module; not part of the public API
    /// surface for ordinary users.
    pub(crate) fn adjacency_mut(&mut self) -> &mut Vec<Vec<(NodeId, BranchId)>> {
        &mut self.adjacency
    }

    pub(crate) fn branch_ends_mut(&mut self) -> &mut Vec<(NodeId, NodeId)> {
        &mut self.branch_ends
    }

    pub(crate) fn branch_lengths_mut(&mut self) -> &mut Vec<f64> {
        &mut self.branch_lengths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn triplet_structure() {
        let t = Tree::initial_triplet(names(3), [0, 1, 2]);
        assert_eq!(t.n_taxa(), 3);
        assert_eq!(t.branch_count(), 3);
        assert!(t.is_complete());
        assert!(t.validate().is_ok());
        assert_eq!(t.internal_count(), 1);
        let center = 3;
        assert_eq!(t.neighbors(center).len(), 3);
        for leaf in 0..3 {
            assert_eq!(t.neighbors(leaf).len(), 1);
            assert_eq!(t.neighbors(leaf)[0].0, center);
        }
    }

    #[test]
    fn insert_leaf_grows_tree_correctly() {
        let mut t = Tree::initial_triplet(names(5), [0, 1, 2]);
        assert!(!t.is_complete());
        t.insert_leaf(3, 0, 0.2);
        t.insert_leaf(4, 2, 0.3);
        assert!(t.is_complete());
        assert!(t.validate().is_ok());
        assert_eq!(t.branch_count(), 2 * 5 - 3);
        assert_eq!(t.internal_count(), 3);
        // Every leaf has exactly one neighbor, every internal node three.
        for leaf in 0..5 {
            assert_eq!(t.neighbors(leaf).len(), 1);
        }
        for internal in t.internal_nodes() {
            assert_eq!(t.neighbors(internal).len(), 3);
        }
    }

    #[test]
    fn insert_leaf_splits_branch_length() {
        let mut t = Tree::initial_triplet(names(4), [0, 1, 2]);
        let original = t.branch_length(0);
        t.insert_leaf(3, 0, 0.42);
        // The two halves of the split branch sum to the original length; the
        // second half is the first newly created branch (id 3).
        let halves: f64 = t.branch_length(0) + t.branch_length(3);
        assert!((halves - original).abs() < 1e-12);
        // The pendant branch got the requested length.
        let pendant = t.branch_between(3, t.neighbors(3)[0].0).unwrap();
        assert!((t.branch_length(pendant) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn stepwise_builds_complete_tree() {
        let order: Vec<usize> = (0..10).collect();
        let mut counter = 0usize;
        let t = Tree::stepwise(names(10), &order, |branches| {
            counter = (counter + 7) % branches;
            counter
        });
        assert!(t.is_complete());
        assert!(t.validate().is_ok());
        assert_eq!(t.branch_count(), 17);
    }

    #[test]
    fn other_end_and_branch_between() {
        let t = Tree::initial_triplet(names(3), [0, 1, 2]);
        let b = t.branch_between(0, 3).unwrap();
        assert_eq!(t.other_end(b, 0), 3);
        assert_eq!(t.other_end(b, 3), 0);
        assert_eq!(t.branch_between(0, 1), None);
    }

    #[test]
    fn branch_length_clamping() {
        let mut t = Tree::initial_triplet(names(3), [0, 1, 2]);
        t.set_branch_length(0, 1e-20);
        assert!(t.branch_length(0) >= MIN_BRANCH_LENGTH);
        t.set_branch_length(0, 1e9);
        assert!(t.branch_length(0) <= MAX_BRANCH_LENGTH);
    }

    #[test]
    fn nodes_on_side_partitions_the_tree() {
        let mut t = Tree::initial_triplet(names(5), [0, 1, 2]);
        t.insert_leaf(3, 0, 0.1);
        t.insert_leaf(4, 1, 0.1);
        for b in t.branches() {
            let (x, y) = t.branch_endpoints(b);
            let left = t.nodes_on_side(b, x);
            let right = t.nodes_on_side(b, y);
            assert_eq!(left.len() + right.len(), t.n_taxa() + t.internal_count());
            assert!(left.iter().all(|n| !right.contains(n)));
        }
    }

    #[test]
    fn radius_search_covers_whole_tree_with_large_radius() {
        let order: Vec<usize> = (0..8).collect();
        let t = Tree::stepwise(names(8), &order, |branches| branches / 2);
        let all = t.branches_within_radius(0, 100);
        assert_eq!(all.len(), t.branch_count() - 1);
        let near = t.branches_within_radius(0, 1);
        assert!(near.len() < all.len());
    }

    #[test]
    fn internal_branches_have_no_leaf_endpoints() {
        let order: Vec<usize> = (0..6).collect();
        let t = Tree::stepwise(names(6), &order, |branches| branches - 1);
        for b in t.internal_branches() {
            let (x, y) = t.branch_endpoints(b);
            assert!(!t.is_leaf(x) && !t.is_leaf(y));
        }
        // An unrooted binary tree with n leaves has n-3 internal branches.
        assert_eq!(t.internal_branches().len(), 3);
    }

    #[test]
    fn bipartitions_are_invariant_to_insertion_details() {
        // Two different construction orders of the same 4-taxon topology
        // (there is only one unrooted topology for 4 taxa modulo the central
        // branch) must give the same bipartition set when the quartet is the
        // same.
        let mut a = Tree::initial_triplet(names(4), [0, 1, 2]);
        let b02 = a.branch_between(2, 4).unwrap_or(2);
        a.insert_leaf(3, b02, 0.1);

        let mut b = Tree::initial_triplet(names(4), [0, 1, 3]);
        let center = 4;
        let b_branch = b.branch_between(3, center).unwrap();
        b.insert_leaf(2, b_branch, 0.1);

        assert_eq!(a.bipartitions(), b.bipartitions());
    }

    #[test]
    #[should_panic]
    fn cannot_insert_connected_leaf_twice() {
        let mut t = Tree::initial_triplet(names(4), [0, 1, 2]);
        t.insert_leaf(0, 1, 0.1);
    }

    #[test]
    #[should_panic]
    fn requires_three_taxa() {
        Tree::initial_triplet(names(2), [0, 1, 1]);
    }
}
