//! Persistent worker threads with channel-based command broadcast.
//!
//! This is the Rust equivalent of the Pthreads master/worker scheme in RAxML:
//! the worker threads are spawned once and own their pattern slices and CLV
//! buffers for the whole run; the master broadcasts one command per parallel
//! region and reduces the per-worker results. Every [`Executor::execute`] call
//! is therefore one synchronization event, exactly as in the paper.
//!
//! Because the master's tree/model/branch-length state lives on the master
//! thread, each command ships a snapshot of that state inside an `Arc`. These
//! structures are small (the tree has `2n` nodes, the models a handful of
//! 4×4/20×20 matrices per partition), so the per-command cost is dominated by
//! the channel round trip — a realistic stand-in for a barrier.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use phylo_data::PartitionedPatterns;
use phylo_kernel::executor::{execute_on_worker, reduce_outputs};
use phylo_kernel::{BranchLengths, ExecContext, Executor, KernelOp, OpOutput, WorkerSlices};
use phylo_models::ModelSet;
use phylo_sched::{Assignment, SchedError};
use phylo_tree::Tree;

/// One broadcast command: the op plus a snapshot of the master state.
struct Command {
    op: KernelOp,
    tree: Tree,
    models: ModelSet,
    branch_lengths: BranchLengths,
}

struct WorkerHandle {
    sender: Sender<Option<Arc<Command>>>,
    results: Receiver<OpOutput>,
    join: Option<JoinHandle<()>>,
}

/// A real-thread executor with persistent workers.
pub struct ThreadedExecutor {
    handles: Vec<WorkerHandle>,
    sync_events: u64,
    worker_count: usize,
}

impl std::fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("worker_count", &self.worker_count)
            .field("sync_events", &self.sync_events)
            .finish()
    }
}

impl ThreadedExecutor {
    /// Spawns one persistent worker thread per worker of `assignment`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<Self, SchedError> {
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        Ok(Self::spawn(workers))
    }

    /// Legacy constructor: spawns workers under a [`Distribution`].
    ///
    /// [`Distribution`]: crate::Distribution
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0` (the historical behaviour).
    #[deprecated(since = "0.1.0", note = "use `ThreadedExecutor::from_assignment`")]
    #[allow(deprecated)]
    pub fn new(
        patterns: &PartitionedPatterns,
        worker_count: usize,
        node_capacity: usize,
        categories: &[usize],
        distribution: crate::Distribution,
    ) -> Self {
        let workers = crate::build_workers_with_distribution(
            patterns,
            worker_count,
            node_capacity,
            categories,
            distribution,
        );
        Self::spawn(workers)
    }

    fn spawn(workers: Vec<WorkerSlices>) -> Self {
        let worker_count = workers.len();
        let handles = workers
            .into_iter()
            .map(|mut slices| {
                let (cmd_tx, cmd_rx) = channel::<Option<Arc<Command>>>();
                let (res_tx, res_rx) = channel::<OpOutput>();
                let join = std::thread::Builder::new()
                    .name(format!("plk-worker-{}", slices.worker))
                    .spawn(move || {
                        while let Ok(Some(cmd)) = cmd_rx.recv() {
                            let ctx = ExecContext {
                                tree: &cmd.tree,
                                models: &cmd.models,
                                branch_lengths: &cmd.branch_lengths,
                            };
                            let out = execute_on_worker(&mut slices, &cmd.op, &ctx);
                            if res_tx.send(out).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("failed to spawn worker thread");
                WorkerHandle {
                    sender: cmd_tx,
                    results: res_rx,
                    join: Some(join),
                }
            })
            .collect();
        Self {
            handles,
            sync_events: 0,
            worker_count,
        }
    }
}

impl Executor for ThreadedExecutor {
    fn worker_count(&self) -> usize {
        self.worker_count
    }

    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> OpOutput {
        self.sync_events += 1;
        let command = Arc::new(Command {
            op: op.clone(),
            tree: ctx.tree.clone(),
            models: ctx.models.clone(),
            branch_lengths: ctx.branch_lengths.clone(),
        });
        for handle in &self.handles {
            handle
                .sender
                .send(Some(Arc::clone(&command)))
                .expect("worker thread terminated unexpectedly");
        }
        let mut result: Option<OpOutput> = None;
        for handle in &self.handles {
            let out = handle
                .results
                .recv()
                .expect("worker thread terminated unexpectedly");
            result = Some(match result {
                None => out,
                Some(acc) => reduce_outputs(acc, out),
            });
        }
        result.unwrap_or(OpOutput::None)
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }
}

impl Drop for ThreadedExecutor {
    fn drop(&mut self) {
        for handle in &self.handles {
            let _ = handle.sender.send(None);
        }
        for handle in &mut self.handles {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule;
    use phylo_kernel::{LikelihoodKernel, SequentialKernel};
    use phylo_models::BranchLengthMode;
    use phylo_sched::{Cyclic, WeightedLpt};
    use phylo_seqgen::datasets::paper_simulated;

    #[test]
    fn threaded_likelihood_matches_sequential() {
        let ds = paper_simulated(10, 300, 50, 17).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
        let reference = seq.log_likelihood();

        for workers in [2usize, 4] {
            let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
            let assignment = schedule(&ds.patterns, &cats, workers, &Cyclic).unwrap();
            let exec = ThreadedExecutor::from_assignment(
                &ds.patterns,
                &assignment,
                ds.tree.node_capacity(),
                &cats,
            )
            .unwrap();
            let mut k = LikelihoodKernel::new(
                Arc::clone(&ds.patterns),
                ds.tree.clone(),
                models.clone(),
                exec,
            );
            let lnl = k.log_likelihood();
            assert!(
                (lnl - reference).abs() < 1e-8,
                "{workers} threads: {lnl} vs sequential {reference}"
            );
            assert!(k.sync_events() > 0);
        }
    }

    #[test]
    fn threaded_derivatives_match_sequential() {
        let ds = paper_simulated(8, 160, 40, 23).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();

        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
        let branch = seq.tree().internal_branches()[0];
        let mask = seq.full_mask();
        seq.prepare_branch(branch, &mask);
        let lengths: Vec<Option<f64>> = (0..seq.partition_count()).map(|_| Some(0.2)).collect();
        let expected = seq.branch_derivatives(&lengths);

        // The cost-aware strategy must produce the same likelihood as any
        // other placement — results are placement-invariant by construction.
        let assignment = schedule(&ds.patterns, &cats, 3, &WeightedLpt).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut par =
            LikelihoodKernel::new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec);
        par.prepare_branch(branch, &mask);
        let got = par.branch_derivatives(&lengths);
        for (a, b) in expected.iter().zip(got.iter()) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert!((a.log_likelihood - b.log_likelihood).abs() < 1e-8);
            assert!((a.first - b.first).abs() < 1e-8);
            assert!((a.second - b.second).abs() < 1e-8);
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let ds = paper_simulated(6, 64, 16, 29).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 4, &Cyclic).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        drop(exec);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_works() {
        let ds = paper_simulated(6, 64, 16, 29).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let exec = ThreadedExecutor::new(
            &ds.patterns,
            2,
            ds.tree.node_capacity(),
            &cats,
            crate::Distribution::Cyclic,
        );
        assert_eq!(exec.worker_count(), 2);
    }
}
