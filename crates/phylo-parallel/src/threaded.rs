//! Persistent worker threads with channel-based command broadcast.
//!
//! This is the Rust equivalent of the Pthreads master/worker scheme in RAxML:
//! the worker threads are spawned once and own their pattern slices and CLV
//! buffers for the whole run; the master broadcasts one command per parallel
//! region and reduces the per-worker results. Every [`Executor::execute`] call
//! is therefore one synchronization event, exactly as in the paper.
//!
//! Because the master's tree/model/branch-length state lives on the master
//! thread, each command ships a snapshot of that state inside an `Arc`. These
//! structures are small (the tree has `2n` nodes, the models a handful of
//! 4×4/20×20 matrices per partition), so the per-command cost is dominated by
//! the channel round trip — a realistic stand-in for a barrier.
//!
//! # Hardening and measurement
//!
//! Each worker brackets [`execute_on_worker`] with [`Instant`] and ships the
//! wall-clock duration back with its result; when the executor is built with
//! [`ExecutorOptions::timed`], the master accumulates those durations into a
//! real [`WorkTrace`] (retrievable via [`ThreadedExecutor::take_trace`]) —
//! the measured counterpart of the virtual FLOP traces, and the input to
//! mid-run rescheduling. Worker panics are caught with
//! `std::panic::catch_unwind` and surfaced as
//! [`ExecError::WorkerDied`] from [`Executor::execute`]; the
//! executor is then *poisoned* (every further command fails fast with
//! [`ExecError::Poisoned`]) until [`ThreadedExecutor::reassign`] rebuilds the
//! workers. [`ThreadedExecutor::inject_worker_panic`] arms a one-shot fault
//! on that exact machinery so the driver-level recovery path stays tested.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::{RegionRecord, WorkTrace};
use phylo_kernel::executor::{active_local_patterns, execute_on_worker, reduce_outputs};
use phylo_kernel::{
    BranchLengths, ExecContext, ExecError, Executor, KernelOp, OpOutput, WorkerSlices,
};
use phylo_models::ModelSet;
use phylo_sched::{Assignment, SchedError};
use phylo_telemetry::{ring, Telemetry, WorkerSample};
use phylo_tree::Tree;

/// Capacity of each worker's sample ring. One sample is pushed per recorded
/// region and the master drains at every region barrier, so the ring is
/// effectively depth-1; the slack absorbs drains skipped by error paths.
const SAMPLE_RING_CAPACITY: usize = 64;

/// One broadcast command: the op plus a snapshot of the master state.
struct Command {
    op: KernelOp,
    tree: Tree,
    models: ModelSet,
    branch_lengths: BranchLengths,
    /// Telemetry: whether workers should push a [`WorkerSample`] for this
    /// region, and the region's sequence number to stamp it with.
    record: bool,
    region: u64,
    /// Test instrumentation: the worker that must panic while executing this
    /// command (see [`ThreadedExecutor::inject_worker_panic`]).
    panic_worker: Option<usize>,
}

/// What a worker sends back for one command.
enum Reply {
    /// The reduced-ready output plus the worker's wall-clock time for the
    /// region (including any configured skew sleep) and the number of *live*
    /// local patterns it touched under the command's convergence mask.
    Output(OpOutput, Duration, usize),
    /// A kernel primitive rejected the command (typed, deterministic master
    /// misuse — e.g. a stale sum table). The worker stays alive and in
    /// lockstep; the master surfaces [`ExecError::Op`] without poisoning.
    OpRejected(phylo_kernel::OpError),
    /// The worker panicked; the payload is the panic message.
    Panicked(String),
}

/// An artificial per-worker slowdown for load-balance experiments: the
/// designated worker sleeps `nanos_per_pattern` nanoseconds per active local
/// pattern in every region, emulating a proportionally slower core. Sleeps
/// (unlike busy loops) keep the emulation meaningful even on an
/// oversubscribed host, because a sleeping thread yields the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSkew {
    /// Index of the artificially slowed worker.
    pub worker: usize,
    /// Slowdown per active local pattern, in nanoseconds.
    pub nanos_per_pattern: u64,
}

/// Construction options beyond the assignment itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Accumulate per-region wall-clock measurements into a [`WorkTrace`].
    pub timed: bool,
    /// Optional artificial slowdown of one worker (benchmarks and tests).
    pub skew: Option<WorkerSkew>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

struct WorkerHandle {
    sender: Sender<Option<Arc<Command>>>,
    results: Receiver<Reply>,
    /// Consumer half of the worker's lock-free sample ring; drained by the
    /// master at the region barrier when telemetry is recording.
    samples: ring::Consumer<WorkerSample>,
    join: Option<JoinHandle<()>>,
}

/// A real-thread executor with persistent workers.
pub struct ThreadedExecutor {
    handles: Vec<WorkerHandle>,
    sync_events: u64,
    worker_count: usize,
    assignment: Assignment,
    options: ExecutorOptions,
    trace: WorkTrace,
    poisoned: Option<usize>,
    last_panic: Option<String>,
    /// One-shot armed fault injection: `(worker, fire_at_sync_event)`.
    injected_panic: Option<(usize, u64)>,
    telemetry: Telemetry,
    /// Reused scratch for the barrier drain: one allocation for the whole
    /// run instead of one `Vec` per region barrier.
    sample_buf: Vec<WorkerSample>,
}

impl std::fmt::Debug for ThreadedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedExecutor")
            .field("worker_count", &self.worker_count)
            .field("sync_events", &self.sync_events)
            .field("timed", &self.options.timed)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl ThreadedExecutor {
    /// Spawns one persistent worker thread per worker of `assignment`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<Self, SchedError> {
        Self::with_options(
            patterns,
            assignment,
            node_capacity,
            categories,
            ExecutorOptions::default(),
        )
    }

    /// Spawns the workers with explicit [`ExecutorOptions`] (timed trace
    /// accumulation, artificial skew).
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset, [`SchedError::SkewWorkerOutOfRange`] if the
    /// configured skew names a worker the assignment does not have (a
    /// silently unskewed experiment would be worse than an error).
    pub fn with_options(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
        options: ExecutorOptions,
    ) -> Result<Self, SchedError> {
        Self::check_skew(&options, assignment.worker_count())?;
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        let worker_count = workers.len();
        Ok(Self {
            handles: Self::spawn_handles(workers, &options),
            sync_events: 0,
            worker_count,
            assignment: assignment.clone(),
            options,
            trace: WorkTrace::new(worker_count),
            poisoned: None,
            last_panic: None,
            injected_panic: None,
            telemetry: Telemetry::disabled(),
            sample_buf: Vec::new(),
        })
    }

    fn check_skew(options: &ExecutorOptions, worker_count: usize) -> Result<(), SchedError> {
        match options.skew {
            Some(skew) if skew.worker >= worker_count => Err(SchedError::SkewWorkerOutOfRange {
                worker: skew.worker,
                worker_count,
            }),
            _ => Ok(()),
        }
    }

    fn spawn_handles(workers: Vec<WorkerSlices>, options: &ExecutorOptions) -> Vec<WorkerHandle> {
        let timed = options.timed;
        workers
            .into_iter()
            .map(|mut slices| {
                let skew_ns = options
                    .skew
                    .filter(|s| s.worker == slices.worker)
                    .map(|s| s.nanos_per_pattern);
                let worker_index = slices.worker;
                let (cmd_tx, cmd_rx) = channel::<Option<Arc<Command>>>();
                let (res_tx, res_rx) = channel::<Reply>();
                let (mut sample_tx, sample_rx) = ring::spsc::<WorkerSample>(SAMPLE_RING_CAPACITY);
                let join = std::thread::Builder::new()
                    .name(format!("plk-worker-{}", slices.worker))
                    .spawn(move || {
                        // lint:allow(L008): queue-wait baseline for the telemetry sample
                        // ring; observability only, never feeds the reduction order.
                        let mut idle_since = Instant::now();
                        while let Ok(Some(cmd)) = cmd_rx.recv() {
                            // Time spent blocked on the command channel: the
                            // telemetry queue-wait lane of this worker.
                            let queue_wait = idle_since.elapsed();
                            // lint:allow(L008): per-op timing for the measured trace that
                            // drives rebalancing; never feeds the reduction order.
                            let start = Instant::now();
                            let body = || -> Result<(OpOutput, usize), phylo_kernel::OpError> {
                                if cmd.panic_worker == Some(worker_index) {
                                    // lint:allow(L001): fault-injection hook, armed only by recovery tests
                                    panic!("injected worker panic (test instrumentation)");
                                }
                                let ctx = ExecContext {
                                    tree: &cmd.tree,
                                    models: &cmd.models,
                                    branch_lengths: &cmd.branch_lengths,
                                };
                                let out = execute_on_worker(&mut slices, &cmd.op, &ctx)?;
                                // The live-pattern count drives the skew
                                // sleep and the timed trace; the untimed,
                                // unskewed hot path skips it (the master
                                // would discard it).
                                let active = if timed || skew_ns.is_some() {
                                    active_local_patterns(&slices, &cmd.op)
                                } else {
                                    0
                                };
                                if let Some(ns) = skew_ns {
                                    std::thread::sleep(Duration::from_nanos(ns * active as u64));
                                }
                                Ok((out, active))
                            };
                            let outcome = catch_unwind(AssertUnwindSafe(body));
                            // The sample is pushed *before* the reply, so by
                            // the time the master holds this worker's reply
                            // the ring slot is visible. A panicked worker
                            // pushes nothing: its region never completes.
                            if cmd.record && outcome.is_ok() {
                                let (tip_hits, tip_misses, tip_builds) =
                                    slices.take_tip_cache_counters();
                                let (dispatch_blocked, dispatch_scalar) =
                                    slices.take_dispatch_counters();
                                let _ = sample_tx.push(WorkerSample {
                                    worker: worker_index,
                                    region: cmd.region,
                                    op_seconds: start.elapsed().as_secs_f64(),
                                    queue_wait_seconds: queue_wait.as_secs_f64(),
                                    tip_hits,
                                    tip_misses,
                                    tip_builds,
                                    dispatch_blocked,
                                    dispatch_scalar,
                                });
                            }
                            match outcome {
                                Ok(Ok((out, active))) => {
                                    if res_tx
                                        .send(Reply::Output(out, start.elapsed(), active))
                                        .is_err()
                                    {
                                        break;
                                    }
                                }
                                Ok(Err(op_error)) => {
                                    // Typed rejection: the worker stays alive
                                    // and keeps serving commands in lockstep.
                                    if res_tx.send(Reply::OpRejected(op_error)).is_err() {
                                        break;
                                    }
                                }
                                Err(payload) => {
                                    // The slices may be half-updated; report
                                    // the panic and retire this worker.
                                    let _ = res_tx.send(Reply::Panicked(panic_message(payload)));
                                    break;
                                }
                            }
                            // lint:allow(L008): resets the queue-wait baseline above.
                            idle_since = Instant::now();
                        }
                    })
                    // lint:allow(L001): spawn failure at executor construction, outside the per-op path
                    .expect("failed to spawn worker thread");
                WorkerHandle {
                    sender: cmd_tx,
                    results: res_rx,
                    samples: sample_rx,
                    join: Some(join),
                }
            })
            .collect()
    }

    fn shutdown_workers(&mut self) {
        for handle in &self.handles {
            let _ = handle.sender.send(None);
        }
        for handle in &mut self.handles {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
        self.handles.clear();
    }

    /// The assignment the current workers were built from.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The options the executor was built with.
    pub fn options(&self) -> &ExecutorOptions {
        &self.options
    }

    /// The wall-clock trace accumulated so far (empty unless
    /// [`ExecutorOptions::timed`] was set).
    pub fn trace(&self) -> &WorkTrace {
        &self.trace
    }

    /// Takes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> WorkTrace {
        std::mem::replace(&mut self.trace, WorkTrace::new(self.worker_count))
    }

    /// The worker whose death poisoned the executor, if any.
    pub fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }

    /// The panic message of the most recent worker panic, if one was caught.
    pub fn last_panic_message(&self) -> Option<&str> {
        self.last_panic.as_deref()
    }

    /// Arms a one-shot injected panic: `worker` will panic while executing
    /// the command issued `after_regions` synchronization events from now
    /// (0 = the very next command). Test instrumentation for the
    /// worker-death recovery path — the panic travels through the exact same
    /// catch/report/poison machinery as a real worker fault.
    pub fn inject_worker_panic(&mut self, worker: usize, after_regions: u64) {
        self.injected_panic = Some((worker, self.sync_events + 1 + after_regions));
    }

    /// The broadcast/reduce round of one command — the body of
    /// [`Executor::execute`].
    fn broadcast(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        if let Some(worker) = self.poisoned {
            return Err(ExecError::Poisoned { worker });
        }
        self.sync_events += 1;
        // A one-shot armed fault fires exactly once, on its scheduled region.
        let panic_worker = match self.injected_panic {
            Some((worker, at)) if self.sync_events >= at => {
                self.injected_panic = None;
                Some(worker)
            }
            _ => None,
        };
        // Bracket the region for telemetry. The token is dropped without a
        // `region_end` on the worker-death paths, which is exactly the
        // "started but never completed" marker the event stream needs.
        let token = self.telemetry.enabled().then(|| {
            self.telemetry
                .region_start(op.kind().label(), &op.active_partitions())
        });
        let region = token.as_ref().and_then(|t| t.region()).unwrap_or(0);
        let command = Arc::new(Command {
            op: op.clone(),
            tree: ctx.tree.clone(),
            models: ctx.models.clone(),
            branch_lengths: ctx.branch_lengths.clone(),
            record: token.is_some(),
            region,
            panic_worker,
        });
        for (worker, handle) in self.handles.iter().enumerate() {
            if handle.sender.send(Some(Arc::clone(&command))).is_err() {
                self.poisoned = Some(worker);
                self.telemetry
                    .worker_death(worker, token.as_ref().and_then(|t| t.region()));
                return Err(ExecError::WorkerDied { worker });
            }
        }
        // Only allocate the per-region record when the measurements are
        // actually kept — the untimed master loop stays allocation-free.
        let mut record = self
            .options
            .timed
            .then(|| RegionRecord::new(op.kind(), self.worker_count));
        if let Some(record) = record.as_mut() {
            record.active_partitions = op.active_partitions();
        }
        let mut result: Option<OpOutput> = None;
        // A typed kernel rejection must not break the broadcast lockstep:
        // every worker still sends exactly one reply for this region, so the
        // master drains them all before surfacing the first rejection. The
        // workers stay healthy and unpoisoned.
        let mut rejected: Option<phylo_kernel::OpError> = None;
        for (worker, handle) in self.handles.iter().enumerate() {
            match handle.results.recv() {
                Ok(Reply::Output(out, duration, active)) => {
                    if let Some(record) = record.as_mut() {
                        record.seconds_per_worker[worker] = duration.as_secs_f64();
                        record.active_patterns_per_worker[worker] = active as f64;
                    }
                    // A reduce mismatch is deterministic misuse like any
                    // other op rejection: keep draining the lockstep replies
                    // and surface it once every worker has answered.
                    result = match result.take() {
                        None => Some(out),
                        Some(acc) => match reduce_outputs(acc, out) {
                            Ok(merged) => Some(merged),
                            Err(e) => {
                                rejected.get_or_insert(e);
                                None
                            }
                        },
                    };
                }
                Ok(Reply::OpRejected(op_error)) => {
                    rejected.get_or_insert(op_error);
                }
                Ok(Reply::Panicked(message)) => {
                    self.poisoned = Some(worker);
                    self.last_panic = Some(message);
                    self.telemetry
                        .worker_death(worker, token.as_ref().and_then(|t| t.region()));
                    return Err(ExecError::WorkerDied { worker });
                }
                Err(_) => {
                    self.poisoned = Some(worker);
                    self.telemetry
                        .worker_death(worker, token.as_ref().and_then(|t| t.region()));
                    return Err(ExecError::WorkerDied { worker });
                }
            }
        }
        // Every worker replied (possibly with a typed rejection), so the
        // region completed: drain the sample rings and close the bracket —
        // the sample of worker `w` was pushed before its reply was sent.
        if let Some(token) = token {
            let mut worker_seconds = vec![0.0; self.worker_count];
            let mut queue_wait = vec![0.0; self.worker_count];
            let (mut hits, mut misses, mut builds) = (0u64, 0u64, 0u64);
            let (mut blocked, mut scalar) = (0u64, 0u64);
            let mut ring_dropped = 0u64;
            for handle in &mut self.handles {
                ring_dropped += handle.samples.take_dropped();
                self.sample_buf.clear();
                handle.samples.drain_into(&mut self.sample_buf);
                for sample in &self.sample_buf {
                    if sample.region != region {
                        continue;
                    }
                    worker_seconds[sample.worker] = sample.op_seconds;
                    queue_wait[sample.worker] = sample.queue_wait_seconds;
                    hits += sample.tip_hits;
                    misses += sample.tip_misses;
                    builds += sample.tip_builds;
                    blocked += sample.dispatch_blocked;
                    scalar += sample.dispatch_scalar;
                }
            }
            self.telemetry.add_tip_cache(hits, misses, builds);
            self.telemetry.add_dispatch_patterns(blocked, scalar);
            // Samples a full ring refused are gone, but never silently:
            // they surface as `events_dropped` in the snapshot.
            self.telemetry.add_dropped(ring_dropped);
            self.telemetry
                .region_end(token, &worker_seconds, &queue_wait);
        }
        if let Some(op_error) = rejected {
            return Err(ExecError::Op(op_error));
        }
        if let Some(record) = record {
            self.trace.regions.push(record);
        }
        Ok(result.unwrap_or(OpOutput::None))
    }

    /// Migrates pattern→worker ownership to a new assignment: the old
    /// workers are shut down, fresh ones are spawned from the new owner map,
    /// the trace epoch restarts, and any poisoned state is cleared (the
    /// broken workers are gone).
    ///
    /// The new workers own *empty* CLV buffers, so the caller must
    /// invalidate the master-side CLV validity cache before the next
    /// likelihood evaluation (`LikelihoodKernel::invalidate_all`).
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for
    /// a different dataset, [`SchedError::SkewWorkerOutOfRange`] if the
    /// executor's skew would fall outside the new worker range; the executor
    /// is left untouched in either case.
    pub fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        Self::check_skew(&self.options, assignment.worker_count())?;
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        self.shutdown_workers();
        self.worker_count = workers.len();
        self.handles = Self::spawn_handles(workers, &self.options);
        self.assignment = assignment.clone();
        self.trace = WorkTrace::new(self.worker_count);
        self.poisoned = None;
        self.last_panic = None;
        self.injected_panic = None;
        Ok(())
    }
}

impl Executor for ThreadedExecutor {
    fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Executes one command, surfacing worker failures as values instead of
    /// killing the master thread.
    ///
    /// # Errors
    ///
    /// [`ExecError::WorkerDied`] when a worker panics (or its channel
    /// disconnects) during this command; the executor is poisoned
    /// afterwards. [`ExecError::Poisoned`] for every command issued to a
    /// poisoned executor; [`ThreadedExecutor::reassign`] clears the state by
    /// rebuilding the workers.
    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        self.broadcast(op, ctx)
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
    }
}

impl Drop for ThreadedExecutor {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule;
    use phylo_kernel::{LikelihoodKernel, SequentialKernel};
    use phylo_models::BranchLengthMode;
    use phylo_sched::{Block, Cyclic, ScheduleStrategy, WeightedLpt};
    use phylo_seqgen::datasets::paper_simulated;

    #[test]
    fn threaded_likelihood_matches_sequential() {
        let ds = paper_simulated(10, 300, 50, 17).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let reference = seq.try_log_likelihood().unwrap();

        for workers in [2usize, 4] {
            let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
            let assignment = schedule(&ds.patterns, &cats, workers, &Cyclic).unwrap();
            let exec = ThreadedExecutor::from_assignment(
                &ds.patterns,
                &assignment,
                ds.tree.node_capacity(),
                &cats,
            )
            .unwrap();
            let mut k = LikelihoodKernel::try_new(
                Arc::clone(&ds.patterns),
                ds.tree.clone(),
                models.clone(),
                exec,
            )
            .unwrap();
            let lnl = k.try_log_likelihood().unwrap();
            assert!(
                (lnl - reference).abs() < 1e-8,
                "{workers} threads: {lnl} vs sequential {reference}"
            );
            assert!(k.sync_events() > 0);
        }
    }

    #[test]
    fn threaded_derivatives_match_sequential() {
        let ds = paper_simulated(8, 160, 40, 23).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();

        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let branch = seq.tree().internal_branches()[0];
        let mask = seq.full_mask();
        seq.try_prepare_branch(branch, &mask).unwrap();
        let lengths: Vec<Option<f64>> = (0..seq.partition_count()).map(|_| Some(0.2)).collect();
        let expected = seq.try_branch_derivatives(&lengths).unwrap();

        // The cost-aware strategy must produce the same likelihood as any
        // other placement — results are placement-invariant by construction.
        let assignment = schedule(&ds.patterns, &cats, 3, &WeightedLpt).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut par =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        par.try_prepare_branch(branch, &mask).unwrap();
        let got = par.try_branch_derivatives(&lengths).unwrap();
        for (a, b) in expected.iter().zip(got.iter()) {
            let (a, b) = (a.unwrap(), b.unwrap());
            assert!((a.log_likelihood - b.log_likelihood).abs() < 1e-8);
            assert!((a.first - b.first).abs() < 1e-8);
            assert!((a.second - b.second).abs() < 1e-8);
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let ds = paper_simulated(6, 64, 16, 29).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 4, &Cyclic).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        drop(exec);
    }

    #[test]
    fn injected_panic_fires_once_on_the_scheduled_region() {
        let ds = paper_simulated(6, 64, 16, 29).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let mut exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let bl = BranchLengths::from_tree(
            &ds.tree,
            ds.patterns.partition_count(),
            models.branch_mode(),
        );
        let ctx = ExecContext {
            tree: &ds.tree,
            models: &models,
            branch_lengths: &bl,
        };
        // A no-op newview: harmless on fresh (empty) CLV buffers, so the only
        // possible failure is the injected one.
        let op = KernelOp::Newview {
            plans: vec![None; ds.patterns.partition_count()],
            tables: None,
        };
        // Armed one region ahead: the next command succeeds, the one after
        // dies on worker 1, and a reassign fully clears the fault.
        exec.inject_worker_panic(1, 1);
        assert!(exec.execute(&op, &ctx).is_ok());
        let err = exec.execute(&op, &ctx).unwrap_err();
        assert_eq!(err, ExecError::WorkerDied { worker: 1 });
        assert!(exec
            .last_panic_message()
            .is_some_and(|m| m.contains("injected")));
        exec.reassign(&ds.patterns, &assignment, ds.tree.node_capacity(), &cats)
            .unwrap();
        assert!(exec.execute(&op, &ctx).is_ok());
    }

    #[test]
    fn typed_kernel_rejection_does_not_poison_the_workers() {
        use phylo_kernel::OpError;
        let ds = paper_simulated(6, 64, 16, 61).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let mut exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let bl = BranchLengths::from_tree(
            &ds.tree,
            ds.patterns.partition_count(),
            models.branch_mode(),
        );
        let ctx = ExecContext {
            tree: &ds.tree,
            models: &models,
            branch_lengths: &bl,
        };
        // Derivatives without a sum table: every worker with patterns hits
        // the release-mode staleness guard. The rejection must cross the
        // channel as a typed value, keep the broadcast lockstep intact and
        // leave the workers unpoisoned (this used to be an assert! that
        // killed the worker thread and poisoned the executor).
        let premature = KernelOp::Derivatives {
            lengths: vec![Some(0.1); ds.patterns.partition_count()],
        };
        let err = exec.execute(&premature, &ctx).unwrap_err();
        assert!(
            matches!(err, ExecError::Op(OpError::SumtableStale { .. })),
            "{err:?}"
        );
        assert_eq!(exec.poisoned_by(), None, "workers stay healthy");
        // The very next command runs on the same workers.
        let nop = KernelOp::Newview {
            plans: vec![None; ds.patterns.partition_count()],
            tables: None,
        };
        assert!(exec.execute(&nop, &ctx).is_ok());
        // And the lockstep survived: a full likelihood round-trip agrees
        // with the sequential reference.
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let reference = seq.try_log_likelihood().unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let lnl = k.try_log_likelihood().unwrap();
        assert!((lnl - reference).abs() < 1e-8);
    }

    #[test]
    fn timed_executor_accumulates_a_wall_clock_trace() {
        let ds = paper_simulated(8, 160, 40, 31).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let exec = ThreadedExecutor::with_options(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
            ExecutorOptions {
                timed: true,
                skew: None,
            },
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let _ = k.try_log_likelihood().unwrap();
        let sync = k.sync_events();
        let trace = k.executor_mut().take_trace();
        assert_eq!(trace.sync_events() as u64, sync);
        assert_eq!(trace.workers, 3);
        assert!(trace.has_seconds(), "timed regions must carry durations");
        // After take_trace the accumulator restarts empty.
        assert_eq!(k.executor_mut().trace().sync_events(), 0);
    }

    #[test]
    fn untimed_executor_keeps_no_trace() {
        let ds = paper_simulated(6, 64, 16, 37).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 2, &Cyclic).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let _ = k.try_log_likelihood().unwrap();
        assert_eq!(k.executor_mut().trace().sync_events(), 0);
    }

    #[test]
    fn worker_panic_surfaces_as_exec_error_and_poisons() {
        let ds = paper_simulated(6, 64, 16, 41).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let mut exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let bl = BranchLengths::from_tree(
            &ds.tree,
            ds.patterns.partition_count(),
            models.branch_mode(),
        );
        let ctx = ExecContext {
            tree: &ds.tree,
            models: &models,
            branch_lengths: &bl,
        };
        // An empty partition mask makes every worker index out of bounds —
        // the injected panicking op.
        let bad = KernelOp::Evaluate {
            root_branch: 0,
            mask: vec![],
            tables: None,
        };
        let err = exec.execute(&bad, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::WorkerDied { .. }), "{err:?}");
        assert!(exec.poisoned_by().is_some());
        assert!(
            exec.last_panic_message().is_some(),
            "the caught panic message must be retained for diagnostics"
        );
        // Every further command fails fast with the poisoned state.
        let good = KernelOp::Evaluate {
            root_branch: 0,
            mask: vec![true; ds.patterns.partition_count()],
            tables: None,
        };
        let err = exec.execute(&good, &ctx).unwrap_err();
        assert!(matches!(err, ExecError::Poisoned { .. }), "{err:?}");
        assert!(!err.to_string().is_empty());
        // Dropping a poisoned executor must not hang or panic.
        drop(exec);
    }

    #[test]
    fn reassign_recovers_a_poisoned_executor() {
        let ds = paper_simulated(6, 64, 16, 43).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 2, &Cyclic).unwrap();
        let mut exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let bl = BranchLengths::from_tree(
            &ds.tree,
            ds.patterns.partition_count(),
            models.branch_mode(),
        );
        let ctx = ExecContext {
            tree: &ds.tree,
            models: &models,
            branch_lengths: &bl,
        };
        let bad = KernelOp::Evaluate {
            root_branch: 0,
            mask: vec![],
            tables: None,
        };
        assert!(exec.execute(&bad, &ctx).is_err());
        assert!(exec.poisoned_by().is_some());

        let fresh = schedule(&ds.patterns, &cats, 2, &Block).unwrap();
        exec.reassign(&ds.patterns, &fresh, ds.tree.node_capacity(), &cats)
            .unwrap();
        assert_eq!(exec.poisoned_by(), None);
        // A fresh executor owns empty CLV buffers, so the recovery probe is
        // a no-op newview (what the engine would issue after invalidation).
        let good = KernelOp::Newview {
            plans: vec![None; ds.patterns.partition_count()],
            tables: None,
        };
        assert!(exec.execute(&good, &ctx).is_ok());
    }

    #[test]
    fn reassign_migrates_ownership_with_identical_likelihood() {
        let ds = paper_simulated(8, 200, 40, 47).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let cyclic = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let exec = ThreadedExecutor::from_assignment(
            &ds.patterns,
            &cyclic,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let before = k.try_log_likelihood().unwrap();

        let lpt = schedule(&ds.patterns, &cats, 3, &WeightedLpt).unwrap();
        let patterns = Arc::clone(k.patterns());
        let node_capacity = k.tree().node_capacity();
        k.executor_mut()
            .reassign(&patterns, &lpt, node_capacity, &cats)
            .unwrap();
        // The migrated workers own fresh CLV buffers.
        k.invalidate_all();
        let after = k.try_log_likelihood().unwrap();
        assert!(
            (after - before).abs() < 1e-8,
            "migration must preserve the likelihood: {before} vs {after}"
        );
        assert_eq!(k.executor_mut().assignment().strategy(), "weighted-lpt");
    }

    #[test]
    fn degenerate_schedules_with_more_workers_than_patterns() {
        // Block and LPT both produce empty workers when T > m'; the full
        // master/worker protocol must still reduce to the sequential answer.
        let ds = paper_simulated(6, 24, 12, 53).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let reference = seq.try_log_likelihood().unwrap();

        let patterns = ds.patterns.total_patterns();
        let workers = patterns + 5;
        for strategy in [&Block as &dyn ScheduleStrategy, &WeightedLpt] {
            let assignment = schedule(&ds.patterns, &cats, workers, strategy).unwrap();
            assert!(
                assignment.patterns_per_worker().contains(&0),
                "{}: with {workers} workers and {patterns} patterns some must idle",
                strategy.name()
            );
            let exec = ThreadedExecutor::from_assignment(
                &ds.patterns,
                &assignment,
                ds.tree.node_capacity(),
                &cats,
            )
            .unwrap();
            let mut k = LikelihoodKernel::try_new(
                Arc::clone(&ds.patterns),
                ds.tree.clone(),
                models.clone(),
                exec,
            )
            .unwrap();
            let lnl = k.try_log_likelihood().unwrap();
            assert!(
                (lnl - reference).abs() < 1e-8,
                "{} with empty workers: {lnl} vs {reference}",
                strategy.name()
            );
            // Derivatives also cross the empty workers' uniform-shape path.
            let branch = k.tree().internal_branches()[0];
            let mask = k.full_mask();
            k.try_prepare_branch(branch, &mask).unwrap();
            let lengths: Vec<Option<f64>> = (0..k.partition_count()).map(|_| Some(0.15)).collect();
            let ders = k.try_branch_derivatives(&lengths).unwrap();
            assert!(ders.iter().all(|d| d.is_some()));
        }
    }

    #[test]
    fn skewed_worker_measures_slower() {
        let ds = paper_simulated(6, 120, 30, 59).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let exec = ThreadedExecutor::with_options(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
            ExecutorOptions {
                timed: true,
                skew: Some(WorkerSkew {
                    worker: 1,
                    nanos_per_pattern: 30_000,
                }),
            },
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let _ = k.try_log_likelihood().unwrap();
        let trace = k.executor_mut().take_trace();
        let totals = trace.per_worker_total_in(phylo_kernel::TraceUnit::Seconds);
        assert!(
            totals[1] > totals[0] && totals[1] > totals[2],
            "skewed worker must dominate the wall clock: {totals:?}"
        );
    }
}
