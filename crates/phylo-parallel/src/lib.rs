//! Parallel execution backends for the likelihood kernel.
//!
//! The Pthreads-based RAxML the paper builds on uses a master/worker scheme:
//! worker threads are created once, the alignment patterns are distributed
//! over them cyclically, and the master broadcasts commands (traversal lists,
//! evaluations, derivative computations) that every worker executes on its
//! local patterns before a barrier + reduction. This crate implements that
//! protocol on top of the [`Executor`](phylo_kernel::Executor) abstraction:
//!
//! * [`threaded::ThreadedExecutor`] — persistent `std::thread` workers with a
//!   channel-based broadcast, the real-parallel backend used for wall-clock
//!   measurements on the reproduction host,
//! * [`rayon_exec::RayonExecutor`] — an alternative backend on the rayon
//!   thread pool, included for comparison (the guides for this domain
//!   recommend rayon for data parallelism),
//! * [`tracing::TracingExecutor`] — *virtual* workers executed sequentially
//!   while recording, for every parallel region, how much work each virtual
//!   worker would have performed. This makes the load balance of 8- or
//!   16-thread runs measurable on any host and feeds the platform model in
//!   `phylo-perfmodel`, which regenerates the paper's per-machine figures.
//!
//! # Assignment flow
//!
//! Which patterns land on which worker is decided by the pluggable scheduling
//! subsystem in [`phylo_sched`]: a [`ScheduleStrategy`] turns a
//! [`PatternCosts`] workload description into an explicit [`Assignment`]
//! (pattern→worker map plus per-worker predicted cost), and every executor is
//! built *from* such an assignment:
//!
//! ```text
//! PartitionedPatterns ──PatternCosts::analytic──▶ PatternCosts
//!                                                     │ ScheduleStrategy::assign
//!                                                     ▼
//! build_workers(patterns, …, &Assignment) ──▶ Vec<WorkerSlices> ──▶ executor
//! ```
//!
//! [`schedule`] bundles the first two arrows; the strategies themselves —
//! [`Cyclic`] and [`Block`] (the paper's two fixed schemes), [`WeightedLpt`]
//! (cost-weighted bin-packing, so a 20-state protein pattern counts ≈25× a
//! DNA pattern), [`PartitionAwareLpt`] (cost-levelled *and* partition-
//! contiguous per worker) and [`TraceAdaptive`] (rebalancing from a measured
//! [`WorkTrace`]) — live in `phylo-sched`.
//! The [`Cyclic`] and [`Block`] strategies reproduce the paper's original
//! pattern placement bit-for-bit (the legacy `Distribution` enum that once
//! shimmed them was removed two PRs after its deprecation).
//!
//! ```
//! use phylo_data::{Alignment, DataType, PartitionSet, PartitionedPatterns};
//! use phylo_parallel::{build_workers, schedule, WeightedLpt};
//!
//! let alignment = Alignment::new(vec![
//!     ("t1".into(), "ACGTACGTACGT".into()),
//!     ("t2".into(), "ACGAACGAACGA".into()),
//! ]).unwrap();
//! let partitions = PartitionSet::equal_length(DataType::Dna, 12, 6);
//! let patterns = PartitionedPatterns::compile(&alignment, &partitions).unwrap();
//!
//! let assignment = schedule(&patterns, &[4, 4], 3, &WeightedLpt).unwrap();
//! let workers = build_workers(&patterns, 4, &[4, 4], &assignment).unwrap();
//! let total: usize = workers.iter().map(|w| w.total_patterns()).sum();
//! assert_eq!(total, patterns.total_patterns());
//! ```

#![forbid(unsafe_code)]

pub mod rayon_exec;
pub mod threaded;
pub mod tracing;

pub use rayon_exec::RayonExecutor;
pub use threaded::{ExecutorOptions, ThreadedExecutor, WorkerSkew};
pub use tracing::TracingExecutor;

pub use phylo_sched::{
    Assignment, Block, Cyclic, PartitionAwareLpt, PatternCosts, Reassignable, RescheduleDecision,
    ReschedulePolicy, Rescheduler, SchedError, ScheduleStrategy, SpeedAwareLpt, TraceAdaptive,
    WeightedLpt,
};

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::WorkTrace;
use phylo_kernel::WorkerSlices;

/// The timed real-thread executor can migrate ownership mid-run.
impl Reassignable for ThreadedExecutor {
    fn assignment(&self) -> &Assignment {
        ThreadedExecutor::assignment(self)
    }

    fn live_trace(&self) -> &WorkTrace {
        self.trace()
    }

    fn take_trace(&mut self) -> WorkTrace {
        ThreadedExecutor::take_trace(self)
    }

    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        ThreadedExecutor::reassign(self, patterns, assignment, node_capacity, categories)
    }
}

/// The rayon backend carries the same recovery contract as the threaded one:
/// a caught worker panic poisons it, and `reassign` rebuilds the slices (and
/// the pool, when the worker count changes) to recover.
impl Reassignable for RayonExecutor {
    fn assignment(&self) -> &Assignment {
        RayonExecutor::assignment(self)
    }

    fn live_trace(&self) -> &WorkTrace {
        self.trace()
    }

    fn take_trace(&mut self) -> WorkTrace {
        RayonExecutor::take_trace(self)
    }

    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        RayonExecutor::reassign(self, patterns, assignment, node_capacity, categories)
    }
}

/// The virtual tracing executor supports the same migration protocol, so
/// mid-run rescheduling can be tested deterministically from FLOP traces.
impl Reassignable for TracingExecutor {
    fn assignment(&self) -> &Assignment {
        TracingExecutor::assignment(self)
    }

    fn live_trace(&self) -> &WorkTrace {
        self.trace()
    }

    fn take_trace(&mut self) -> WorkTrace {
        TracingExecutor::take_trace(self)
    }

    fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        TracingExecutor::reassign(self, patterns, assignment, node_capacity, categories)
    }
}

/// Builds an [`Assignment`] for a dataset with the analytic cost model:
/// derives [`PatternCosts`] from the partitions' state and category counts,
/// then runs `strategy` over them.
///
/// # Errors
///
/// Whatever the strategy reports — at minimum [`SchedError::NoWorkers`] for
/// `worker_count == 0` and [`SchedError::EmptyWorkload`] for a dataset
/// without patterns.
pub fn schedule(
    patterns: &PartitionedPatterns,
    categories: &[usize],
    worker_count: usize,
    strategy: &dyn ScheduleStrategy,
) -> Result<Assignment, SchedError> {
    let costs = PatternCosts::analytic(patterns, categories);
    strategy.assign(&costs, worker_count)
}

/// Builds the per-worker slices for all workers of an [`Assignment`].
///
/// # Errors
///
/// [`SchedError::PatternCountMismatch`] if the assignment was built for a
/// different pattern count than `patterns` contains.
pub fn build_workers(
    patterns: &PartitionedPatterns,
    node_capacity: usize,
    categories: &[usize],
    assignment: &Assignment,
) -> Result<Vec<WorkerSlices>, SchedError> {
    if assignment.pattern_count() != patterns.total_patterns() {
        return Err(SchedError::PatternCountMismatch {
            expected: patterns.total_patterns(),
            got: assignment.pattern_count(),
        });
    }
    Ok((0..assignment.worker_count())
        .map(|w| {
            WorkerSlices::from_assignment(
                patterns,
                w,
                assignment.worker_count(),
                node_capacity,
                categories,
                assignment.owner(),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet};

    fn patterns() -> PartitionedPatterns {
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGTAAGGCCTT".into()),
            ("t2".into(), "ACGTACGAACGTACGAAAGCCCTA".into()),
            ("t3".into(), "ACCTACGAACCTACGAATGCCCTA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 24, 6);
        PartitionedPatterns::compile(&aln, &ps).unwrap()
    }

    #[test]
    fn all_strategies_cover_all_patterns() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        let strategies: Vec<Box<dyn ScheduleStrategy>> =
            vec![Box::new(Cyclic), Box::new(Block), Box::new(WeightedLpt)];
        for strategy in &strategies {
            let assignment = schedule(&pp, &cats, 3, strategy.as_ref()).unwrap();
            let workers = build_workers(&pp, 8, &cats, &assignment).unwrap();
            let total: usize = workers.iter().map(|w| w.total_patterns()).sum();
            assert_eq!(total, pp.total_patterns(), "{}", strategy.name());
        }
    }

    #[test]
    fn block_strategy_is_contiguous_per_worker() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        let assignment = schedule(&pp, &cats, 3, &Block).unwrap();
        let workers = build_workers(&pp, 8, &cats, &assignment).unwrap();
        for w in &workers {
            let mut indices: Vec<usize> = w
                .slices
                .iter()
                .flat_map(|s| s.global_indices.iter().copied())
                .collect();
            indices.sort_unstable();
            if indices.len() > 1 {
                assert_eq!(indices.last().unwrap() - indices[0] + 1, indices.len());
            }
        }
    }

    #[test]
    fn zero_workers_is_an_error_not_a_panic() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        assert_eq!(
            schedule(&pp, &cats, 0, &Cyclic).unwrap_err(),
            SchedError::NoWorkers
        );
    }

    #[test]
    fn mismatched_assignment_is_rejected() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        let foreign = Cyclic
            .assign(&PatternCosts::uniform(pp.total_patterns() + 5), 2)
            .unwrap();
        assert!(matches!(
            build_workers(&pp, 8, &cats, &foreign).unwrap_err(),
            SchedError::PatternCountMismatch { .. }
        ));
    }

    /// The acceptance bar for the scheduling refactor, kept alive after the
    /// legacy `Distribution` shim's removal: the strategy path still places
    /// every pattern exactly like the paper's original cyclic/block
    /// constructors.
    #[test]
    fn strategies_reproduce_original_placement_bit_for_bit() {
        type Original = fn(&PartitionedPatterns, usize, usize, usize, &[usize]) -> WorkerSlices;
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        for (strategy, original_ctor) in [
            (
                &Cyclic as &dyn ScheduleStrategy,
                WorkerSlices::cyclic as Original,
            ),
            (&Block, WorkerSlices::block as Original),
        ] {
            for worker_count in [1usize, 2, 3, 5, 16] {
                let assignment = schedule(&pp, &cats, worker_count, strategy).unwrap();
                let modern = build_workers(&pp, 8, &cats, &assignment).unwrap();
                // The paper's original constructors are the ground truth.
                let original: Vec<WorkerSlices> = (0..worker_count)
                    .map(|w| original_ctor(&pp, w, worker_count, 8, &cats))
                    .collect();
                assert_eq!(modern.len(), original.len());
                for (b, c) in modern.iter().zip(original.iter()) {
                    assert_eq!(b.worker, c.worker);
                    assert_eq!(b.worker_count, c.worker_count);
                    assert_eq!(
                        b.slices,
                        c.slices,
                        "{} × {worker_count} workers vs original",
                        strategy.name()
                    );
                }
            }
        }
    }
}
