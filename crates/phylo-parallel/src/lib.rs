//! Parallel execution backends for the likelihood kernel.
//!
//! The Pthreads-based RAxML the paper builds on uses a master/worker scheme:
//! worker threads are created once, the alignment patterns are distributed
//! over them cyclically, and the master broadcasts commands (traversal lists,
//! evaluations, derivative computations) that every worker executes on its
//! local patterns before a barrier + reduction. This crate implements that
//! protocol on top of the [`Executor`](phylo_kernel::Executor) abstraction:
//!
//! * [`threaded::ThreadedExecutor`] — persistent `std::thread` workers with a
//!   channel-based broadcast, the real-parallel backend used for wall-clock
//!   measurements on the reproduction host,
//! * [`rayon_exec::RayonExecutor`] — an alternative backend on the rayon
//!   thread pool, included for comparison (the guides for this domain
//!   recommend rayon for data parallelism),
//! * [`tracing::TracingExecutor`] — *virtual* workers executed sequentially
//!   while recording, for every parallel region, how much work each virtual
//!   worker would have performed. This makes the load balance of 8- or
//!   16-thread runs measurable on any host and feeds the platform model in
//!   `phylo-perfmodel`, which regenerates the paper's per-machine figures.
//!
//! The distribution of patterns to workers (cyclic vs block) is selectable via
//! [`Distribution`]; the paper argues for cyclic distribution to balance mixed
//! DNA/protein partitions, and the ablation bench quantifies that choice.

pub mod rayon_exec;
pub mod threaded;
pub mod tracing;

pub use rayon_exec::RayonExecutor;
pub use threaded::ThreadedExecutor;
pub use tracing::TracingExecutor;

use phylo_data::PartitionedPatterns;
use phylo_kernel::WorkerSlices;

/// How patterns are assigned to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Pattern `g` goes to worker `g mod T` (the paper's scheme).
    Cyclic,
    /// The global pattern space is cut into `T` contiguous blocks.
    Block,
}

/// Builds the per-worker slices for all workers under a distribution.
pub fn build_workers(
    patterns: &PartitionedPatterns,
    worker_count: usize,
    node_capacity: usize,
    categories: &[usize],
    distribution: Distribution,
) -> Vec<WorkerSlices> {
    assert!(worker_count > 0, "at least one worker required");
    (0..worker_count)
        .map(|w| match distribution {
            Distribution::Cyclic => {
                WorkerSlices::cyclic(patterns, w, worker_count, node_capacity, categories)
            }
            Distribution::Block => {
                WorkerSlices::block(patterns, w, worker_count, node_capacity, categories)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_data::{Alignment, DataType, PartitionSet};

    fn patterns() -> PartitionedPatterns {
        let aln = Alignment::new(vec![
            ("t1".into(), "ACGTACGTACGTACGTAAGGCCTT".into()),
            ("t2".into(), "ACGTACGAACGTACGAAAGCCCTA".into()),
            ("t3".into(), "ACCTACGAACCTACGAATGCCCTA".into()),
        ])
        .unwrap();
        let ps = PartitionSet::equal_length(DataType::Dna, 24, 6);
        PartitionedPatterns::compile(&aln, &ps).unwrap()
    }

    #[test]
    fn both_distributions_cover_all_patterns() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        for dist in [Distribution::Cyclic, Distribution::Block] {
            let workers = build_workers(&pp, 3, 8, &cats, dist);
            let total: usize = workers.iter().map(|w| w.total_patterns()).sum();
            assert_eq!(total, pp.total_patterns(), "{dist:?}");
        }
    }

    #[test]
    fn block_distribution_is_contiguous_per_worker() {
        let pp = patterns();
        let cats = vec![4; pp.partition_count()];
        let workers = build_workers(&pp, 3, 8, &cats, Distribution::Block);
        for w in &workers {
            let mut indices: Vec<usize> = w
                .slices
                .iter()
                .flat_map(|s| s.global_indices.iter().copied())
                .collect();
            indices.sort_unstable();
            if indices.len() > 1 {
                assert_eq!(indices.last().unwrap() - indices[0] + 1, indices.len());
            }
        }
    }
}
