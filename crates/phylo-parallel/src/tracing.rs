//! The instrumented (virtual-worker) executor.
//!
//! The paper's figures compare 8- and 16-thread runs on four machines we do
//! not have. The load imbalance itself, however, is a purely combinatorial
//! property of the algorithm: which partitions are active in each parallel
//! region and how many of each partition's patterns fall to each worker under
//! the cyclic distribution. [`TracingExecutor`] therefore executes every
//! command *correctly* (sequentially over its virtual workers, so all
//! likelihood results are exact) while recording, per region, the analytic
//! amount of floating-point work each of its `T` virtual workers receives.
//! The resulting [`WorkTrace`] is converted into per-platform run-time
//! predictions by `phylo-perfmodel`.

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::{
    derivative_flops, evaluate_flops, newview_bytes, newview_flops, newview_flops_tabled,
    sumtable_flops, OpKind, RegionRecord, WorkTrace,
};
use phylo_kernel::{
    executor::{active_local_patterns, execute_on_worker, reduce_outputs},
    ExecContext, ExecError, Executor, KernelOp, OpOutput, WorkerSlices,
};
use phylo_sched::{Assignment, SchedError};

/// Executes commands on `T` virtual workers and records the per-region work.
#[derive(Debug)]
pub struct TracingExecutor {
    workers: Vec<WorkerSlices>,
    assignment: Assignment,
    trace: WorkTrace,
    sync_events: u64,
    telemetry: phylo_telemetry::Telemetry,
}

impl TracingExecutor {
    /// Builds a tracing executor over the virtual workers of `assignment`.
    ///
    /// The assignment is retained (see [`TracingExecutor::assignment`]) so
    /// that its predicted per-worker costs can be compared against the
    /// measured trace, e.g. by `phylo_perfmodel::imbalance_report`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<Self, SchedError> {
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        Ok(Self {
            workers,
            assignment: assignment.clone(),
            trace: WorkTrace::new(assignment.worker_count()),
            sync_events: 0,
            telemetry: phylo_telemetry::Telemetry::disabled(),
        })
    }

    /// The assignment the virtual workers were built from.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The accumulated work trace.
    pub fn trace(&self) -> &WorkTrace {
        &self.trace
    }

    /// Takes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> WorkTrace {
        std::mem::replace(&mut self.trace, WorkTrace::new(self.workers.len()))
    }

    /// Per-worker pattern counts of one partition (diagnostics).
    pub fn partition_pattern_counts(&self, partition: usize) -> Vec<usize> {
        self.workers
            .iter()
            .map(|w| w.partition_patterns(partition))
            .collect()
    }

    /// Migrates the virtual workers to a new assignment and restarts the
    /// trace epoch (the old trace measured the old ownership). The caller
    /// must invalidate the master-side CLV validity cache afterwards, since
    /// the rebuilt workers own empty CLV buffers.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for
    /// a different dataset; the executor is left untouched in that case.
    pub fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        self.workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        self.assignment = assignment.clone();
        self.trace = WorkTrace::new(assignment.worker_count());
        Ok(())
    }

    fn region_record(&self, op: &KernelOp, ctx: &ExecContext<'_>) -> RegionRecord {
        let workers = self.workers.len();
        let mut record = RegionRecord::new(op.kind(), workers);
        record.active_partitions = op.active_partitions();
        for (wi, worker) in self.workers.iter().enumerate() {
            record.active_patterns_per_worker[wi] = active_local_patterns(worker, op) as f64;
            let mut flops = 0.0;
            let mut bytes = 0.0;
            match op {
                KernelOp::Newview { plans, tables } => {
                    for (pi, plan) in plans.iter().enumerate() {
                        let Some(plan) = plan else { continue };
                        let slice = &worker.slices[pi];
                        let model = ctx.models.model(pi);
                        // The recorded flops must describe the kernel that
                        // actually ran: tabled newview replaces the tip
                        // inner products with lookups.
                        let per_pattern = if tables.is_some() {
                            newview_flops_tabled(slice.states(), model.categories())
                        } else {
                            newview_flops(slice.states(), model.categories())
                        };
                        let per_pattern_bytes = newview_bytes(slice.states(), model.categories());
                        let n = slice.pattern_count() as f64 * plan.len() as f64;
                        flops += n * per_pattern;
                        bytes += n * per_pattern_bytes;
                    }
                }
                KernelOp::Evaluate { mask, .. } => {
                    for (pi, active) in mask.iter().enumerate() {
                        if !*active {
                            continue;
                        }
                        let slice = &worker.slices[pi];
                        let model = ctx.models.model(pi);
                        flops += slice.pattern_count() as f64
                            * evaluate_flops(slice.states(), model.categories());
                    }
                }
                KernelOp::Sumtable { mask, .. } => {
                    for (pi, active) in mask.iter().enumerate() {
                        if !*active {
                            continue;
                        }
                        let slice = &worker.slices[pi];
                        let model = ctx.models.model(pi);
                        flops += slice.pattern_count() as f64
                            * sumtable_flops(slice.states(), model.categories());
                    }
                }
                KernelOp::Derivatives { lengths } => {
                    for (pi, length) in lengths.iter().enumerate() {
                        if length.is_none() {
                            continue;
                        }
                        let slice = &worker.slices[pi];
                        let model = ctx.models.model(pi);
                        flops += slice.pattern_count() as f64
                            * derivative_flops(slice.states(), model.categories());
                    }
                }
            }
            record.flops_per_worker[wi] = flops;
            record.bytes_per_worker[wi] = bytes;
        }
        record
    }
}

impl Executor for TracingExecutor {
    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        self.sync_events += 1;
        let token = self.telemetry.enabled().then(|| {
            self.telemetry
                .region_start(op.kind().label(), &op.active_partitions())
        });
        let mut record = self.region_record(op, ctx);
        let mut result: Option<OpOutput> = None;
        let mut rejected: Option<phylo_kernel::OpError> = None;
        for (wi, worker) in self.workers.iter_mut().enumerate() {
            // The virtual workers run sequentially, so each bracket measures
            // one worker's work free of contention — wall-clock seconds on
            // top of the analytic FLOP counts. A typed kernel rejection
            // surfaces after the telemetry bracket is closed (the virtual
            // workers cannot die, so every region completes).
            // lint:allow(L008): per-worker bracket timing for the measured trace;
            // never feeds the reduction order.
            let start = std::time::Instant::now();
            match execute_on_worker(worker, op, ctx) {
                Ok(out) => {
                    record.seconds_per_worker[wi] = start.elapsed().as_secs_f64();
                    result = match result.take() {
                        None => Some(out),
                        Some(acc) => match reduce_outputs(acc, out) {
                            Ok(merged) => Some(merged),
                            Err(e) => {
                                rejected = Some(e);
                                break;
                            }
                        },
                    };
                }
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        // Virtual workers run on the master thread: no queues, so the
        // queue-wait lanes are zero; the tip-cache deltas drain directly.
        if let Some(token) = token {
            let (mut hits, mut misses, mut builds) = (0u64, 0u64, 0u64);
            let (mut blocked, mut scalar) = (0u64, 0u64);
            for w in &self.workers {
                let (h, m, b) = w.take_tip_cache_counters();
                hits += h;
                misses += m;
                builds += b;
                let (db, ds) = w.take_dispatch_counters();
                blocked += db;
                scalar += ds;
            }
            self.telemetry.add_tip_cache(hits, misses, builds);
            self.telemetry.add_dispatch_patterns(blocked, scalar);
            let queue_wait = vec![0.0; record.seconds_per_worker.len()];
            self.telemetry
                .region_end(token, &record.seconds_per_worker, &queue_wait);
        }
        if let Some(e) = rejected {
            return Err(ExecError::Op(e));
        }
        self.trace.regions.push(record);
        Ok(result.unwrap_or(OpOutput::None))
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }

    fn attach_telemetry(&mut self, telemetry: &phylo_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
    }
}

/// Convenience: how many of the trace's regions are of each kind.
pub fn region_kind_histogram(trace: &WorkTrace) -> Vec<(OpKind, usize)> {
    let kinds = [
        OpKind::Newview,
        OpKind::Evaluate,
        OpKind::Sumtable,
        OpKind::Derivatives,
    ];
    kinds
        .iter()
        .map(|&k| (k, trace.regions.iter().filter(|r| r.kind == k).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_kernel::{LikelihoodKernel, SequentialKernel};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    fn dataset() -> phylo_seqgen::GeneratedDataset {
        paper_simulated(8, 240, 40, 3).generate()
    }

    fn build_tracing(
        ds: &phylo_seqgen::GeneratedDataset,
        workers: usize,
    ) -> LikelihoodKernel<TracingExecutor> {
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment =
            crate::schedule(&ds.patterns, &cats, workers, &phylo_sched::Cyclic).unwrap();
        let exec = TracingExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec).unwrap()
    }

    #[test]
    fn tracing_matches_sequential_likelihood() {
        let ds = dataset();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models).unwrap();
        let reference = seq.try_log_likelihood().unwrap();

        for workers in [1usize, 4, 16] {
            let mut traced = build_tracing(&ds, workers);
            let lnl = traced.try_log_likelihood().unwrap();
            assert!(
                (lnl - reference).abs() < 1e-8,
                "{workers} virtual workers: {lnl} vs {reference}"
            );
        }
    }

    #[test]
    fn trace_records_one_region_per_command() {
        let ds = dataset();
        let mut k = build_tracing(&ds, 8);
        let _ = k.try_log_likelihood().unwrap();
        let branch = k.tree().internal_branches()[0];
        let mask = k.full_mask();
        k.try_prepare_branch(branch, &mask).unwrap();
        let lengths: Vec<Option<f64>> = (0..k.partition_count()).map(|_| Some(0.1)).collect();
        let _ = k.try_branch_derivatives(&lengths).unwrap();
        let sync = k.sync_events();
        let trace = k.executor_mut().take_trace();
        assert_eq!(trace.sync_events() as u64, sync);
        let hist = region_kind_histogram(&trace);
        assert!(
            hist.iter().all(|&(_, c)| c > 0),
            "all op kinds must appear: {hist:?}"
        );
    }

    #[test]
    fn balanced_dataset_has_high_balance_for_full_mask_ops() {
        let ds = dataset();
        let mut k = build_tracing(&ds, 4);
        let _ = k.try_log_likelihood().unwrap();
        let trace = k.executor_mut().take_trace();
        assert!(
            trace.overall_balance() > 0.9,
            "full-width operations should balance well, got {}",
            trace.overall_balance()
        );
    }

    #[test]
    fn single_partition_ops_are_imbalanced_with_many_workers() {
        // This is the paper's core observation: when only one short partition
        // is active per region (oldPAR), many workers idle.
        let ds = dataset();
        let mut k = build_tracing(&ds, 16);
        // Evaluate only partition 0 repeatedly.
        let mask = k.single_mask(0);
        let root = k.default_root_branch();
        let _ = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let trace = k.executor_mut().take_trace();
        // Partition 0 has ~40 patterns over 16 workers; the balance of the
        // evaluate region is bounded by the pattern distribution, and the
        // newview region only covers partition 0 as well.
        assert!(
            trace.overall_balance() < 0.95,
            "single-partition regions should show imbalance, got {}",
            trace.overall_balance()
        );
    }

    #[test]
    fn more_workers_than_patterns_leaves_workers_idle() {
        let ds = paper_simulated(6, 64, 8, 5).generate();
        let mut k = build_tracing(&ds, 16);
        let mask = k.single_mask(0);
        let root = k.default_root_branch();
        let _ = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let trace = k.executor_mut().take_trace();
        let idle_workers = trace
            .regions
            .iter()
            .map(|r| r.flops_per_worker.iter().filter(|&&f| f == 0.0).count())
            .max()
            .unwrap_or(0);
        assert!(
            idle_workers > 0,
            "with 16 workers and a ≤8-pattern partition some workers must idle"
        );
    }
}
