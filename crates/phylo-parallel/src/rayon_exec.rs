//! A rayon-based execution backend.
//!
//! Included as an alternative to the hand-rolled master/worker pool: rayon's
//! work-stealing pool executes the same per-worker command function
//! ([`execute_on_worker`]) on the same disjoint slices, so results are
//! identical; only the scheduling machinery differs. The comparison bench uses
//! it to show that the load-balance phenomenon is a property of the *work
//! partitioning per synchronization event*, not of the thread runtime.
//!
//! Since the rayon backend graduated beyond a comparison baseline it carries
//! the same hardening as the threaded one: a panic inside a worker's slice
//! execution is caught (`catch_unwind` inside the parallel closure, so it
//! never unwinds through the pool), surfaced as [`ExecError::WorkerDied`],
//! and poisons the executor until [`RayonExecutor::reassign`] rebuilds the
//! workers — the `Reassignable` capability the recovery drivers rely on.
//! Built with `timed == true`, each worker's region execution is bracketed
//! with [`Instant`] and accumulated into a [`WorkTrace`] together with the
//! region's convergence-mask shape and live pattern counts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use phylo_data::PartitionedPatterns;
use phylo_kernel::cost::{RegionRecord, WorkTrace};
use phylo_kernel::executor::{active_local_patterns, execute_on_worker, reduce_outputs};
use phylo_kernel::{ExecContext, ExecError, Executor, KernelOp, OpError, OpOutput, WorkerSlices};
use phylo_sched::{Assignment, SchedError};
use rayon::prelude::*;

/// Executes commands by fanning the per-worker slices out onto a dedicated
/// rayon thread pool.
pub struct RayonExecutor {
    workers: Vec<WorkerSlices>,
    pool: rayon::ThreadPool,
    assignment: Assignment,
    timed: bool,
    trace: WorkTrace,
    sync_events: u64,
    poisoned: Option<usize>,
    /// One-shot armed fault injection: `(worker, fire_at_sync_event)`.
    injected_panic: Option<(usize, u64)>,
    telemetry: phylo_telemetry::Telemetry,
}

impl std::fmt::Debug for RayonExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RayonExecutor")
            .field("worker_count", &self.workers.len())
            .field("sync_events", &self.sync_events)
            .field("timed", &self.timed)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl RayonExecutor {
    /// Builds a rayon executor for `assignment`, on a dedicated pool with one
    /// thread per worker.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<Self, SchedError> {
        Self::with_options(patterns, assignment, node_capacity, categories, false)
    }

    /// Builds the executor with an explicit measurement switch: `timed`
    /// accumulates per-region wall-clock measurements (and the region's
    /// convergence-mask shape) into a [`WorkTrace`], the same contract as
    /// `ThreadedExecutor` under `ExecutorOptions { timed: true, .. }`.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn with_options(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
        timed: bool,
    ) -> Result<Self, SchedError> {
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        let worker_count = workers.len();
        Ok(Self {
            pool: Self::build_pool(worker_count),
            workers,
            assignment: assignment.clone(),
            timed,
            trace: WorkTrace::new(worker_count),
            sync_events: 0,
            poisoned: None,
            injected_panic: None,
            telemetry: phylo_telemetry::Telemetry::disabled(),
        })
    }

    fn build_pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("plk-rayon-{i}"))
            .build()
            .expect("failed to build rayon pool")
    }

    /// The assignment the current workers were built from.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The wall-clock trace accumulated so far (empty unless built timed).
    pub fn trace(&self) -> &WorkTrace {
        &self.trace
    }

    /// Takes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> WorkTrace {
        std::mem::replace(&mut self.trace, WorkTrace::new(self.workers.len()))
    }

    /// The worker whose death poisoned the executor, if any.
    pub fn poisoned_by(&self) -> Option<usize> {
        self.poisoned
    }

    /// Arms a one-shot injected panic: `worker` will panic while executing
    /// the command issued `after_regions` synchronization events from now
    /// (0 = the very next command). Test instrumentation for the
    /// worker-death recovery path — the panic travels through the same
    /// catch/poison machinery as a real fault in a worker's slice execution.
    pub fn inject_worker_panic(&mut self, worker: usize, after_regions: u64) {
        self.injected_panic = Some((worker, self.sync_events + 1 + after_regions));
    }

    /// Migrates pattern→worker ownership to a new assignment: the worker
    /// slices (and the pool, if the worker count changes) are rebuilt, the
    /// trace epoch restarts, and any poisoned state is cleared. The new
    /// workers own *empty* CLV buffers, so the caller must invalidate the
    /// master-side CLV validity cache (`LikelihoodKernel::invalidate_all`).
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for
    /// a different dataset; the executor is left untouched in that case.
    pub fn reassign(
        &mut self,
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<(), SchedError> {
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        if workers.len() != self.workers.len() {
            self.pool = Self::build_pool(workers.len());
        }
        self.trace = WorkTrace::new(workers.len());
        self.workers = workers;
        self.assignment = assignment.clone();
        self.poisoned = None;
        self.injected_panic = None;
        Ok(())
    }
}

impl Executor for RayonExecutor {
    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Executes one command, surfacing worker panics as values.
    ///
    /// # Errors
    ///
    /// [`ExecError::WorkerDied`] when a worker's slice execution panics
    /// during this command; the executor is poisoned afterwards.
    /// [`ExecError::Poisoned`] for every command issued to a poisoned
    /// executor; [`RayonExecutor::reassign`] clears the state by rebuilding
    /// the workers.
    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        if let Some(worker) = self.poisoned {
            return Err(ExecError::Poisoned { worker });
        }
        self.sync_events += 1;
        let panic_worker = match self.injected_panic {
            Some((worker, at)) if self.sync_events >= at => {
                self.injected_panic = None;
                Some(worker)
            }
            _ => None,
        };
        // Telemetry shares the per-worker duration plumbing with the timed
        // trace: an enabled recorder forces the clock reads even untimed.
        let token = self.telemetry.enabled().then(|| {
            self.telemetry
                .region_start(op.kind().label(), &op.active_partitions())
        });
        let workers = &mut self.workers;
        let timed = self.timed || token.is_some();
        type WorkerOutput = Result<(OpOutput, Duration, usize), OpError>;
        type WorkerResult = Result<WorkerOutput, usize>;
        let results: Vec<WorkerResult> = self.pool.install(|| {
            workers
                .par_iter_mut()
                .map(|w| {
                    let index = w.worker;
                    // The catch keeps the panic from unwinding through the
                    // pool (which would kill the master); the worker index
                    // is the error payload. A typed kernel rejection travels
                    // inside the Ok arm — the worker stays healthy.
                    catch_unwind(AssertUnwindSafe(|| -> WorkerOutput {
                        if panic_worker == Some(index) {
                            // lint:allow(L001): fault-injection hook, armed only by recovery tests
                            panic!("injected worker panic (test instrumentation)");
                        }
                        if !timed {
                            // The untimed hot path skips the clock reads and
                            // the live-pattern count — nothing would keep
                            // them.
                            return Ok((execute_on_worker(w, op, ctx)?, Duration::ZERO, 0));
                        }
                        // lint:allow(L008): per-worker timing for the measured trace that
                        // drives rebalancing; never feeds the reduction order.
                        let start = Instant::now();
                        let out = execute_on_worker(w, op, ctx)?;
                        let active = active_local_patterns(w, op);
                        Ok((out, start.elapsed(), active))
                    }))
                    .map_err(|_| index)
                })
                .collect()
        });

        let mut record = self
            .timed
            .then(|| RegionRecord::new(op.kind(), results.len()));
        if let Some(record) = record.as_mut() {
            record.active_partitions = op.active_partitions();
        }
        let mut reduced: Option<OpOutput> = None;
        let mut worker_seconds = vec![0.0; self.workers.len()];
        // The parallel region is already fully joined here, so a typed
        // kernel rejection can surface immediately — unlike a panic it does
        // not poison the executor (the workers are healthy).
        let mut rejected: Option<OpError> = None;
        for (worker, result) in results.into_iter().enumerate() {
            match result {
                Ok(Ok((out, duration, active))) => {
                    worker_seconds[worker] = duration.as_secs_f64();
                    if let Some(record) = record.as_mut() {
                        record.seconds_per_worker[worker] = duration.as_secs_f64();
                        record.active_patterns_per_worker[worker] = active as f64;
                    }
                    // A reduce mismatch surfaces like any other typed op
                    // rejection: finish folding the joined results, then
                    // report it without poisoning the pool.
                    reduced = match reduced.take() {
                        None => Some(out),
                        Some(acc) => match reduce_outputs(acc, out) {
                            Ok(merged) => Some(merged),
                            Err(e) => {
                                rejected.get_or_insert(e);
                                None
                            }
                        },
                    };
                }
                Ok(Err(op_error)) => {
                    rejected.get_or_insert(op_error);
                }
                Err(worker) => {
                    self.poisoned = Some(worker);
                    self.telemetry
                        .worker_death(worker, token.as_ref().and_then(|t| t.region()));
                    return Err(ExecError::WorkerDied { worker });
                }
            }
        }
        // The region is joined and no worker died, so it completed (a typed
        // rejection still closes the bracket). Work-stealing has no per-worker
        // command queue, so the queue-wait lanes are zero.
        if let Some(token) = token {
            let (mut hits, mut misses, mut builds) = (0u64, 0u64, 0u64);
            let (mut blocked, mut scalar) = (0u64, 0u64);
            for w in &self.workers {
                let (h, m, b) = w.take_tip_cache_counters();
                hits += h;
                misses += m;
                builds += b;
                let (db, ds) = w.take_dispatch_counters();
                blocked += db;
                scalar += ds;
            }
            self.telemetry.add_tip_cache(hits, misses, builds);
            self.telemetry.add_dispatch_patterns(blocked, scalar);
            let queue_wait = vec![0.0; worker_seconds.len()];
            self.telemetry
                .region_end(token, &worker_seconds, &queue_wait);
        }
        if let Some(op_error) = rejected {
            return Err(ExecError::Op(op_error));
        }
        if let Some(record) = record {
            self.trace.regions.push(record);
        }
        Ok(reduced.unwrap_or(OpOutput::None))
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }

    fn attach_telemetry(&mut self, telemetry: &phylo_telemetry::Telemetry) {
        self.telemetry = telemetry.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule;
    use phylo_kernel::{BranchLengths, LikelihoodKernel, SequentialKernel};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_sched::{Block, Cyclic};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    #[test]
    fn rayon_likelihood_matches_sequential() {
        let ds = paper_simulated(9, 200, 50, 31).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let reference = seq.try_log_likelihood().unwrap();

        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 4, &Cyclic).unwrap();
        let exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let lnl = k.try_log_likelihood().unwrap();
        assert!((lnl - reference).abs() < 1e-8, "{lnl} vs {reference}");
    }

    #[test]
    fn rayon_block_strategy_also_matches() {
        let ds = paper_simulated(7, 120, 30, 37).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone())
                .unwrap();
        let reference = seq.try_log_likelihood().unwrap();

        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Block).unwrap();
        let exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        let lnl = k.try_log_likelihood().unwrap();
        assert!((lnl - reference).abs() < 1e-8);
    }

    #[test]
    fn timed_rayon_executor_records_masks_and_live_counts() {
        let ds = paper_simulated(8, 160, 40, 41).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let exec = RayonExecutor::with_options(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
            true,
        )
        .unwrap();
        let mut k =
            LikelihoodKernel::try_new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec)
                .unwrap();
        // A single-partition evaluation: the recorded masks must show the
        // partial convergence mask and zero live patterns on full idle.
        let mask = k.single_mask(0);
        let root = k.default_root_branch();
        let _ = k.try_log_likelihood_partitions(root, &mask).unwrap();
        let trace = k.executor_mut().take_trace();
        assert!(trace.sync_events() > 0);
        assert!(trace.has_seconds());
        assert!(trace.masked_region_count() > 0, "partial masks recorded");
        assert!(trace
            .live_patterns_per_worker_total()
            .iter()
            .any(|&c| c > 0.0));
    }

    #[test]
    fn injected_panic_poisons_and_reassign_recovers() {
        let ds = paper_simulated(6, 64, 16, 43).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Cyclic).unwrap();
        let mut exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let bl = BranchLengths::from_tree(
            &ds.tree,
            ds.patterns.partition_count(),
            models.branch_mode(),
        );
        let ctx = ExecContext {
            tree: &ds.tree,
            models: &models,
            branch_lengths: &bl,
        };
        let op = KernelOp::Newview {
            plans: vec![None; ds.patterns.partition_count()],
            tables: None,
        };
        exec.inject_worker_panic(1, 1);
        assert!(exec.execute(&op, &ctx).is_ok());
        let err = exec.execute(&op, &ctx).unwrap_err();
        assert_eq!(err, ExecError::WorkerDied { worker: 1 });
        assert_eq!(exec.poisoned_by(), Some(1));
        // Poisoned: every further command fails fast.
        assert_eq!(
            exec.execute(&op, &ctx).unwrap_err(),
            ExecError::Poisoned { worker: 1 }
        );
        exec.reassign(&ds.patterns, &assignment, ds.tree.node_capacity(), &cats)
            .unwrap();
        assert_eq!(exec.poisoned_by(), None);
        assert!(exec.execute(&op, &ctx).is_ok());
    }
}
