//! A rayon-based execution backend.
//!
//! Included as an alternative to the hand-rolled master/worker pool: rayon's
//! work-stealing pool executes the same per-worker command function
//! ([`execute_on_worker`]) on the same disjoint slices, so results are
//! identical; only the scheduling machinery differs. The comparison bench uses
//! it to show that the load-balance phenomenon is a property of the *work
//! partitioning per synchronization event*, not of the thread runtime.

use phylo_data::PartitionedPatterns;
use phylo_kernel::executor::{execute_on_worker, reduce_outputs};
use phylo_kernel::{ExecContext, ExecError, Executor, KernelOp, OpOutput, WorkerSlices};
use phylo_sched::{Assignment, SchedError};
use rayon::prelude::*;

/// Executes commands by fanning the per-worker slices out onto a dedicated
/// rayon thread pool.
pub struct RayonExecutor {
    workers: Vec<WorkerSlices>,
    pool: rayon::ThreadPool,
    sync_events: u64,
}

impl std::fmt::Debug for RayonExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RayonExecutor")
            .field("worker_count", &self.workers.len())
            .field("sync_events", &self.sync_events)
            .finish()
    }
}

impl RayonExecutor {
    /// Builds a rayon executor for `assignment`, on a dedicated pool with one
    /// thread per worker.
    ///
    /// # Errors
    ///
    /// [`SchedError::PatternCountMismatch`] if the assignment was built for a
    /// different dataset.
    pub fn from_assignment(
        patterns: &PartitionedPatterns,
        assignment: &Assignment,
        node_capacity: usize,
        categories: &[usize],
    ) -> Result<Self, SchedError> {
        let workers = crate::build_workers(patterns, node_capacity, categories, assignment)?;
        Ok(Self::with_workers(workers))
    }

    fn with_workers(workers: Vec<WorkerSlices>) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers.len())
            .thread_name(|i| format!("plk-rayon-{i}"))
            .build()
            .expect("failed to build rayon pool");
        Self {
            workers,
            pool,
            sync_events: 0,
        }
    }
}

impl Executor for RayonExecutor {
    fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn execute(&mut self, op: &KernelOp, ctx: &ExecContext<'_>) -> Result<OpOutput, ExecError> {
        self.sync_events += 1;
        let workers = &mut self.workers;
        Ok(self.pool.install(|| {
            workers
                .par_iter_mut()
                .map(|w| execute_on_worker(w, op, ctx))
                .reduce_with(reduce_outputs)
                .unwrap_or(OpOutput::None)
        }))
    }

    fn sync_events(&self) -> u64 {
        self.sync_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule;
    use phylo_kernel::{LikelihoodKernel, SequentialKernel};
    use phylo_models::{BranchLengthMode, ModelSet};
    use phylo_sched::{Block, Cyclic};
    use phylo_seqgen::datasets::paper_simulated;
    use std::sync::Arc;

    #[test]
    fn rayon_likelihood_matches_sequential() {
        let ds = paper_simulated(9, 200, 50, 31).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::PerPartition);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
        let reference = seq.try_log_likelihood().unwrap();

        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 4, &Cyclic).unwrap();
        let exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k = LikelihoodKernel::new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec);
        let lnl = k.try_log_likelihood().unwrap();
        assert!((lnl - reference).abs() < 1e-8, "{lnl} vs {reference}");
    }

    #[test]
    fn rayon_block_strategy_also_matches() {
        let ds = paper_simulated(7, 120, 30, 37).generate();
        let models = ModelSet::default_for(&ds.patterns, BranchLengthMode::Joint);
        let mut seq =
            SequentialKernel::build(Arc::clone(&ds.patterns), ds.tree.clone(), models.clone());
        let reference = seq.try_log_likelihood().unwrap();

        let cats: Vec<usize> = models.models().iter().map(|m| m.categories()).collect();
        let assignment = schedule(&ds.patterns, &cats, 3, &Block).unwrap();
        let exec = RayonExecutor::from_assignment(
            &ds.patterns,
            &assignment,
            ds.tree.node_capacity(),
            &cats,
        )
        .unwrap();
        let mut k = LikelihoodKernel::new(Arc::clone(&ds.patterns), ds.tree.clone(), models, exec);
        let lnl = k.try_log_likelihood().unwrap();
        assert!((lnl - reference).abs() < 1e-8);
    }
}
