//! Generators for the paper's evaluation datasets.
//!
//! Every dataset of Section V is described by a [`DatasetSpec`] carrying the
//! *dimensions* that drive the load-balance behaviour (taxon count, column
//! count, number and lengths of partitions, data type, gappyness) plus a seed.
//! [`DatasetSpec::generate`] produces the actual alignment (via the Seq-Gen
//! substitute), the fixed input tree, and the compiled pattern structure the
//! kernel consumes.
//!
//! Two families are provided:
//!
//! * [`paper_simulated`] — the d10…d100 × 5,000…50,000 datasets with the
//!   p1000/p5000/p10000 partition schemes,
//! * [`paper_real_world`] — synthetic stand-ins for the three collaborator
//!   alignments (r125_19839, r26_21451, r24_16916) matching their published
//!   dimensions (see DESIGN.md §4 for the substitution rationale).

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use phylo_data::{Alignment, DataType, Partition, PartitionSet, PartitionedPatterns};
use phylo_models::{PartitionModel, SubstitutionModel};
use phylo_tree::random::random_tree_with_lengths;
use phylo_tree::Tree;

use crate::simulate::{simulate_alignment, SimulationConfig};

/// Description of a dataset to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable name following the paper's convention (e.g.
    /// `d50_50000_p1000`, `r125_19839`).
    pub name: String,
    /// Number of taxa.
    pub taxa: usize,
    /// Per-partition column counts; the total column count is their sum.
    pub partition_columns: Vec<usize>,
    /// Default data type of the partitions.
    pub data_type: DataType,
    /// Partition indices simulated (and compiled) as 20-state protein data
    /// regardless of [`DatasetSpec::data_type`] — the mixed DNA/protein
    /// workloads whose per-pattern cost skew (protein ≈25× DNA in `newview`)
    /// drives the cost-aware scheduling strategies.
    pub protein_partitions: Vec<usize>,
    /// Fraction of taxa missing (all-gap) per partition — the "data holes" of
    /// gappy phylogenomic alignments.
    pub missing_taxa_fraction: f64,
    /// RNG seed; the same spec always generates the same dataset.
    pub seed: u64,
}

/// The three real-world datasets of the paper, reproduced synthetically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealWorldKind {
    /// `r125_19839`: 125 mammalian DNA sequences, 34 partitions of 148–2,705
    /// patterns.
    Mammal125,
    /// `r26_21451`: 26 viral protein sequences, 26 partitions.
    Viral26,
    /// `r24_16916`: 24 viral protein sequences, 20 partitions.
    Viral24,
}

/// A generated dataset: alignment, fixed input tree and compiled patterns.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// The fixed input tree (used "for reproducibility", as in the paper).
    pub tree: Tree,
    /// The raw alignment.
    pub alignment: Alignment,
    /// The partition definition.
    pub partition_set: PartitionSet,
    /// The compiled, pattern-compressed view used by the kernel.
    pub patterns: Arc<PartitionedPatterns>,
}

/// Builds the spec of a simulated dataset `d{taxa}_{columns}` partitioned into
/// consecutive genes of `partition_len` columns (the paper's pZZZZ schemes).
pub fn paper_simulated(
    taxa: usize,
    columns: usize,
    partition_len: usize,
    seed: u64,
) -> DatasetSpec {
    assert!(
        partition_len > 0 && columns >= partition_len,
        "invalid partition scheme"
    );
    let mut partition_columns = Vec::new();
    let mut remaining = columns;
    while remaining > 0 {
        let len = remaining.min(partition_len);
        partition_columns.push(len);
        remaining -= len;
    }
    DatasetSpec {
        name: format!("d{taxa}_{columns}_p{partition_len}"),
        taxa,
        partition_columns,
        data_type: DataType::Dna,
        protein_partitions: Vec::new(),
        missing_taxa_fraction: 0.0,
        seed,
    }
}

/// Builds the spec of a mixed DNA/protein dataset: `dna_partitions` DNA genes
/// followed by `protein_partitions` protein genes, each `partition_len`
/// columns wide. The protein block at the end makes the layout maximally
/// hostile to contiguous (block) pattern distribution while the ≈25× per
/// pattern cost skew defeats any count-based scheme — the workload the
/// cost-aware scheduler exists for.
pub fn mixed_dna_protein(
    taxa: usize,
    dna_partitions: usize,
    protein_partitions: usize,
    partition_len: usize,
    seed: u64,
) -> DatasetSpec {
    assert!(
        dna_partitions > 0 && protein_partitions > 0 && partition_len > 0,
        "a mixed dataset needs both data types and non-empty partitions"
    );
    let total = dna_partitions + protein_partitions;
    DatasetSpec {
        name: format!("mixed_d{dna_partitions}_p{protein_partitions}_{partition_len}"),
        taxa,
        partition_columns: vec![partition_len; total],
        data_type: DataType::Dna,
        protein_partitions: (dna_partitions..total).collect(),
        missing_taxa_fraction: 0.0,
        seed,
    }
}

/// Builds the spec of one of the synthetic real-world stand-ins.
pub fn paper_real_world(kind: RealWorldKind) -> DatasetSpec {
    let mut rng = ChaCha8Rng::seed_from_u64(match kind {
        RealWorldKind::Mammal125 => 125,
        RealWorldKind::Viral26 => 26,
        RealWorldKind::Viral24 => 24,
    });
    match kind {
        RealWorldKind::Mammal125 => DatasetSpec {
            name: "r125_19839".into(),
            taxa: 125,
            partition_columns: partition_lengths(19_839, 34, 148, 2_705, &mut rng),
            data_type: DataType::Dna,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.25,
            seed: 125,
        },
        RealWorldKind::Viral26 => DatasetSpec {
            name: "r26_21451".into(),
            taxa: 26,
            partition_columns: partition_lengths(21_451, 26, 173, 2_695, &mut rng),
            data_type: DataType::Protein,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.2,
            seed: 26,
        },
        RealWorldKind::Viral24 => DatasetSpec {
            name: "r24_16916".into(),
            taxa: 24,
            partition_columns: partition_lengths(16_916, 20, 173, 2_695, &mut rng),
            data_type: DataType::Protein,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.2,
            seed: 24,
        },
    }
}

/// Draws `count` partition lengths in `[min, max]` that sum exactly to
/// `total`, with at least one partition at (or near) each extreme — matching
/// how the paper reports its real-world datasets (min and max partition
/// lengths are given explicitly).
pub fn partition_lengths<R: Rng>(
    total: usize,
    count: usize,
    min: usize,
    max: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(count >= 2, "need at least two partitions");
    assert!(
        min * count <= total && total <= max * count,
        "infeasible length constraints"
    );
    let mut lengths = vec![min; count];
    // Pin the extremes.
    lengths[1] = max;
    let mut remaining = total - lengths.iter().sum::<usize>();

    // Distribute the remainder with exponential-ish random weights, capped at
    // the per-partition headroom, iterating until everything is placed.
    let mut guard = 0;
    while remaining > 0 {
        guard += 1;
        assert!(
            guard < 10_000,
            "partition length distribution failed to converge"
        );
        // Partition 0 stays pinned at the minimum and partition 1 at the
        // maximum, so the reported extremes always match the spec.
        let weights: Vec<f64> = (0..count)
            .map(|i| {
                if i == 0 || lengths[i] >= max {
                    0.0
                } else {
                    -rng.gen_range(f64::EPSILON..1.0f64).ln()
                }
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        if weight_sum == 0.0 {
            break;
        }
        let before = remaining;
        for i in 0..count {
            if remaining == 0 {
                break;
            }
            let headroom = max - lengths[i];
            let share = ((weights[i] / weight_sum) * before as f64).floor() as usize;
            let add = share.min(headroom).min(remaining);
            lengths[i] += add;
            remaining -= add;
        }
        // Guarantee progress for tiny residuals.
        if remaining > 0 {
            for len in lengths.iter_mut().skip(2) {
                if remaining == 0 {
                    break;
                }
                if *len < max {
                    *len += 1;
                    remaining -= 1;
                }
            }
        }
    }
    assert_eq!(lengths.iter().sum::<usize>(), total);
    lengths
}

impl DatasetSpec {
    /// Total number of alignment columns.
    pub fn total_columns(&self) -> usize {
        self.partition_columns.iter().sum()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partition_columns.len()
    }

    /// Data type of partition `pi` (honours the protein overrides).
    pub fn partition_data_type(&self, pi: usize) -> DataType {
        if self.protein_partitions.contains(&pi) {
            DataType::Protein
        } else {
            self.data_type
        }
    }

    /// Returns a proportionally scaled-down copy of the spec (same number of
    /// partitions, same taxa, `factor` times the columns — at least 8 columns
    /// per partition). Used by tests and by the default bench configuration so
    /// the paper's workload *shape* is preserved at laptop scale.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let partition_columns: Vec<usize> = self
            .partition_columns
            .iter()
            .map(|&c| ((c as f64 * factor).round() as usize).max(8))
            .collect();
        DatasetSpec {
            name: format!("{}_scaled", self.name),
            partition_columns,
            ..self.clone()
        }
    }

    /// Generates the dataset: fixed input tree, per-partition simulation with
    /// partition-specific model parameters (each gene gets its own α and GTR
    /// rates, which is what makes the per-partition optimizers converge after
    /// *different* numbers of iterations — the root cause of the load-balance
    /// problem), and the compiled pattern structure.
    pub fn generate(&self) -> GeneratedDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let names: Vec<String> = (0..self.taxa).map(|i| format!("taxon_{i}")).collect();
        let tree = random_tree_with_lengths(&names, 0.08, &mut rng);

        // Simulate each partition with its own parameters.
        let mut rows: Vec<(String, String)> =
            names.iter().map(|n| (n.clone(), String::new())).collect();
        for (pi, &cols) in self.partition_columns.iter().enumerate() {
            let model = simulation_model(self.partition_data_type(pi), &mut rng);
            let config = SimulationConfig {
                columns: cols,
                missing_taxa_fraction: self.missing_taxa_fraction,
                enforce_unique_columns: self.missing_taxa_fraction == 0.0,
            };
            let part_aln = simulate_alignment(&tree, &model, &config, &mut rng);
            for (taxon, row) in rows.iter_mut().enumerate() {
                row.1
                    .push_str(&String::from_utf8_lossy(part_aln.row(taxon)));
            }
        }
        let alignment = Alignment::new(rows).expect("simulated alignment is rectangular");
        let mut parts = Vec::with_capacity(self.partition_count());
        let mut start = 0usize;
        for (pi, &len) in self.partition_columns.iter().enumerate() {
            parts.push(Partition::contiguous(
                &format!("p{pi}"),
                self.partition_data_type(pi),
                start..start + len,
            ));
            start += len;
        }
        let partition_set = PartitionSet::new(parts).expect("spec has at least one partition");
        let patterns = Arc::new(
            PartitionedPatterns::compile(&alignment, &partition_set)
                .expect("generated partitions always cover the alignment"),
        );
        GeneratedDataset {
            spec: self.clone(),
            tree,
            alignment,
            partition_set,
            patterns,
        }
    }
}

/// The simulation model for one partition of `data_type`: parameters are
/// drawn per partition, so per-partition estimates genuinely differ (which is
/// what makes the per-partition optimizers converge after *different* numbers
/// of iterations — the root cause of the load-balance problem).
fn simulation_model<R: Rng>(data_type: DataType, rng: &mut R) -> PartitionModel {
    let alpha = rng.gen_range(0.3..1.6);
    match data_type {
        DataType::Dna => {
            let rates = [
                rng.gen_range(0.5..2.0),
                rng.gen_range(1.5..4.0),
                rng.gen_range(0.5..2.0),
                rng.gen_range(0.5..2.0),
                rng.gen_range(1.5..4.0),
                1.0,
            ];
            let mut freqs = [
                rng.gen_range(0.15..0.35),
                rng.gen_range(0.15..0.35),
                rng.gen_range(0.15..0.35),
                rng.gen_range(0.15..0.35),
            ];
            let sum: f64 = freqs.iter().sum();
            for f in &mut freqs {
                *f /= sum;
            }
            PartitionModel::new(SubstitutionModel::gtr(rates, freqs), alpha, 4)
        }
        DataType::Protein => {
            PartitionModel::new(SubstitutionModel::synthetic_empirical_protein(), alpha, 4)
        }
    }
}

impl GeneratedDataset {
    /// Convenience accessor: number of distinct patterns across partitions.
    pub fn total_patterns(&self) -> usize {
        self.patterns.total_patterns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_spec_matches_paper_naming_and_sizes() {
        let spec = paper_simulated(50, 50_000, 1_000, 1);
        assert_eq!(spec.name, "d50_50000_p1000");
        assert_eq!(spec.partition_count(), 50);
        assert_eq!(spec.total_columns(), 50_000);
        assert!(spec.partition_columns.iter().all(|&c| c == 1_000));

        let spec = paper_simulated(10, 5_000, 5_000, 1);
        assert_eq!(spec.partition_count(), 1);
    }

    #[test]
    fn real_world_specs_match_published_dimensions() {
        let mammal = paper_real_world(RealWorldKind::Mammal125);
        assert_eq!(mammal.taxa, 125);
        assert_eq!(mammal.partition_count(), 34);
        assert_eq!(mammal.total_columns(), 19_839);
        assert_eq!(*mammal.partition_columns.iter().min().unwrap(), 148);
        assert_eq!(*mammal.partition_columns.iter().max().unwrap(), 2_705);
        assert_eq!(mammal.data_type, DataType::Dna);

        let v26 = paper_real_world(RealWorldKind::Viral26);
        assert_eq!(v26.taxa, 26);
        assert_eq!(v26.partition_count(), 26);
        assert_eq!(v26.total_columns(), 21_451);
        assert_eq!(v26.data_type, DataType::Protein);

        let v24 = paper_real_world(RealWorldKind::Viral24);
        assert_eq!(v24.taxa, 24);
        assert_eq!(v24.partition_count(), 20);
        assert_eq!(v24.total_columns(), 16_916);
    }

    #[test]
    fn partition_lengths_respect_constraints() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            let lengths = partition_lengths(10_000, 12, 100, 3_000, &mut rng);
            assert_eq!(lengths.len(), 12);
            assert_eq!(lengths.iter().sum::<usize>(), 10_000);
            assert!(lengths.iter().all(|&l| (100..=3_000).contains(&l)));
            assert!(lengths.contains(&100));
            assert!(lengths.contains(&3_000));
        }
    }

    #[test]
    fn scaled_spec_preserves_partition_count() {
        let spec = paper_simulated(50, 50_000, 1_000, 1).scaled(0.01);
        assert_eq!(spec.partition_count(), 50);
        assert!(spec.total_columns() < 1_000);
        assert!(spec.partition_columns.iter().all(|&c| c >= 8));
    }

    #[test]
    fn generation_produces_consistent_dataset() {
        let spec = paper_simulated(10, 600, 100, 42).scaled(1.0);
        let ds = spec.generate();
        assert_eq!(ds.alignment.taxa_count(), 10);
        assert_eq!(ds.alignment.columns(), spec.total_columns());
        assert_eq!(ds.patterns.partition_count(), spec.partition_count());
        assert_eq!(ds.tree.n_taxa(), 10);
        assert!(ds.tree.validate().is_ok());
        assert!(ds.total_patterns() > 0);
        assert!(ds.total_patterns() <= spec.total_columns());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = paper_simulated(8, 200, 50, 7);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.alignment, b.alignment);
        assert_eq!(a.tree, b.tree);
    }

    #[test]
    fn gappy_real_world_dataset_has_holes() {
        let spec = DatasetSpec {
            name: "mini_gappy".into(),
            taxa: 20,
            partition_columns: vec![40, 60, 30],
            data_type: DataType::Dna,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.3,
            seed: 9,
        };
        let ds = spec.generate();
        assert!(ds.alignment.gappyness() > 0.05, "expected data holes");
        // Compilation succeeded despite gap-only rows within partitions.
        assert_eq!(ds.patterns.partition_count(), 3);
    }

    #[test]
    fn mixed_dataset_has_both_data_types() {
        let spec = mixed_dna_protein(6, 3, 2, 40, 11);
        assert_eq!(spec.partition_count(), 5);
        assert_eq!(spec.partition_data_type(0), DataType::Dna);
        assert_eq!(spec.partition_data_type(3), DataType::Protein);
        let ds = spec.generate();
        assert_eq!(ds.patterns.partition_count(), 5);
        assert_eq!(ds.patterns.partitions[2].data_type, DataType::Dna);
        assert_eq!(ds.patterns.partitions[4].data_type, DataType::Protein);
        assert_eq!(ds.patterns.partitions[4].states(), 20);
        // Deterministic like every other spec.
        let again = mixed_dna_protein(6, 3, 2, 40, 11).generate();
        assert_eq!(ds.alignment, again.alignment);
    }

    #[test]
    fn protein_dataset_generates() {
        let spec = DatasetSpec {
            name: "mini_protein".into(),
            taxa: 6,
            partition_columns: vec![30, 20],
            data_type: DataType::Protein,
            protein_partitions: Vec::new(),
            missing_taxa_fraction: 0.0,
            seed: 5,
        };
        let ds = spec.generate();
        assert_eq!(ds.patterns.partitions[0].data_type, DataType::Protein);
        assert_eq!(ds.patterns.partitions[0].states(), 20);
    }
}
